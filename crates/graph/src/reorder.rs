//! Degree-based vertex reordering — the preprocessing alternative the
//! degree-aware cache competes with.
//!
//! §5.1's related-work discussion: prior systems make hot vertices cheap
//! by *preprocessing* — Balaji & Lucia sort vertices by degree and
//! reindex the whole graph so that high-degree vertices share a small,
//! cacheable id range; Zhao et al. build hash tables during partitioning.
//! LightRW's point is that the DAC achieves the effect at runtime with
//! zero preprocessing. To make that an executable comparison (see the
//! `cache_policies` bench), this module implements the preprocessing
//! approach: [`by_degree_descending`] relabels vertices so id order is
//! degree order, after which even a plain direct-mapped cache keeps hubs
//! resident (they occupy the low index range).

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

/// A vertex relabeling: `old_to_new[v]` is `v`'s new id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    old_to_new: Vec<VertexId>,
    new_to_old: Vec<VertexId>,
}

impl Relabeling {
    /// Rebuild a relabeling from its `new_to_old` permutation (how packed
    /// files persist it — see `crate::packed`). Panics if `new_to_old` is
    /// not a permutation of `0..n`.
    pub fn from_new_to_old(new_to_old: Vec<VertexId>) -> Self {
        let n = new_to_old.len();
        let mut old_to_new = vec![VertexId::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            assert!(
                (old as usize) < n && old_to_new[old as usize] == VertexId::MAX,
                "new_to_old is not a permutation of 0..{n}"
            );
            old_to_new[old as usize] = new as VertexId;
        }
        Self {
            old_to_new,
            new_to_old,
        }
    }

    /// The `new_to_old` permutation (what packed files persist).
    #[inline]
    pub fn new_to_old(&self) -> &[VertexId] {
        &self.new_to_old
    }

    /// New id of an old vertex.
    #[inline]
    pub fn new_id(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// Old id of a new vertex (for translating results back).
    #[inline]
    pub fn old_id(&self, new: VertexId) -> VertexId {
        self.new_to_old[new as usize]
    }

    /// Translate a path of new ids back to original ids.
    pub fn path_to_original(&self, path: &[VertexId]) -> Vec<VertexId> {
        path.iter().map(|&v| self.old_id(v)).collect()
    }
}

/// Rebuild `g` with vertices relabeled in descending degree order
/// (ties broken by original id, so the result is deterministic).
/// Returns the reordered graph and the relabeling.
pub fn by_degree_descending(g: &Graph) -> (Graph, Relabeling) {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));

    let mut old_to_new = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        old_to_new[old as usize] = new as VertexId;
    }

    // Rebuild edges under the new labels; directed build preserves the
    // already-mirrored stored edges, whatever the original orientation.
    let mut b = GraphBuilder::directed().num_vertices(n);
    let labeled = g.has_edge_labels();
    for u in 0..n as VertexId {
        let rels = g.neighbor_relations(u);
        for (i, (&v, &w)) in g.neighbors(u).iter().zip(g.neighbor_weights(u)).enumerate() {
            let rel = if labeled { rels[i] } else { 0 };
            b.push_edge(old_to_new[u as usize], old_to_new[v as usize], w, rel);
        }
    }
    if g.has_vertex_labels() {
        let vlabels: Vec<u8> = order.iter().map(|&old| g.vertex_label(old)).collect();
        b = b.vertex_labels(vlabels);
    }
    (
        b.build(),
        Relabeling {
            old_to_new,
            new_to_old: order,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::validate::validate;

    #[test]
    fn degrees_are_descending_after_reorder() {
        let g = generators::rmat_dataset(10, 3);
        let (r, _) = by_degree_descending(&g);
        for v in 1..r.num_vertices() as VertexId {
            assert!(r.degree(v - 1) >= r.degree(v), "order broken at {v}");
        }
        assert!(validate(&r).is_ok());
    }

    #[test]
    fn reorder_preserves_structure() {
        let g = generators::rmat_dataset(9, 7);
        let (r, map) = by_degree_descending(&g);
        assert_eq!(g.num_vertices(), r.num_vertices());
        assert_eq!(g.num_edges(), r.num_edges());
        // Every original edge exists under the new labels with the same
        // weight and relation.
        for u in 0..g.num_vertices() as VertexId {
            let rels = g.neighbor_relations(u);
            for (i, (&v, &w)) in g.neighbors(u).iter().zip(g.neighbor_weights(u)).enumerate() {
                let (nu, nv) = (map.new_id(u), map.new_id(v));
                let pos = r
                    .neighbors(nu)
                    .binary_search(&nv)
                    .unwrap_or_else(|_| panic!("edge ({u},{v}) lost"));
                assert_eq!(r.neighbor_weights(nu)[pos], w);
                if g.has_edge_labels() {
                    assert_eq!(r.neighbor_relations(nu)[pos], rels[i]);
                }
                assert_eq!(r.vertex_label(nu), g.vertex_label(u));
            }
        }
    }

    #[test]
    fn relabeling_roundtrips() {
        let g = generators::rmat(8, 4, 2);
        let (_, map) = by_degree_descending(&g);
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(map.old_id(map.new_id(v)), v);
        }
        let path = vec![3, 1, 4, 1];
        let new_path: Vec<u32> = path.iter().map(|&v| map.new_id(v)).collect();
        assert_eq!(map.path_to_original(&new_path), path);
    }

    #[test]
    fn hub_gets_id_zero() {
        let g = generators::star(50);
        let (r, map) = by_degree_descending(&g);
        assert_eq!(map.new_id(0), 0); // the hub stays hottest
        assert_eq!(r.degree(0), 49);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let g = generators::ring(16, 2); // all degrees equal
        let (_, a) = by_degree_descending(&g);
        let (_, b) = by_degree_descending(&g);
        assert_eq!(a, b);
        // Equal degrees ⇒ identity order.
        for v in 0..16u32 {
            assert_eq!(a.new_id(v), v);
        }
    }
}
