//! Packed on-disk CSR: the out-of-core graph format (DESIGN.md §10).
//!
//! A packed file is a section-table image designed to be consumed by
//! `mmap(2)` without any decode step: every CSR lane of [`Graph`] —
//! including the static-weight prefix cumulatives — is stored exactly as
//! its in-memory little-endian layout, 8-byte aligned, so loading a graph
//! is a header parse plus O(sections) [`Section`](crate::store::Section)
//! window constructions. Peak heap cost of a load is a few hundred bytes
//! of header/table regardless of graph size; the kernel pages CSR data in
//! on demand as walks touch it.
//!
//! Layout (all words little-endian u64):
//!
//! ```text
//! magic    8 bytes  "LRWPAK01"
//! version  u64      1
//! flags    u64      bit0 directed, bit1 vertex labels, bit2 edge labels,
//!                   bit3 prefix cache, bit4 relabeling
//! n        u64      vertex count
//! m        u64      stored (directed) edge count
//! count    u64      number of section-table entries
//! table    count × { id u64, offset u64, len u64 }   (lens in bytes)
//! ...      sections, each starting at an 8-byte-aligned offset
//! ```
//!
//! Section ids: 1 `row_index` ((n+1)×u64) · 2 `col_index` (m×u32) ·
//! 3 `weights` (m×u32) · 4 vertex labels (n×u8) · 5 edge labels (m×u8) ·
//! 6 prefix cumulative (m×u64) · 7 `new_to_old` relabeling (n×u32) ·
//! 16+r per-relation prefix cumulative for relation `r` (m×u64).
//!
//! The loader performs **light** validation only (magic/version, table
//! bounds and alignment, section sizes against `n`/`m`, and the CSR
//! endpoints `row[0] == 0`, `row[n] == m`): touching every page of a
//! multi-GB file to re-validate adjacency sorting on each load would
//! defeat the out-of-core design. Files are produced exclusively by
//! [`write_packed`] / [`crate::pack`], which pack validated graphs.

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use crate::csr::{Graph, PrefixCache};
use crate::io::IoError;
use crate::reorder::Relabeling;
use crate::store::{Region, Section};

pub(crate) const MAGIC: &[u8; 8] = b"LRWPAK01";
pub(crate) const VERSION: u64 = 1;

pub(crate) const FLAG_DIRECTED: u64 = 1 << 0;
pub(crate) const FLAG_VLABELS: u64 = 1 << 1;
pub(crate) const FLAG_ELABELS: u64 = 1 << 2;
pub(crate) const FLAG_PREFIX: u64 = 1 << 3;
pub(crate) const FLAG_RELABEL: u64 = 1 << 4;

pub(crate) const SEC_ROW: u64 = 1;
pub(crate) const SEC_COL: u64 = 2;
pub(crate) const SEC_WEIGHTS: u64 = 3;
pub(crate) const SEC_VLABELS: u64 = 4;
pub(crate) const SEC_ELABELS: u64 = 5;
pub(crate) const SEC_PREFIX_ALL: u64 = 6;
pub(crate) const SEC_NEW_TO_OLD: u64 = 7;
pub(crate) const SEC_REL_PREFIX_BASE: u64 = 16;

/// One section-table entry: `(id, byte offset, byte length)`.
pub type SectionEntry = (u64, u64, u64);

/// Sniff whether `path` starts with the packed-CSR magic (so CLIs can
/// auto-detect the format without an extension convention).
pub fn is_packed_file<P: AsRef<Path>>(path: P) -> bool {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut head = [0u8; 8];
    f.read_exact(&mut head).is_ok() && &head == MAGIC
}

/// Human-readable name for a section id (for `graph stats` listings).
pub fn section_name(id: u64) -> String {
    match id {
        SEC_ROW => "row_index".into(),
        SEC_COL => "col_index".into(),
        SEC_WEIGHTS => "weights".into(),
        SEC_VLABELS => "vertex_labels".into(),
        SEC_ELABELS => "edge_labels".into(),
        SEC_PREFIX_ALL => "prefix_all".into(),
        SEC_NEW_TO_OLD => "new_to_old".into(),
        r if r >= SEC_REL_PREFIX_BASE => format!("prefix_rel{}", r - SEC_REL_PREFIX_BASE),
        other => format!("section{other}"),
    }
}

pub(crate) fn align8(x: u64) -> u64 {
    x.div_ceil(8) * 8
}

/// Lay out sections `(id, len_bytes)` after the header+table, assigning
/// 8-aligned offsets in order. Returns the table and the total file size.
pub(crate) fn assign_offsets(lens: &[(u64, u64)]) -> (Vec<SectionEntry>, u64) {
    let mut off = 48 + 24 * lens.len() as u64; // already 8-aligned
    let mut table = Vec::with_capacity(lens.len());
    for &(id, len) in lens {
        table.push((id, off, len));
        off = align8(off + len);
    }
    (table, off)
}

/// Write the fixed header and section table.
pub(crate) fn write_header<W: Write>(
    out: &mut W,
    flags: u64,
    n: u64,
    m: u64,
    table: &[SectionEntry],
) -> std::io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&flags.to_le_bytes())?;
    out.write_all(&n.to_le_bytes())?;
    out.write_all(&m.to_le_bytes())?;
    out.write_all(&(table.len() as u64).to_le_bytes())?;
    for &(id, off, len) in table {
        out.write_all(&id.to_le_bytes())?;
        out.write_all(&off.to_le_bytes())?;
        out.write_all(&len.to_le_bytes())?;
    }
    Ok(())
}

/// View a Pod slice as raw little-endian bytes (little-endian hosts only;
/// the cfg guard keeps big-endian builds on the per-element path).
#[cfg(target_endian = "little")]
pub(crate) fn lane_bytes<T: crate::store::Pod>(s: &[T]) -> &[u8] {
    // SAFETY: Pod types have no padding or invalid bit patterns; reading
    // a slice's memory as bytes is always sound.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

fn write_u64_lane<W: Write>(out: &mut W, s: &[u64]) -> std::io::Result<()> {
    #[cfg(target_endian = "little")]
    return out.write_all(lane_bytes(s));
    #[cfg(target_endian = "big")]
    {
        for &x in s {
            out.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    }
}

fn write_u32_lane<W: Write>(out: &mut W, s: &[u32]) -> std::io::Result<()> {
    #[cfg(target_endian = "little")]
    return out.write_all(lane_bytes(s));
    #[cfg(target_endian = "big")]
    {
        for &x in s {
            out.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Pad `out` to the next 8-byte boundary after writing `len` bytes at
/// 8-aligned `off`.
fn pad_to_align<W: Write>(out: &mut W, off: u64, len: u64) -> std::io::Result<()> {
    let end = off + len;
    let pad = align8(end) - end;
    out.write_all(&[0u8; 8][..pad as usize])
}

/// Serialize an in-memory graph (plus an optional relabeling that
/// produced it) into a packed file. The prefix cache is written as-is
/// when present, so loading the file makes `build_prefix_cache` a no-op.
pub fn write_packed<P: AsRef<Path>>(
    g: &Graph,
    relabeling: Option<&Relabeling>,
    path: P,
) -> Result<u64, IoError> {
    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    if let Some(map) = relabeling {
        assert_eq!(map.new_to_old().len() as u64, n, "relabeling size mismatch");
    }

    let mut flags = 0u64;
    if g.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    let mut lens: Vec<(u64, u64)> = vec![
        (SEC_ROW, (n + 1) * 8),
        (SEC_COL, m * 4),
        (SEC_WEIGHTS, m * 4),
    ];
    if g.has_vertex_labels() {
        flags |= FLAG_VLABELS;
        lens.push((SEC_VLABELS, n));
    }
    if g.has_edge_labels() {
        flags |= FLAG_ELABELS;
        lens.push((SEC_ELABELS, m));
    }
    if let Some(cache) = &g.prefix {
        flags |= FLAG_PREFIX;
        lens.push((SEC_PREFIX_ALL, m * 8));
        for (r, cum) in cache.per_relation.iter().enumerate() {
            if !cum.is_empty() {
                lens.push((SEC_REL_PREFIX_BASE + r as u64, m * 8));
            }
        }
    }
    if relabeling.is_some() {
        flags |= FLAG_RELABEL;
        lens.push((SEC_NEW_TO_OLD, n * 4));
    }

    let (table, total) = assign_offsets(&lens);
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    write_header(&mut out, flags, n, m, &table)?;
    for &(id, off, len) in &table {
        match id {
            SEC_ROW => write_u64_lane(&mut out, &g.row_index)?,
            SEC_COL => write_u32_lane(&mut out, &g.col_index)?,
            SEC_WEIGHTS => write_u32_lane(&mut out, &g.weights)?,
            SEC_VLABELS => out.write_all(&g.vertex_labels)?,
            SEC_ELABELS => out.write_all(&g.edge_labels)?,
            SEC_PREFIX_ALL => write_u64_lane(&mut out, &g.prefix.as_ref().expect("flagged").all)?,
            SEC_NEW_TO_OLD => write_u32_lane(&mut out, relabeling.expect("flagged").new_to_old())?,
            r => {
                let rel = (r - SEC_REL_PREFIX_BASE) as usize;
                write_u64_lane(
                    &mut out,
                    &g.prefix.as_ref().expect("flagged").per_relation[rel],
                )?
            }
        }
        pad_to_align(&mut out, off, len)?;
    }
    out.flush()?;
    Ok(total)
}

/// How [`load_packed`] should back the graph's sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// `mmap` where available, falling back to an aligned heap read.
    Auto,
    /// Force the aligned heap read (also exercises the borrowed-section
    /// machinery without a live mapping — useful in tests).
    Heap,
}

/// A graph loaded from a packed file, with its provenance.
#[derive(Debug)]
pub struct PackedGraph {
    pub graph: Graph,
    /// Present when the file was packed with degree relabeling; maps the
    /// packed (new) vertex ids back to the original input ids.
    pub relabeling: Option<Relabeling>,
    /// Total size of the packed file in bytes.
    pub file_bytes: u64,
    /// Whether the sections are backed by a live `mmap` mapping.
    pub mapped: bool,
    /// The file's section table `(id, offset, len_bytes)`.
    pub sections: Vec<SectionEntry>,
}

fn corrupt(offset: u64, what: &'static str) -> IoError {
    IoError::CorruptAt { offset, what }
}

fn u64_at(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// Construct a `u64` section: a zero-copy region window on little-endian
/// hosts, an owned byte-swapped decode on big-endian hosts.
fn sec_u64(region: &Arc<Region>, off: usize, len: usize) -> Option<Section<u64>> {
    #[cfg(target_endian = "little")]
    {
        Section::from_region(region, off, len)
    }
    #[cfg(target_endian = "big")]
    {
        let bytes = region
            .bytes()
            .get(off..off.checked_add(len.checked_mul(8)?)?)?;
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<_>>()
                .into(),
        )
    }
}

fn sec_u32(region: &Arc<Region>, off: usize, len: usize) -> Option<Section<u32>> {
    #[cfg(target_endian = "little")]
    {
        Section::from_region(region, off, len)
    }
    #[cfg(target_endian = "big")]
    {
        let bytes = region
            .bytes()
            .get(off..off.checked_add(len.checked_mul(4)?)?)?;
        Some(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<_>>()
                .into(),
        )
    }
}

fn sec_u8(region: &Arc<Region>, off: usize, len: usize) -> Option<Section<u8>> {
    Section::from_region(region, off, len)
}

/// Load a packed graph file. The heavy sections are *borrowed* from the
/// file region (mmap or aligned heap buffer); nothing CSR-sized is
/// copied onto the heap in `Auto` mode on Linux.
pub fn load_packed<P: AsRef<Path>>(path: P, mode: LoadMode) -> Result<PackedGraph, IoError> {
    let file = std::fs::File::open(path)?;
    let region = Region::from_file(&file, mode == LoadMode::Heap)?;
    let bytes = region.bytes();
    let file_len = bytes.len() as u64;
    if bytes.len() < 48 {
        return Err(corrupt(file_len, "file shorter than the packed header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = u64_at(bytes, 8);
    if version != VERSION {
        return Err(IoError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let flags = u64_at(bytes, 16);
    let n64 = u64_at(bytes, 24);
    let m64 = u64_at(bytes, 32);
    let count = u64_at(bytes, 40);
    if n64 > u32::MAX as u64 || m64 > u32::MAX as u64 {
        return Err(corrupt(
            24,
            "vertex or edge count exceeds the 32-bit id space",
        ));
    }
    let (n, m) = (n64 as usize, m64 as usize);
    let table_end = 48u64
        .checked_add(
            count
                .checked_mul(24)
                .ok_or_else(|| corrupt(40, "section count overflows"))?,
        )
        .ok_or_else(|| corrupt(40, "section count overflows"))?;
    if table_end > file_len {
        return Err(corrupt(40, "section table extends past end of file"));
    }

    let mut sections = Vec::with_capacity(count as usize);
    let mut by_id: HashMap<u64, (u64, u64)> = HashMap::new();
    for i in 0..count as usize {
        let base = 48 + i * 24;
        let (id, off, len) = (
            u64_at(bytes, base),
            u64_at(bytes, base + 8),
            u64_at(bytes, base + 16),
        );
        if off % 8 != 0 {
            return Err(corrupt(base as u64 + 8, "section offset not 8-aligned"));
        }
        let end = off
            .checked_add(len)
            .ok_or_else(|| corrupt(base as u64 + 16, "section length overflows"))?;
        if end > file_len {
            return Err(corrupt(
                base as u64 + 16,
                "section extends past end of file",
            ));
        }
        if by_id.insert(id, (off, len)).is_some() {
            return Err(corrupt(base as u64, "duplicate section id"));
        }
        sections.push((id, off, len));
    }

    let expect = |id: u64, want_len: u64, what: &'static str| -> Result<(u64, u64), IoError> {
        let &(off, len) = by_id
            .get(&id)
            .ok_or_else(|| corrupt(48, "required section missing"))?;
        if len != want_len {
            return Err(corrupt(off, what));
        }
        Ok((off, len))
    };

    let (row_off, _) = expect(
        SEC_ROW,
        (n as u64 + 1) * 8,
        "row_index section has wrong size",
    )?;
    let (col_off, _) = expect(SEC_COL, m as u64 * 4, "col_index section has wrong size")?;
    let (w_off, _) = expect(SEC_WEIGHTS, m as u64 * 4, "weights section has wrong size")?;

    let bad = || corrupt(row_off, "section window rejected (bounds or alignment)");
    let row_index = sec_u64(&region, row_off as usize, n + 1).ok_or_else(bad)?;
    let col_index = sec_u32(&region, col_off as usize, m).ok_or_else(bad)?;
    let weights = sec_u32(&region, w_off as usize, m).ok_or_else(bad)?;

    // CSR endpoint checks: O(1) reads, catches header/section mismatch.
    if row_index[0] != 0 {
        return Err(corrupt(row_off, "row_index does not start at 0"));
    }
    if row_index[n] != m as u64 {
        return Err(corrupt(
            row_off + n as u64 * 8,
            "row_index end disagrees with edge count",
        ));
    }

    let vertex_labels = if flags & FLAG_VLABELS != 0 {
        let (off, _) = expect(SEC_VLABELS, n as u64, "vertex-label section has wrong size")?;
        sec_u8(&region, off as usize, n).ok_or_else(bad)?
    } else {
        Section::default()
    };
    let edge_labels = if flags & FLAG_ELABELS != 0 {
        let (off, _) = expect(SEC_ELABELS, m as u64, "edge-label section has wrong size")?;
        sec_u8(&region, off as usize, m).ok_or_else(bad)?
    } else {
        Section::default()
    };

    let prefix = if flags & FLAG_PREFIX != 0 {
        let (off, _) = expect(
            SEC_PREFIX_ALL,
            m as u64 * 8,
            "prefix section has wrong size",
        )?;
        let all = sec_u64(&region, off as usize, m).ok_or_else(bad)?;
        let max_rel = by_id
            .keys()
            .filter(|&&id| id >= SEC_REL_PREFIX_BASE)
            .map(|&id| id - SEC_REL_PREFIX_BASE)
            .max();
        let per_relation = match max_rel {
            Some(max) => {
                let mut v = Vec::with_capacity(max as usize + 1);
                for r in 0..=max {
                    v.push(match by_id.get(&(SEC_REL_PREFIX_BASE + r)) {
                        Some(&(off, len)) => {
                            if len != m as u64 * 8 {
                                return Err(corrupt(
                                    off,
                                    "per-relation prefix section has wrong size",
                                ));
                            }
                            sec_u64(&region, off as usize, m).ok_or_else(bad)?
                        }
                        None => Section::default(),
                    });
                }
                v
            }
            None => Vec::new(),
        };
        Some(PrefixCache { all, per_relation })
    } else {
        None
    };

    let relabeling = if flags & FLAG_RELABEL != 0 {
        let (off, _) = expect(
            SEC_NEW_TO_OLD,
            n as u64 * 4,
            "relabel section has wrong size",
        )?;
        let sec = sec_u32(&region, off as usize, n).ok_or_else(bad)?;
        Some(Relabeling::from_new_to_old(sec.to_vec()))
    } else {
        None
    };

    let graph = Graph {
        row_index,
        col_index,
        weights,
        vertex_labels,
        edge_labels,
        directed: flags & FLAG_DIRECTED != 0,
        prefix,
    };
    Ok(PackedGraph {
        graph,
        relabeling,
        file_bytes: file_len,
        mapped: region.is_mapped(),
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lightrw_packed_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn packed_roundtrip_is_exact_in_both_modes() {
        let g = generators::rmat_dataset(8, 5);
        let path = tmp("roundtrip.lrwpak");
        let total = write_packed(&g, None, &path).unwrap();
        assert_eq!(total, std::fs::metadata(&path).unwrap().len());
        for mode in [LoadMode::Auto, LoadMode::Heap] {
            let loaded = load_packed(&path, mode).unwrap();
            assert_eq!(loaded.graph, g);
            assert!(loaded.graph.is_out_of_core());
            assert!(loaded.relabeling.is_none());
            // The prefix cache travels in the file: building it again is
            // a no-op and the cumulative arrays match the in-memory build.
            assert!(loaded.graph.has_prefix_cache());
            let mut reloaded = loaded.graph;
            reloaded.build_prefix_cache();
            for v in 0..g.num_vertices() as u32 {
                assert_eq!(reloaded.static_prefix(v), g.static_prefix(v));
                for r in 0..2 {
                    assert_eq!(reloaded.relation_prefix(v, r), g.relation_prefix(v, r));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn packed_preserves_labels_and_direction() {
        let g = crate::GraphBuilder::undirected()
            .labeled_edge(0, 1, 3, 1)
            .labeled_edge(1, 2, 5, 2)
            .vertex_labels(vec![7, 8, 9])
            .build();
        let path = tmp("labels.lrwpak");
        write_packed(&g, None, &path).unwrap();
        let loaded = load_packed(&path, LoadMode::Heap).unwrap().graph;
        assert_eq!(loaded, g);
        assert!(!loaded.is_directed());
        assert_eq!(loaded.vertex_label(2), 9);
        assert_eq!(loaded.neighbor_relations(1), g.neighbor_relations(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn relabeling_roundtrips_through_the_file() {
        let g = generators::rmat_dataset(7, 3);
        let (reordered, map) = crate::reorder::by_degree_descending(&g);
        let path = tmp("relabel.lrwpak");
        write_packed(&reordered, Some(&map), &path).unwrap();
        let loaded = load_packed(&path, LoadMode::Auto).unwrap();
        assert_eq!(loaded.graph, reordered);
        let lm = loaded.relabeling.unwrap();
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(lm.old_id(v), map.old_id(v));
            assert_eq!(lm.new_id(v), map.new_id(v));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loader_rejects_corruption_loudly() {
        let g = generators::rmat_dataset(6, 1);
        let path = tmp("corrupt.lrwpak");
        write_packed(&g, None, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut buf = clean.clone();
        buf[0] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            load_packed(&path, LoadMode::Heap),
            Err(IoError::BadMagic)
        ));

        // Unsupported version.
        let mut buf = clean.clone();
        buf[8..16].copy_from_slice(&9u64.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            load_packed(&path, LoadMode::Heap),
            Err(IoError::UnsupportedVersion { found: 9, .. })
        ));

        // Truncated file: some section now extends past EOF.
        let mut buf = clean.clone();
        buf.truncate(buf.len() - 16);
        std::fs::write(&path, &buf).unwrap();
        assert!(load_packed(&path, LoadMode::Heap).is_err());

        // Vertex count bumped: row_index size check fires.
        let mut buf = clean.clone();
        let n = g.num_vertices() as u64;
        buf[24..32].copy_from_slice(&(n + 1).to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        assert!(load_packed(&path, LoadMode::Heap).is_err());

        // Tiny file.
        std::fs::write(&path, b"LRWPAK01").unwrap();
        assert!(matches!(
            load_packed(&path, LoadMode::Heap),
            Err(IoError::CorruptAt { .. })
        ));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn untyped_unweighted_graph_packs() {
        let g = crate::GraphBuilder::directed()
            .edges([(0, 1), (1, 2)])
            .build();
        let path = tmp("plain.lrwpak");
        write_packed(&g, None, &path).unwrap();
        let loaded = load_packed(&path, LoadMode::Auto).unwrap().graph;
        assert_eq!(loaded, g);
        assert!(!loaded.has_vertex_labels());
        assert!(!loaded.has_edge_labels());
        assert_eq!(loaded.relation_prefix(0, 0), g.relation_prefix(0, 0));
        std::fs::remove_file(&path).ok();
    }
}
