//! Packed on-disk CSR: the out-of-core graph format (DESIGN.md §10).
//!
//! A packed file is a section-table image designed to be consumed by
//! `mmap(2)` without any decode step: every CSR lane of [`Graph`] —
//! including the static-weight prefix cumulatives — is stored exactly as
//! its in-memory little-endian layout, 8-byte aligned, so loading a graph
//! is a header parse plus O(sections) [`Section`](crate::store::Section)
//! window constructions. Peak heap cost of a load is a few hundred bytes
//! of header/table regardless of graph size; the kernel pages CSR data in
//! on demand as walks touch it.
//!
//! Layout (all words little-endian u64):
//!
//! ```text
//! magic    8 bytes  "LRWPAK01"
//! version  u64      1
//! flags    u64      bit0 directed, bit1 vertex labels, bit2 edge labels,
//!                   bit3 prefix cache, bit4 relabeling
//! n        u64      vertex count
//! m        u64      stored (directed) edge count
//! count    u64      number of section-table entries
//! table    count × { id u64, offset u64, len u64 }   (lens in bytes)
//! ...      sections, each starting at an 8-byte-aligned offset
//! ```
//!
//! Section ids: 1 `row_index` ((n+1)×u64) · 2 `col_index` (m×u32) ·
//! 3 `weights` (m×u32) · 4 vertex labels (n×u8) · 5 edge labels (m×u8) ·
//! 6 prefix cumulative (m×u64) · 7 `new_to_old` relabeling (n×u32) ·
//! 16+r per-relation prefix cumulative for relation `r` (m×u64).
//!
//! The loader performs **light** validation only (magic/version, table
//! bounds and alignment, section sizes against `n`/`m`, and the CSR
//! endpoints `row[0] == 0`, `row[n] == m`): touching every page of a
//! multi-GB file to re-validate adjacency sorting on each load would
//! defeat the out-of-core design. Files are produced exclusively by
//! [`write_packed`] / [`crate::pack`], which pack validated graphs.

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use crate::csr::{Graph, PrefixCache, VertexId};
use crate::io::IoError;
use crate::partition::{Ownership, Shard, ShardStrategy, ShardedGraph};
use crate::reorder::Relabeling;
use crate::store::{Region, Section};

pub(crate) const MAGIC: &[u8; 8] = b"LRWPAK01";
pub(crate) const VERSION: u64 = 1;

pub(crate) const FLAG_DIRECTED: u64 = 1 << 0;
pub(crate) const FLAG_VLABELS: u64 = 1 << 1;
pub(crate) const FLAG_ELABELS: u64 = 1 << 2;
pub(crate) const FLAG_PREFIX: u64 = 1 << 3;
pub(crate) const FLAG_RELABEL: u64 = 1 << 4;
/// The file carries a shard partition (DESIGN.md §11).
pub(crate) const FLAG_SHARDS: u64 = 1 << 5;
/// `col_index` is stored varint-delta compressed (`SEC_COL_VARINT`
/// replaces `SEC_COL`).
pub(crate) const FLAG_COMPRESSED: u64 = 1 << 6;

pub(crate) const SEC_ROW: u64 = 1;
pub(crate) const SEC_COL: u64 = 2;
pub(crate) const SEC_WEIGHTS: u64 = 3;
pub(crate) const SEC_VLABELS: u64 = 4;
pub(crate) const SEC_ELABELS: u64 = 5;
pub(crate) const SEC_PREFIX_ALL: u64 = 6;
pub(crate) const SEC_NEW_TO_OLD: u64 = 7;
/// Shard partition metadata: `[k, strategy, (owned_vertices,
/// owned_edges, boundary_edges) × k]` as u64 words.
pub(crate) const SEC_SHARD_META: u64 = 8;
/// Range-strategy ownership: `k + 1` u32 cut points.
pub(crate) const SEC_SHARD_CUTS: u64 = 9;
/// Table-strategy (fennel) ownership: `n` u32 owners.
pub(crate) const SEC_SHARD_ASSIGN: u64 = 10;
/// Varint-delta compressed `col_index` (present iff `FLAG_COMPRESSED`).
pub(crate) const SEC_COL_VARINT: u64 = 11;
pub(crate) const SEC_REL_PREFIX_BASE: u64 = 16;

/// Per-shard sections live at `SEC_SHARD_BASE + s·SEC_SHARD_STRIDE +
/// lane`. The base sits above every per-relation prefix id
/// (`16 + 255`), so the two families can never collide.
pub(crate) const SEC_SHARD_BASE: u64 = 1024;
pub(crate) const SEC_SHARD_STRIDE: u64 = 16;
/// Full-span row offsets ((n+1) × u64). Under the range strategy the
/// offsets index the *global* `col_index` (the shard shares the global
/// edge sections); under fennel they index the shard's own compacted
/// col section.
pub(crate) const SHARD_LANE_ROW: u64 = 0;
/// Sorted ghost-vertex table (u32 global ids).
pub(crate) const SHARD_LANE_GHOSTS: u64 = 1;
/// Compacted per-shard `col_index` (fennel only).
pub(crate) const SHARD_LANE_COL: u64 = 2;
/// Compacted per-shard weights (fennel only).
pub(crate) const SHARD_LANE_WEIGHTS: u64 = 3;
/// Compacted per-shard edge labels (fennel only, typed graphs).
pub(crate) const SHARD_LANE_ELABELS: u64 = 4;
/// Compacted per-shard prefix cumulative (fennel only, cached graphs).
pub(crate) const SHARD_LANE_PREFIX: u64 = 5;

pub(crate) fn shard_section(s: usize, lane: u64) -> u64 {
    SEC_SHARD_BASE + s as u64 * SEC_SHARD_STRIDE + lane
}

/// One section-table entry: `(id, byte offset, byte length)`.
pub type SectionEntry = (u64, u64, u64);

/// Sniff whether `path` starts with the packed-CSR magic (so CLIs can
/// auto-detect the format without an extension convention).
pub fn is_packed_file<P: AsRef<Path>>(path: P) -> bool {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut head = [0u8; 8];
    f.read_exact(&mut head).is_ok() && &head == MAGIC
}

/// Human-readable name for a section id (for `graph stats` listings).
pub fn section_name(id: u64) -> String {
    match id {
        SEC_ROW => "row_index".into(),
        SEC_COL => "col_index".into(),
        SEC_WEIGHTS => "weights".into(),
        SEC_VLABELS => "vertex_labels".into(),
        SEC_ELABELS => "edge_labels".into(),
        SEC_PREFIX_ALL => "prefix_all".into(),
        SEC_NEW_TO_OLD => "new_to_old".into(),
        SEC_SHARD_META => "shard_meta".into(),
        SEC_SHARD_CUTS => "shard_cuts".into(),
        SEC_SHARD_ASSIGN => "shard_assign".into(),
        SEC_COL_VARINT => "col_varint".into(),
        s if s >= SEC_SHARD_BASE => {
            let shard = (s - SEC_SHARD_BASE) / SEC_SHARD_STRIDE;
            let lane = match (s - SEC_SHARD_BASE) % SEC_SHARD_STRIDE {
                SHARD_LANE_ROW => "row",
                SHARD_LANE_GHOSTS => "ghosts",
                SHARD_LANE_COL => "col",
                SHARD_LANE_WEIGHTS => "weights",
                SHARD_LANE_ELABELS => "elabels",
                SHARD_LANE_PREFIX => "prefix",
                _ => "lane?",
            };
            format!("shard{shard}_{lane}")
        }
        r if r >= SEC_REL_PREFIX_BASE => format!("prefix_rel{}", r - SEC_REL_PREFIX_BASE),
        other => format!("section{other}"),
    }
}

// ----------------------------------------------------------------------
// Varint-delta col_index compression (DESIGN.md §11)
// ----------------------------------------------------------------------
//
// Each adjacency row is encoded independently (row boundaries come from
// `row_index`): the first target as an absolute LEB128 varint, every
// later target as LEB128(delta − 1) from its predecessor — adjacency
// lists are sorted and duplicate-free, so deltas are ≥ 1 and the −1
// saves a bit on consecutive-id runs.

/// Encoded byte length of one value.
#[inline]
pub(crate) fn varint_len(x: u32) -> u64 {
    match x {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0x0FFF_FFFF => 4,
        _ => 5,
    }
}

#[inline]
pub(crate) fn write_varint<W: Write>(out: &mut W, mut x: u32) -> std::io::Result<()> {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        x |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return u32::try_from(x).ok();
        }
        shift += 7;
        if shift > 28 + 7 {
            return None;
        }
    }
}

/// Encode a full `col_index` under `row_index` into one varint stream.
fn encode_col_varint(row_index: &[u64], col_index: &[u32]) -> Vec<u8> {
    let n = row_index.len() - 1;
    let mut out = Vec::new();
    for v in 0..n {
        let row = &col_index[row_index[v] as usize..row_index[v + 1] as usize];
        let mut prev: Option<u32> = None;
        for &t in row {
            let val = match prev {
                None => t,
                Some(p) => t - p - 1,
            };
            write_varint(&mut out, val).expect("Vec write is infallible");
            prev = Some(t);
        }
    }
    out
}

/// Decode a varint-delta col section back into raw targets.
fn decode_col_varint(bytes: &[u8], row_index: &[u64], m: usize) -> Option<Vec<u32>> {
    let n = row_index.len() - 1;
    let mut col = Vec::with_capacity(m);
    let mut pos = 0usize;
    for v in 0..n {
        let deg = (row_index[v + 1] - row_index[v]) as usize;
        if deg == 0 {
            continue;
        }
        let mut prev = read_varint(bytes, &mut pos)?;
        col.push(prev);
        for _ in 1..deg {
            let delta = read_varint(bytes, &mut pos)?;
            prev = prev.checked_add(delta)?.checked_add(1)?;
            col.push(prev);
        }
    }
    if col.len() == m {
        Some(col)
    } else {
        None
    }
}

pub(crate) fn align8(x: u64) -> u64 {
    x.div_ceil(8) * 8
}

/// Lay out sections `(id, len_bytes)` after the header+table, assigning
/// 8-aligned offsets in order. Returns the table and the total file size.
pub(crate) fn assign_offsets(lens: &[(u64, u64)]) -> (Vec<SectionEntry>, u64) {
    let mut off = 48 + 24 * lens.len() as u64; // already 8-aligned
    let mut table = Vec::with_capacity(lens.len());
    for &(id, len) in lens {
        table.push((id, off, len));
        off = align8(off + len);
    }
    (table, off)
}

/// Write the fixed header and section table.
pub(crate) fn write_header<W: Write>(
    out: &mut W,
    flags: u64,
    n: u64,
    m: u64,
    table: &[SectionEntry],
) -> std::io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&flags.to_le_bytes())?;
    out.write_all(&n.to_le_bytes())?;
    out.write_all(&m.to_le_bytes())?;
    out.write_all(&(table.len() as u64).to_le_bytes())?;
    for &(id, off, len) in table {
        out.write_all(&id.to_le_bytes())?;
        out.write_all(&off.to_le_bytes())?;
        out.write_all(&len.to_le_bytes())?;
    }
    Ok(())
}

/// View a Pod slice as raw little-endian bytes (little-endian hosts only;
/// the cfg guard keeps big-endian builds on the per-element path).
#[cfg(target_endian = "little")]
pub(crate) fn lane_bytes<T: crate::store::Pod>(s: &[T]) -> &[u8] {
    // SAFETY: Pod types have no padding or invalid bit patterns; reading
    // a slice's memory as bytes is always sound.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

fn write_u64_lane<W: Write>(out: &mut W, s: &[u64]) -> std::io::Result<()> {
    #[cfg(target_endian = "little")]
    return out.write_all(lane_bytes(s));
    #[cfg(target_endian = "big")]
    {
        for &x in s {
            out.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    }
}

fn write_u32_lane<W: Write>(out: &mut W, s: &[u32]) -> std::io::Result<()> {
    #[cfg(target_endian = "little")]
    return out.write_all(lane_bytes(s));
    #[cfg(target_endian = "big")]
    {
        for &x in s {
            out.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Pad `out` to the next 8-byte boundary after writing `len` bytes at
/// 8-aligned `off`.
fn pad_to_align<W: Write>(out: &mut W, off: u64, len: u64) -> std::io::Result<()> {
    let end = off + len;
    let pad = align8(end) - end;
    out.write_all(&[0u8; 8][..pad as usize])
}

/// Optional extra payloads for [`write_packed_with`].
#[derive(Default)]
pub struct PackExtras<'a> {
    /// Persist this shard partition into the file (DESIGN.md §11). The
    /// partition must have been computed over the same graph being
    /// written. Range partitions cost only `K·(n+1)·8` bytes of shard
    /// row offsets (the shards share the global edge sections); fennel
    /// partitions additionally store compacted per-shard edge lanes.
    pub sharded: Option<&'a ShardedGraph>,
    /// Store `col_index` varint-delta compressed (`SEC_COL_VARINT`).
    /// Loads decode it back into an owned section, trading load-time
    /// heap for file bytes.
    pub compress: bool,
}

/// The full-span row offsets of a *range* shard owning `lo..hi`,
/// expressed in **global** `col_index` coordinates: `row[v] =
/// g_row[clamp(v, lo, hi)]`, so owned rows are verbatim global rows and
/// every other row is empty.
pub(crate) fn range_shard_row(g_row: &[u64], lo: VertexId, hi: VertexId) -> Vec<u64> {
    let n = (g_row.len() - 1) as u32;
    (0..=n).map(|v| g_row[v.clamp(lo, hi) as usize]).collect()
}

/// Serialize an in-memory graph (plus an optional relabeling that
/// produced it) into a packed file. The prefix cache is written as-is
/// when present, so loading the file makes `build_prefix_cache` a no-op.
pub fn write_packed<P: AsRef<Path>>(
    g: &Graph,
    relabeling: Option<&Relabeling>,
    path: P,
) -> Result<u64, IoError> {
    write_packed_with(g, relabeling, &PackExtras::default(), path)
}

/// [`write_packed`] with shard-partition and compression extras.
pub fn write_packed_with<P: AsRef<Path>>(
    g: &Graph,
    relabeling: Option<&Relabeling>,
    extras: &PackExtras<'_>,
    path: P,
) -> Result<u64, IoError> {
    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    if let Some(map) = relabeling {
        assert_eq!(map.new_to_old().len() as u64, n, "relabeling size mismatch");
    }

    let col_varint = if extras.compress {
        Some(encode_col_varint(&g.row_index, &g.col_index))
    } else {
        None
    };

    let mut flags = 0u64;
    if g.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    let mut lens: Vec<(u64, u64)> = vec![(SEC_ROW, (n + 1) * 8)];
    match &col_varint {
        Some(enc) => {
            flags |= FLAG_COMPRESSED;
            lens.push((SEC_COL_VARINT, enc.len() as u64));
        }
        None => lens.push((SEC_COL, m * 4)),
    }
    lens.push((SEC_WEIGHTS, m * 4));
    if g.has_vertex_labels() {
        flags |= FLAG_VLABELS;
        lens.push((SEC_VLABELS, n));
    }
    if g.has_edge_labels() {
        flags |= FLAG_ELABELS;
        lens.push((SEC_ELABELS, m));
    }
    if let Some(cache) = &g.prefix {
        flags |= FLAG_PREFIX;
        lens.push((SEC_PREFIX_ALL, m * 8));
        for (r, cum) in cache.per_relation.iter().enumerate() {
            if !cum.is_empty() {
                lens.push((SEC_REL_PREFIX_BASE + r as u64, m * 8));
            }
        }
    }
    if relabeling.is_some() {
        flags |= FLAG_RELABEL;
        lens.push((SEC_NEW_TO_OLD, n * 4));
    }
    if let Some(sg) = extras.sharded {
        assert_eq!(sg.num_vertices() as u64, n, "shard partition size mismatch");
        flags |= FLAG_SHARDS;
        let k = sg.k() as u64;
        lens.push((SEC_SHARD_META, (2 + 3 * k) * 8));
        match &sg.ownership {
            Ownership::Range { .. } => lens.push((SEC_SHARD_CUTS, (k + 1) * 4)),
            Ownership::Table { .. } => lens.push((SEC_SHARD_ASSIGN, n * 4)),
        }
        for (s, shard) in sg.shards.iter().enumerate() {
            lens.push((shard_section(s, SHARD_LANE_ROW), (n + 1) * 8));
            lens.push((
                shard_section(s, SHARD_LANE_GHOSTS),
                shard.ghosts.len() as u64 * 4,
            ));
            if matches!(sg.ownership, Ownership::Table { .. }) {
                lens.push((shard_section(s, SHARD_LANE_COL), shard.owned_edges * 4));
                lens.push((shard_section(s, SHARD_LANE_WEIGHTS), shard.owned_edges * 4));
                if shard.graph.has_edge_labels() {
                    lens.push((shard_section(s, SHARD_LANE_ELABELS), shard.owned_edges));
                }
                if shard.graph.prefix.is_some() {
                    lens.push((shard_section(s, SHARD_LANE_PREFIX), shard.owned_edges * 8));
                }
            }
        }
    }

    let (table, total) = assign_offsets(&lens);
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    write_header(&mut out, flags, n, m, &table)?;
    for &(id, off, len) in &table {
        match id {
            SEC_ROW => write_u64_lane(&mut out, &g.row_index)?,
            SEC_COL => write_u32_lane(&mut out, &g.col_index)?,
            SEC_COL_VARINT => out.write_all(col_varint.as_ref().expect("flagged"))?,
            SEC_WEIGHTS => write_u32_lane(&mut out, &g.weights)?,
            SEC_VLABELS => out.write_all(&g.vertex_labels)?,
            SEC_ELABELS => out.write_all(&g.edge_labels)?,
            SEC_PREFIX_ALL => write_u64_lane(&mut out, &g.prefix.as_ref().expect("flagged").all)?,
            SEC_NEW_TO_OLD => write_u32_lane(&mut out, relabeling.expect("flagged").new_to_old())?,
            SEC_SHARD_META => {
                let sg = extras.sharded.expect("flagged");
                let mut words = vec![sg.k() as u64, sg.strategy.code()];
                for shard in &sg.shards {
                    words.extend([
                        shard.owned_vertices,
                        shard.owned_edges,
                        shard.boundary_edges,
                    ]);
                }
                write_u64_lane(&mut out, &words)?
            }
            SEC_SHARD_CUTS => match &extras.sharded.expect("flagged").ownership {
                Ownership::Range { cuts } => write_u32_lane(&mut out, cuts)?,
                Ownership::Table { .. } => unreachable!("range section under table ownership"),
            },
            SEC_SHARD_ASSIGN => match &extras.sharded.expect("flagged").ownership {
                Ownership::Table { owner } => write_u32_lane(&mut out, owner)?,
                Ownership::Range { .. } => unreachable!("table section under range ownership"),
            },
            id if id >= SEC_SHARD_BASE => {
                let sg = extras.sharded.expect("flagged");
                let s = ((id - SEC_SHARD_BASE) / SEC_SHARD_STRIDE) as usize;
                let shard = &sg.shards[s];
                match (id - SEC_SHARD_BASE) % SEC_SHARD_STRIDE {
                    SHARD_LANE_ROW => match &sg.ownership {
                        // Range shards share the global edge sections, so
                        // their rows are global offsets.
                        Ownership::Range { cuts } => write_u64_lane(
                            &mut out,
                            &range_shard_row(&g.row_index, cuts[s], cuts[s + 1]),
                        )?,
                        // Fennel shards ship compacted lanes; their rows
                        // are exactly the in-memory sub-CSR's.
                        Ownership::Table { .. } => {
                            write_u64_lane(&mut out, &shard.graph.row_index)?
                        }
                    },
                    SHARD_LANE_GHOSTS => write_u32_lane(&mut out, &shard.ghosts)?,
                    SHARD_LANE_COL => write_u32_lane(&mut out, &shard.graph.col_index)?,
                    SHARD_LANE_WEIGHTS => write_u32_lane(&mut out, &shard.graph.weights)?,
                    SHARD_LANE_ELABELS => out.write_all(&shard.graph.edge_labels)?,
                    SHARD_LANE_PREFIX => write_u64_lane(
                        &mut out,
                        &shard.graph.prefix.as_ref().expect("laid out").all,
                    )?,
                    other => unreachable!("unknown shard lane {other}"),
                }
            }
            r => {
                let rel = (r - SEC_REL_PREFIX_BASE) as usize;
                write_u64_lane(
                    &mut out,
                    &g.prefix.as_ref().expect("flagged").per_relation[rel],
                )?
            }
        }
        pad_to_align(&mut out, off, len)?;
    }
    out.flush()?;
    Ok(total)
}

/// How [`load_packed`] should back the graph's sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// `mmap` where available, falling back to an aligned heap read.
    Auto,
    /// Force the aligned heap read (also exercises the borrowed-section
    /// machinery without a live mapping — useful in tests).
    Heap,
}

/// A graph loaded from a packed file, with its provenance.
#[derive(Debug)]
pub struct PackedGraph {
    pub graph: Graph,
    /// Present when the file was packed with degree relabeling; maps the
    /// packed (new) vertex ids back to the original input ids.
    pub relabeling: Option<Relabeling>,
    /// Total size of the packed file in bytes.
    pub file_bytes: u64,
    /// Whether the sections are backed by a live `mmap` mapping.
    pub mapped: bool,
    /// The file's section table `(id, offset, len_bytes)`.
    pub sections: Vec<SectionEntry>,
    /// Present when the file carries a shard partition
    /// (`FLAG_SHARDS`); summarises it without loading the shard
    /// sections. Use [`load_packed_sharded`] for the full partition.
    pub shard_meta: Option<ShardMeta>,
}

/// Per-shard summary counts stored in the `SEC_SHARD_META` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCounts {
    pub owned_vertices: u64,
    pub owned_edges: u64,
    /// Owned edges whose destination lives on another shard — each such
    /// step forces a walker hand-off (DESIGN.md §11).
    pub boundary_edges: u64,
}

/// Summary of the shard partition a packed file carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    pub strategy: ShardStrategy,
    pub shards: Vec<ShardCounts>,
}

impl ShardMeta {
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// Fraction of all owned edges that cross a shard boundary: the
    /// expected per-step hand-off probability under uniform edge use.
    pub fn crossing_rate(&self) -> f64 {
        let edges: u64 = self.shards.iter().map(|s| s.owned_edges).sum();
        if edges == 0 {
            return 0.0;
        }
        let boundary: u64 = self.shards.iter().map(|s| s.boundary_edges).sum();
        boundary as f64 / edges as f64
    }
}

/// A shard partition loaded from a packed file, with its provenance.
#[derive(Debug)]
pub struct PackedShardedGraph {
    pub sharded: ShardedGraph,
    /// See [`PackedGraph::relabeling`].
    pub relabeling: Option<Relabeling>,
    pub file_bytes: u64,
    pub mapped: bool,
    pub meta: ShardMeta,
}

fn corrupt(offset: u64, what: &'static str) -> IoError {
    IoError::CorruptAt { offset, what }
}

fn u64_at(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// Construct a `u64` section: a zero-copy region window on little-endian
/// hosts, an owned byte-swapped decode on big-endian hosts.
fn sec_u64(region: &Arc<Region>, off: usize, len: usize) -> Option<Section<u64>> {
    #[cfg(target_endian = "little")]
    {
        Section::from_region(region, off, len)
    }
    #[cfg(target_endian = "big")]
    {
        let bytes = region
            .bytes()
            .get(off..off.checked_add(len.checked_mul(8)?)?)?;
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<_>>()
                .into(),
        )
    }
}

fn sec_u32(region: &Arc<Region>, off: usize, len: usize) -> Option<Section<u32>> {
    #[cfg(target_endian = "little")]
    {
        Section::from_region(region, off, len)
    }
    #[cfg(target_endian = "big")]
    {
        let bytes = region
            .bytes()
            .get(off..off.checked_add(len.checked_mul(4)?)?)?;
        Some(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<_>>()
                .into(),
        )
    }
}

fn sec_u8(region: &Arc<Region>, off: usize, len: usize) -> Option<Section<u8>> {
    Section::from_region(region, off, len)
}

/// Load a packed graph file. The heavy sections are *borrowed* from the
/// file region (mmap or aligned heap buffer); nothing CSR-sized is
/// copied onto the heap in `Auto` mode on Linux (except a
/// `FLAG_COMPRESSED` adjacency, which decodes into one owned section).
pub fn load_packed<P: AsRef<Path>>(path: P, mode: LoadMode) -> Result<PackedGraph, IoError> {
    Ok(load_packed_file(path, mode)?.packed)
}

/// A parsed packed file plus the region/section state the sharded
/// loader needs beyond the base graph.
struct LoadedFile {
    packed: PackedGraph,
    region: Arc<Region>,
    by_id: HashMap<u64, (u64, u64)>,
}

fn load_packed_file<P: AsRef<Path>>(path: P, mode: LoadMode) -> Result<LoadedFile, IoError> {
    let file = std::fs::File::open(path)?;
    let region = Region::from_file(&file, mode == LoadMode::Heap)?;
    let bytes = region.bytes();
    let file_len = bytes.len() as u64;
    if bytes.len() < 48 {
        return Err(corrupt(file_len, "file shorter than the packed header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = u64_at(bytes, 8);
    if version != VERSION {
        return Err(IoError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let flags = u64_at(bytes, 16);
    let n64 = u64_at(bytes, 24);
    let m64 = u64_at(bytes, 32);
    let count = u64_at(bytes, 40);
    if n64 > u32::MAX as u64 || m64 > u32::MAX as u64 {
        return Err(corrupt(
            24,
            "vertex or edge count exceeds the 32-bit id space",
        ));
    }
    let (n, m) = (n64 as usize, m64 as usize);
    let table_end = 48u64
        .checked_add(
            count
                .checked_mul(24)
                .ok_or_else(|| corrupt(40, "section count overflows"))?,
        )
        .ok_or_else(|| corrupt(40, "section count overflows"))?;
    if table_end > file_len {
        return Err(corrupt(40, "section table extends past end of file"));
    }

    let mut sections = Vec::with_capacity(count as usize);
    let mut by_id: HashMap<u64, (u64, u64)> = HashMap::new();
    for i in 0..count as usize {
        let base = 48 + i * 24;
        let (id, off, len) = (
            u64_at(bytes, base),
            u64_at(bytes, base + 8),
            u64_at(bytes, base + 16),
        );
        if off % 8 != 0 {
            return Err(corrupt(base as u64 + 8, "section offset not 8-aligned"));
        }
        let end = off
            .checked_add(len)
            .ok_or_else(|| corrupt(base as u64 + 16, "section length overflows"))?;
        if end > file_len {
            return Err(corrupt(
                base as u64 + 16,
                "section extends past end of file",
            ));
        }
        if by_id.insert(id, (off, len)).is_some() {
            return Err(corrupt(base as u64, "duplicate section id"));
        }
        sections.push((id, off, len));
    }

    let expect = |id: u64, want_len: u64, what: &'static str| -> Result<(u64, u64), IoError> {
        let &(off, len) = by_id
            .get(&id)
            .ok_or_else(|| corrupt(48, "required section missing"))?;
        if len != want_len {
            return Err(corrupt(off, what));
        }
        Ok((off, len))
    };

    let (row_off, _) = expect(
        SEC_ROW,
        (n as u64 + 1) * 8,
        "row_index section has wrong size",
    )?;
    let (w_off, _) = expect(SEC_WEIGHTS, m as u64 * 4, "weights section has wrong size")?;

    let bad = || corrupt(row_off, "section window rejected (bounds or alignment)");
    let row_index = sec_u64(&region, row_off as usize, n + 1).ok_or_else(bad)?;
    let weights = sec_u32(&region, w_off as usize, m).ok_or_else(bad)?;

    // CSR endpoint checks: O(1) reads, catches header/section mismatch.
    if row_index[0] != 0 {
        return Err(corrupt(row_off, "row_index does not start at 0"));
    }
    if row_index[n] != m as u64 {
        return Err(corrupt(
            row_off + n as u64 * 8,
            "row_index end disagrees with edge count",
        ));
    }

    let col_index = if flags & FLAG_COMPRESSED != 0 {
        // Compressed files trade the zero-copy contract for file bytes:
        // the adjacency decodes into one owned heap section at load.
        let &(off, len) = by_id
            .get(&SEC_COL_VARINT)
            .ok_or_else(|| corrupt(48, "required section missing"))?;
        let enc = bytes
            .get(off as usize..(off + len) as usize)
            .ok_or_else(bad)?;
        let col = decode_col_varint(enc, &row_index, m)
            .ok_or_else(|| corrupt(off, "varint col_index fails to decode"))?;
        Section::from(col)
    } else {
        let (col_off, _) = expect(SEC_COL, m as u64 * 4, "col_index section has wrong size")?;
        sec_u32(&region, col_off as usize, m).ok_or_else(bad)?
    };

    let vertex_labels = if flags & FLAG_VLABELS != 0 {
        let (off, _) = expect(SEC_VLABELS, n as u64, "vertex-label section has wrong size")?;
        sec_u8(&region, off as usize, n).ok_or_else(bad)?
    } else {
        Section::default()
    };
    let edge_labels = if flags & FLAG_ELABELS != 0 {
        let (off, _) = expect(SEC_ELABELS, m as u64, "edge-label section has wrong size")?;
        sec_u8(&region, off as usize, m).ok_or_else(bad)?
    } else {
        Section::default()
    };

    let prefix = if flags & FLAG_PREFIX != 0 {
        let (off, _) = expect(
            SEC_PREFIX_ALL,
            m as u64 * 8,
            "prefix section has wrong size",
        )?;
        let all = sec_u64(&region, off as usize, m).ok_or_else(bad)?;
        let max_rel = by_id
            .keys()
            .filter(|&&id| (SEC_REL_PREFIX_BASE..SEC_SHARD_BASE).contains(&id))
            .map(|&id| id - SEC_REL_PREFIX_BASE)
            .max();
        let per_relation = match max_rel {
            Some(max) => {
                let mut v = Vec::with_capacity(max as usize + 1);
                for r in 0..=max {
                    v.push(match by_id.get(&(SEC_REL_PREFIX_BASE + r)) {
                        Some(&(off, len)) => {
                            if len != m as u64 * 8 {
                                return Err(corrupt(
                                    off,
                                    "per-relation prefix section has wrong size",
                                ));
                            }
                            sec_u64(&region, off as usize, m).ok_or_else(bad)?
                        }
                        None => Section::default(),
                    });
                }
                v
            }
            None => Vec::new(),
        };
        Some(PrefixCache { all, per_relation })
    } else {
        None
    };

    let relabeling = if flags & FLAG_RELABEL != 0 {
        let (off, _) = expect(
            SEC_NEW_TO_OLD,
            n as u64 * 4,
            "relabel section has wrong size",
        )?;
        let sec = sec_u32(&region, off as usize, n).ok_or_else(bad)?;
        Some(Relabeling::from_new_to_old(sec.to_vec()))
    } else {
        None
    };

    let shard_meta = if flags & FLAG_SHARDS != 0 {
        let &(off, len) = by_id
            .get(&SEC_SHARD_META)
            .ok_or_else(|| corrupt(48, "required section missing"))?;
        if len < 16 || len % 8 != 0 {
            return Err(corrupt(off, "shard metadata section has wrong size"));
        }
        let words = sec_u64(&region, off as usize, (len / 8) as usize).ok_or_else(bad)?;
        let k = words[0] as usize;
        if k == 0 || words.len() != 2 + 3 * k {
            return Err(corrupt(off, "shard metadata count mismatch"));
        }
        let strategy = ShardStrategy::from_code(words[1])
            .ok_or_else(|| corrupt(off + 8, "unknown shard strategy code"))?;
        let shards = (0..k)
            .map(|s| ShardCounts {
                owned_vertices: words[2 + 3 * s],
                owned_edges: words[3 + 3 * s],
                boundary_edges: words[4 + 3 * s],
            })
            .collect();
        Some(ShardMeta { strategy, shards })
    } else {
        None
    };

    let graph = Graph {
        row_index,
        col_index,
        weights,
        vertex_labels,
        edge_labels,
        directed: flags & FLAG_DIRECTED != 0,
        prefix,
    };
    Ok(LoadedFile {
        packed: PackedGraph {
            graph,
            relabeling,
            file_bytes: file_len,
            mapped: region.is_mapped(),
            sections,
            shard_meta,
        },
        region,
        by_id,
    })
}

/// Load the shard partition persisted in a packed file as a
/// [`ShardedGraph`] whose shard sub-CSRs borrow the file region.
///
/// Range-partitioned files share the global edge sections across all
/// shards (each shard adds only its own row-offset lane and ghost
/// table — under `mmap` the clones are reference-counted window
/// handles, not copies). Fennel-partitioned files load each shard's
/// compacted edge lanes; their prefix caches carry the all-relations
/// cumulative only. Fails with [`IoError::CorruptAt`] if the file was
/// packed without `--shards`.
pub fn load_packed_sharded<P: AsRef<Path>>(
    path: P,
    mode: LoadMode,
) -> Result<PackedShardedGraph, IoError> {
    let LoadedFile {
        packed,
        region,
        by_id,
    } = load_packed_file(path, mode)?;
    let meta = packed
        .shard_meta
        .clone()
        .ok_or_else(|| corrupt(16, "file carries no shard partition (pack with --shards)"))?;
    let g = &packed.graph;
    let n = g.num_vertices();
    let k = meta.k();
    let bad = || corrupt(48, "shard section window rejected (bounds or alignment)");
    let require = |id: u64, want_len: u64, what: &'static str| -> Result<u64, IoError> {
        let &(off, len) = by_id
            .get(&id)
            .ok_or_else(|| corrupt(48, "shard section missing"))?;
        if len != want_len {
            return Err(corrupt(off, what));
        }
        Ok(off)
    };

    let ownership = match meta.strategy {
        ShardStrategy::Range => {
            let off = require(
                SEC_SHARD_CUTS,
                (k as u64 + 1) * 4,
                "shard cut section has wrong size",
            )?;
            let cuts = sec_u32(&region, off as usize, k + 1)
                .ok_or_else(bad)?
                .to_vec();
            if cuts.first() != Some(&0) || cuts.last().copied() != Some(n as VertexId) {
                return Err(corrupt(off, "shard cuts do not span the vertex range"));
            }
            Ownership::Range { cuts }
        }
        ShardStrategy::Fennel | ShardStrategy::Walk => {
            let off = require(
                SEC_SHARD_ASSIGN,
                n as u64 * 4,
                "shard assignment section has wrong size",
            )?;
            let owner = sec_u32(&region, off as usize, n).ok_or_else(bad)?.to_vec();
            Ownership::Table { owner }
        }
    };

    let mut shards = Vec::with_capacity(k);
    for (s, counts) in meta.shards.iter().enumerate() {
        let row_off = require(
            shard_section(s, SHARD_LANE_ROW),
            (n as u64 + 1) * 8,
            "shard row section has wrong size",
        )?;
        let row_index = sec_u64(&region, row_off as usize, n + 1).ok_or_else(bad)?;
        let &(gh_off, gh_len) = by_id
            .get(&shard_section(s, SHARD_LANE_GHOSTS))
            .ok_or_else(|| corrupt(48, "shard section missing"))?;
        if gh_len % 4 != 0 {
            return Err(corrupt(gh_off, "shard ghost section has wrong size"));
        }
        let ghosts = sec_u32(&region, gh_off as usize, (gh_len / 4) as usize).ok_or_else(bad)?;

        let graph = match meta.strategy {
            ShardStrategy::Range => Graph {
                row_index,
                col_index: g.col_index.clone(),
                weights: g.weights.clone(),
                vertex_labels: g.vertex_labels.clone(),
                edge_labels: g.edge_labels.clone(),
                directed: g.is_directed(),
                prefix: g.prefix.clone(),
            },
            ShardStrategy::Fennel | ShardStrategy::Walk => {
                let me = counts.owned_edges as usize;
                let col_off = require(
                    shard_section(s, SHARD_LANE_COL),
                    me as u64 * 4,
                    "shard col section has wrong size",
                )?;
                let w_off = require(
                    shard_section(s, SHARD_LANE_WEIGHTS),
                    me as u64 * 4,
                    "shard weight section has wrong size",
                )?;
                let edge_labels = if g.has_edge_labels() {
                    let off = require(
                        shard_section(s, SHARD_LANE_ELABELS),
                        me as u64,
                        "shard edge-label section has wrong size",
                    )?;
                    sec_u8(&region, off as usize, me).ok_or_else(bad)?
                } else {
                    Section::default()
                };
                let prefix = match by_id.get(&shard_section(s, SHARD_LANE_PREFIX)) {
                    Some(&(off, len)) => {
                        if len != me as u64 * 8 {
                            return Err(corrupt(off, "shard prefix section has wrong size"));
                        }
                        Some(PrefixCache {
                            all: sec_u64(&region, off as usize, me).ok_or_else(bad)?,
                            per_relation: Vec::new(),
                        })
                    }
                    None => None,
                };
                Graph {
                    row_index,
                    col_index: sec_u32(&region, col_off as usize, me).ok_or_else(bad)?,
                    weights: sec_u32(&region, w_off as usize, me).ok_or_else(bad)?,
                    vertex_labels: g.vertex_labels.clone(),
                    edge_labels,
                    directed: g.is_directed(),
                    prefix,
                }
            }
        };
        shards.push(Shard {
            graph,
            ghosts,
            owned_vertices: counts.owned_vertices,
            owned_edges: counts.owned_edges,
            boundary_edges: counts.boundary_edges,
        });
    }

    Ok(PackedShardedGraph {
        sharded: ShardedGraph {
            shards,
            ownership,
            strategy: meta.strategy,
        },
        relabeling: packed.relabeling,
        file_bytes: packed.file_bytes,
        mapped: packed.mapped,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lightrw_packed_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn packed_roundtrip_is_exact_in_both_modes() {
        let g = generators::rmat_dataset(8, 5);
        let path = tmp("roundtrip.lrwpak");
        let total = write_packed(&g, None, &path).unwrap();
        assert_eq!(total, std::fs::metadata(&path).unwrap().len());
        for mode in [LoadMode::Auto, LoadMode::Heap] {
            let loaded = load_packed(&path, mode).unwrap();
            assert_eq!(loaded.graph, g);
            assert!(loaded.graph.is_out_of_core());
            assert!(loaded.relabeling.is_none());
            // The prefix cache travels in the file: building it again is
            // a no-op and the cumulative arrays match the in-memory build.
            assert!(loaded.graph.has_prefix_cache());
            let mut reloaded = loaded.graph;
            reloaded.build_prefix_cache();
            for v in 0..g.num_vertices() as u32 {
                assert_eq!(reloaded.static_prefix(v), g.static_prefix(v));
                for r in 0..2 {
                    assert_eq!(reloaded.relation_prefix(v, r), g.relation_prefix(v, r));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn packed_preserves_labels_and_direction() {
        let g = crate::GraphBuilder::undirected()
            .labeled_edge(0, 1, 3, 1)
            .labeled_edge(1, 2, 5, 2)
            .vertex_labels(vec![7, 8, 9])
            .build();
        let path = tmp("labels.lrwpak");
        write_packed(&g, None, &path).unwrap();
        let loaded = load_packed(&path, LoadMode::Heap).unwrap().graph;
        assert_eq!(loaded, g);
        assert!(!loaded.is_directed());
        assert_eq!(loaded.vertex_label(2), 9);
        assert_eq!(loaded.neighbor_relations(1), g.neighbor_relations(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn relabeling_roundtrips_through_the_file() {
        let g = generators::rmat_dataset(7, 3);
        let (reordered, map) = crate::reorder::by_degree_descending(&g);
        let path = tmp("relabel.lrwpak");
        write_packed(&reordered, Some(&map), &path).unwrap();
        let loaded = load_packed(&path, LoadMode::Auto).unwrap();
        assert_eq!(loaded.graph, reordered);
        let lm = loaded.relabeling.unwrap();
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(lm.old_id(v), map.old_id(v));
            assert_eq!(lm.new_id(v), map.new_id(v));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loader_rejects_corruption_loudly() {
        let g = generators::rmat_dataset(6, 1);
        let path = tmp("corrupt.lrwpak");
        write_packed(&g, None, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut buf = clean.clone();
        buf[0] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            load_packed(&path, LoadMode::Heap),
            Err(IoError::BadMagic)
        ));

        // Unsupported version.
        let mut buf = clean.clone();
        buf[8..16].copy_from_slice(&9u64.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            load_packed(&path, LoadMode::Heap),
            Err(IoError::UnsupportedVersion { found: 9, .. })
        ));

        // Truncated file: some section now extends past EOF.
        let mut buf = clean.clone();
        buf.truncate(buf.len() - 16);
        std::fs::write(&path, &buf).unwrap();
        assert!(load_packed(&path, LoadMode::Heap).is_err());

        // Vertex count bumped: row_index size check fires.
        let mut buf = clean.clone();
        let n = g.num_vertices() as u64;
        buf[24..32].copy_from_slice(&(n + 1).to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        assert!(load_packed(&path, LoadMode::Heap).is_err());

        // Tiny file.
        std::fs::write(&path, b"LRWPAK01").unwrap();
        assert!(matches!(
            load_packed(&path, LoadMode::Heap),
            Err(IoError::CorruptAt { .. })
        ));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_roundtrip_is_exact_and_smaller() {
        let g = generators::rmat_dataset(9, 4);
        let plain = tmp("plain_col.lrwpak");
        let packed = tmp("varint_col.lrwpak");
        let plain_bytes = write_packed(&g, None, &plain).unwrap();
        let extras = PackExtras {
            compress: true,
            ..Default::default()
        };
        let comp_bytes = write_packed_with(&g, None, &extras, &packed).unwrap();
        assert!(
            comp_bytes < plain_bytes,
            "varint file ({comp_bytes}) not smaller than plain ({plain_bytes})"
        );
        for mode in [LoadMode::Auto, LoadMode::Heap] {
            let loaded = load_packed(&packed, mode).unwrap();
            assert_eq!(loaded.graph, g);
            assert!(loaded.shard_meta.is_none());
        }
        std::fs::remove_file(&plain).ok();
        std::fs::remove_file(&packed).ok();
    }

    #[test]
    fn corrupt_varint_col_is_rejected() {
        let g = generators::rmat_dataset(6, 2);
        let path = tmp("varint_corrupt.lrwpak");
        let extras = PackExtras {
            compress: true,
            ..Default::default()
        };
        write_packed_with(&g, None, &extras, &path).unwrap();
        let loaded = load_packed(&path, LoadMode::Heap).unwrap();
        let &(_, off, len) = loaded
            .sections
            .iter()
            .find(|&&(id, _, _)| id == SEC_COL_VARINT)
            .unwrap();
        let mut buf = std::fs::read(&path).unwrap();
        // All-continuation bytes: every varint read overruns its width
        // bound, so the decode must fail loudly.
        for b in &mut buf[off as usize..(off + len) as usize] {
            *b = 0x80;
        }
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            load_packed(&path, LoadMode::Heap),
            Err(IoError::CorruptAt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    fn assert_matches_partition(loaded: &PackedShardedGraph, mem: &ShardedGraph, g: &Graph) {
        let n = g.num_vertices() as u32;
        assert_eq!(loaded.sharded.k(), mem.k());
        assert_eq!(loaded.sharded.strategy, mem.strategy);
        assert_eq!(loaded.meta.k(), mem.k());
        let rate = loaded.meta.crossing_rate();
        assert!((rate - mem.crossing_rate()).abs() < 1e-12);
        for v in 0..n {
            assert_eq!(loaded.sharded.owner_of(v), mem.owner_of(v), "owner of {v}");
        }
        for (s, (ls, ms)) in loaded
            .sharded
            .shards
            .iter()
            .zip(mem.shards.iter())
            .enumerate()
        {
            assert_eq!(ls.owned_vertices, ms.owned_vertices, "shard {s} vertices");
            assert_eq!(ls.owned_edges, ms.owned_edges, "shard {s} edges");
            assert_eq!(ls.boundary_edges, ms.boundary_edges, "shard {s} boundary");
            assert_eq!(&ls.ghosts[..], &ms.ghosts[..], "shard {s} ghosts");
            for v in 0..n {
                assert_eq!(
                    ls.graph.neighbors(v),
                    ms.graph.neighbors(v),
                    "shard {s} row {v}"
                );
                assert_eq!(ls.graph.neighbor_weights(v), ms.graph.neighbor_weights(v));
                if mem.owner_of(v) == s && ms.graph.has_prefix_cache() {
                    assert_eq!(ls.graph.static_prefix(v), ms.graph.static_prefix(v));
                }
            }
        }
    }

    #[test]
    fn range_shard_partition_roundtrips_through_the_file() {
        let g = generators::rmat_dataset(8, 6);
        let mem = crate::partition_graph(&g, 4, ShardStrategy::Range);
        let path = tmp("sharded_range.lrwpak");
        let extras = PackExtras {
            sharded: Some(&mem),
            ..Default::default()
        };
        write_packed_with(&g, None, &extras, &path).unwrap();

        // The plain loader still sees the base graph, plus the summary.
        let flat = load_packed(&path, LoadMode::Heap).unwrap();
        assert_eq!(flat.graph, g);
        let meta = flat.shard_meta.unwrap();
        assert_eq!(meta.k(), 4);
        assert_eq!(meta.strategy, ShardStrategy::Range);

        for mode in [LoadMode::Auto, LoadMode::Heap] {
            let loaded = load_packed_sharded(&path, mode).unwrap();
            assert_matches_partition(&loaded, &mem, &g);
            // Range shards share the global per-relation prefix lanes.
            for shard in &loaded.sharded.shards {
                assert!(shard.graph.has_prefix_cache());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fennel_shard_partition_roundtrips_through_the_file() {
        let g = generators::rmat_dataset(8, 7);
        let mem = crate::partition_graph(&g, 3, ShardStrategy::Fennel);
        let path = tmp("sharded_fennel.lrwpak");
        let extras = PackExtras {
            sharded: Some(&mem),
            ..Default::default()
        };
        write_packed_with(&g, None, &extras, &path).unwrap();
        let loaded = load_packed_sharded(&path, LoadMode::Auto).unwrap();
        assert_matches_partition(&loaded, &mem, &g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_and_sharded_combine() {
        let g = generators::rmat_dataset(7, 9);
        let mem = crate::partition_graph(&g, 2, ShardStrategy::Range);
        let path = tmp("sharded_varint.lrwpak");
        let extras = PackExtras {
            sharded: Some(&mem),
            compress: true,
        };
        write_packed_with(&g, None, &extras, &path).unwrap();
        let loaded = load_packed_sharded(&path, LoadMode::Auto).unwrap();
        assert_matches_partition(&loaded, &mem, &g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plain_file_refuses_sharded_load() {
        let g = generators::rmat_dataset(6, 3);
        let path = tmp("unsharded.lrwpak");
        write_packed(&g, None, &path).unwrap();
        assert!(matches!(
            load_packed_sharded(&path, LoadMode::Heap),
            Err(IoError::CorruptAt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn untyped_unweighted_graph_packs() {
        let g = crate::GraphBuilder::directed()
            .edges([(0, 1), (1, 2)])
            .build();
        let path = tmp("plain.lrwpak");
        write_packed(&g, None, &path).unwrap();
        let loaded = load_packed(&path, LoadMode::Auto).unwrap().graph;
        assert_eq!(loaded, g);
        assert!(!loaded.has_vertex_labels());
        assert!(!loaded.has_edge_labels());
        assert_eq!(loaded.relation_prefix(0, 0), g.relation_prefix(0, 0));
        std::fs::remove_file(&path).ok();
    }
}
