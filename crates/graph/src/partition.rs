//! Vertex partitioning for sharded walk execution (DESIGN.md §11).
//!
//! A [`ShardedGraph`] splits a CSR into `K` vertex-disjoint shards. Each
//! shard is a **full-span sub-CSR**: its `row_index` still covers the
//! whole vertex-id space, but only vertices the shard *owns* keep their
//! adjacency rows — every other row is empty. Vertex ids therefore stay
//! global on every shard; there is no translation table on the walk hot
//! path, and a walker handed between shards carries plain global ids.
//!
//! Vertices referenced by a shard's edges but owned elsewhere are
//! **ghosts**: the shard lists them (sorted) so an engine can tell "dead
//! end" (empty row on the owner) from "remote" (empty row here, real row
//! on `owner_of(v)`) without consulting the ownership map per neighbor.
//!
//! Three ownership strategies:
//! - [`ShardStrategy::Range`] — contiguous vertex ranges cut so each
//!   shard holds ≈ |E|/K edges (degree-prefix balancing). Streamable:
//!   the packer computes cuts from the degree array alone.
//! - [`ShardStrategy::Fennel`] — the one-pass streaming greedy of
//!   Tsourakakis et al. (WSDM 2014): each vertex joins the shard with the
//!   most already-placed neighbors, minus a convex size penalty. Better
//!   edge locality on clustered graphs; needs the graph in memory.
//! - [`ShardStrategy::Walk`] — fennel-style greedy whose affinity weights
//!   each edge by the probability a random walker actually traverses it,
//!   estimated from the stationary distribution (degree-proportional prior
//!   refined by a deterministic pilot-walk pass). Minimizes *expected walk
//!   crossings* — the quantity the parallel shard executors in
//!   `lightrw::sharded` pay for on every hand-off (DESIGN.md §12) —
//!   rather than the raw boundary-edge count. See
//!   [`expected_walk_crossing`].
//!
//! Every strategy guarantees **non-empty shards**: `k` is clamped to the
//! vertex count and degenerate placements (skewed range cuts, greedy runs
//! that starve a shard) are repaired deterministically.

use crate::csr::{Graph, VertexId};
use crate::store::Section;
use lightrw_rng::{Rng, SplitMix64};

/// How vertices are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous vertex ranges, cut to balance edge counts.
    Range,
    /// Fennel streaming greedy (neighbor affinity minus size penalty).
    Fennel,
    /// Walk-aware greedy: fennel affinity weighted by estimated stationary
    /// edge-traversal probability, minimizing expected walk crossings.
    Walk,
}

impl ShardStrategy {
    /// Stable lowercase name (CLI surface + packed-file metadata).
    pub fn name(self) -> &'static str {
        match self {
            ShardStrategy::Range => "range",
            ShardStrategy::Fennel => "fennel",
            ShardStrategy::Walk => "walk",
        }
    }

    /// Parse a CLI strategy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "range" => Some(ShardStrategy::Range),
            "fennel" => Some(ShardStrategy::Fennel),
            "walk" => Some(ShardStrategy::Walk),
            _ => None,
        }
    }

    /// Packed-file code (`SEC_SHARD_META` word 1).
    pub fn code(self) -> u64 {
        match self {
            ShardStrategy::Range => 0,
            ShardStrategy::Fennel => 1,
            ShardStrategy::Walk => 2,
        }
    }

    /// Inverse of [`ShardStrategy::code`].
    pub fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(ShardStrategy::Range),
            1 => Some(ShardStrategy::Fennel),
            2 => Some(ShardStrategy::Walk),
            _ => None,
        }
    }
}

/// The vertex → shard map, in whichever form the strategy produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ownership {
    /// `cuts.len() == k + 1`; shard `s` owns vertices `cuts[s]..cuts[s+1]`.
    Range { cuts: Vec<VertexId> },
    /// One owner entry per vertex.
    Table { owner: Vec<u32> },
}

impl Ownership {
    /// Shard owning vertex `v`.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> usize {
        match self {
            Ownership::Range { cuts } => {
                // partition_point: first cut > v, minus one.
                cuts.partition_point(|&c| c <= v) - 1
            }
            Ownership::Table { owner } => owner[v as usize] as usize,
        }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        match self {
            Ownership::Range { cuts } => cuts.len() - 1,
            Ownership::Table { owner } => owner.iter().copied().max().map_or(1, |m| m as usize + 1),
        }
    }
}

/// One shard: a full-span sub-CSR plus its boundary bookkeeping.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Full-span CSR: global ids, empty rows for non-owned vertices.
    pub graph: Graph,
    /// Sorted global ids referenced by this shard's edges but owned by
    /// another shard (the ghost-vertex table). A `Section` so packed
    /// sharded files serve it zero-copy from the mapping.
    pub ghosts: Section<VertexId>,
    /// Vertices this shard owns.
    pub owned_vertices: u64,
    /// Edges stored on this shard (rows of owned vertices).
    pub owned_edges: u64,
    /// Owned edges whose destination is a ghost — each is a potential
    /// walker hand-off.
    pub boundary_edges: u64,
}

impl Shard {
    /// Whether `v` is a ghost on this shard (binary search over the
    /// sorted ghost table).
    #[inline]
    pub fn is_ghost(&self, v: VertexId) -> bool {
        self.ghosts.binary_search(&v).is_ok()
    }

    /// Fraction of this shard's edges that cross to another shard — the
    /// expected per-step hand-off probability under uniform edge use.
    pub fn crossing_rate(&self) -> f64 {
        if self.owned_edges == 0 {
            0.0
        } else {
            self.boundary_edges as f64 / self.owned_edges as f64
        }
    }
}

/// A graph split into `K` vertex-disjoint shards.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    pub shards: Vec<Shard>,
    pub ownership: Ownership,
    pub strategy: ShardStrategy,
}

impl ShardedGraph {
    /// Number of shards.
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// Shard owning vertex `v`.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> usize {
        self.ownership.owner_of(v)
    }

    /// Vertices of the underlying graph (every shard spans all of them).
    pub fn num_vertices(&self) -> usize {
        self.shards.first().map_or(0, |s| s.graph.num_vertices())
    }

    /// Total stored edges across shards (= the unsharded edge count).
    pub fn num_edges(&self) -> u64 {
        self.shards.iter().map(|s| s.owned_edges).sum()
    }

    /// Aggregate expected crossing rate: boundary edges / all edges.
    pub fn crossing_rate(&self) -> f64 {
        let e = self.num_edges();
        if e == 0 {
            0.0
        } else {
            self.shards.iter().map(|s| s.boundary_edges).sum::<u64>() as f64 / e as f64
        }
    }
}

/// Fennel size-penalty exponent γ (the paper's recommended 3/2).
const FENNEL_GAMMA: f64 = 1.5;
/// Fennel capacity slack ν: no shard grows past ν·n/k vertices.
const FENNEL_SLACK: f64 = 1.1;

/// Split `g` into `k` shards under `strategy`.
///
/// Every shard's sub-CSR keeps the prefix cache when the source graph has
/// one (per-vertex cumulative sums are row-local, so a shard's cache
/// entries are bit-identical to the unsharded graph's — the RNG-identity
/// contract of DESIGN.md §5 survives sharding).
///
/// `k` is clamped to the vertex count (a shard with zero vertices can
/// never do useful work, and empty shards used to confuse `Ownership::k`
/// and the packed-file round trip). After clamping, every shard is
/// guaranteed to own at least one vertex.
///
/// # Panics
///
/// Panics when `k == 0`.
pub fn partition_graph(g: &Graph, k: usize, strategy: ShardStrategy) -> ShardedGraph {
    assert!(k > 0, "partition_graph requires k >= 1");
    let k = clamp_shards(k, g.num_vertices());
    let ownership = match strategy {
        ShardStrategy::Range => Ownership::Range {
            cuts: range_cuts(g, k),
        },
        ShardStrategy::Fennel => Ownership::Table {
            owner: ensure_nonempty(fennel_assign(g, k), k),
        },
        ShardStrategy::Walk => Ownership::Table {
            owner: ensure_nonempty(walk_assign(g, k), k),
        },
    };
    build_shards(g, k, ownership, strategy)
}

/// Clamp a requested shard count to the number of vertices (so every
/// shard can own at least one). Empty graphs degrade to a single shard.
pub fn clamp_shards(k: usize, num_vertices: usize) -> usize {
    k.min(num_vertices.max(1))
}

/// Repair a table assignment so every shard `0..k` owns at least one
/// vertex: each empty shard deterministically steals the lowest-id vertex
/// of the (then) largest shard. Requires `owner.len() >= k`; a no-op when
/// the assignment is already covering.
fn ensure_nonempty(mut owner: Vec<u32>, k: usize) -> Vec<u32> {
    let n = owner.len();
    if k <= 1 || n < k {
        return owner;
    }
    let mut sizes = vec![0u64; k];
    for &o in &owner {
        sizes[o as usize] += 1;
    }
    for s in 0..k {
        if sizes[s] == 0 {
            // n >= k and some shard is empty, so the largest holds >= 2
            // vertices and stays non-empty after donating one.
            let donor = (0..k).max_by_key(|&d| (sizes[d], usize::MAX - d)).unwrap();
            let v = owner
                .iter()
                .position(|&o| o as usize == donor)
                .expect("donor shard has a vertex");
            owner[v] = s as u32;
            sizes[donor] -= 1;
            sizes[s] += 1;
        }
    }
    owner
}

/// Degree-prefix balanced range cuts: shard `s` gets vertices until its
/// edge count reaches `(s+1)·|E|/k` (last shard takes the remainder).
pub fn range_cuts(g: &Graph, k: usize) -> Vec<VertexId> {
    cuts_from_row_index(g.row_index(), k)
}

/// [`range_cuts`] over a raw `row_index` array (`n + 1` offsets) — the
/// packer uses this form before any `Graph` exists.
///
/// When `k <= n` every span is guaranteed non-empty: a cut that the
/// degree-prefix target would land on top of its predecessor (heavily
/// skewed graphs — one hub holding most edges) is pushed forward, and
/// late cuts are pulled back far enough that each remaining shard still
/// gets a vertex.
pub fn cuts_from_row_index(row_index: &[u64], k: usize) -> Vec<VertexId> {
    let n = row_index.len() - 1;
    let total = row_index[n];
    let mut cuts = Vec::with_capacity(k + 1);
    cuts.push(0);
    for s in 1..k {
        let target = total * s as u64 / k as u64;
        let mut c = row_index.partition_point(|&off| off < target) as VertexId;
        if k <= n {
            // Non-empty guarantee: at least one vertex behind this cut,
            // and at least one left for each of the k - s shards ahead.
            let lo = cuts.last().unwrap() + 1;
            let hi = (n - (k - s)) as VertexId;
            c = c.clamp(lo.min(hi), hi);
        } else {
            // Degenerate k > n (only reachable through the raw-array form;
            // `partition_graph` clamps k): keep cuts monotone.
            c = c.clamp(*cuts.last().unwrap(), n as VertexId);
        }
        cuts.push(c);
    }
    cuts.push(n as VertexId);
    cuts
}

/// Fennel one-pass greedy assignment. Deterministic: vertices stream in id
/// order and ties break toward the lowest shard id.
fn fennel_assign(g: &Graph, k: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let m = g.num_edges() as f64;
    // α calibrated so the penalty and affinity terms trade off at the
    // average degree: α = m · k^(γ-1) / n^γ (Fennel §3, with γ = 3/2).
    let alpha = if n == 0 {
        0.0
    } else {
        m * (k as f64).powf(FENNEL_GAMMA - 1.0) / (n as f64).powf(FENNEL_GAMMA)
    };
    let cap = ((FENNEL_SLACK * n as f64 / k as f64).ceil() as u64).max(1);
    let mut owner = vec![u32::MAX; n];
    let mut sizes = vec![0u64; k];
    let mut affinity = vec![0u64; k];
    let mut touched: Vec<usize> = Vec::with_capacity(k);
    for v in 0..n as VertexId {
        for &nbr in g.neighbors(v) {
            let o = owner[nbr as usize];
            if o != u32::MAX {
                if affinity[o as usize] == 0 {
                    touched.push(o as usize);
                }
                affinity[o as usize] += 1;
            }
        }
        let mut best = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        for s in 0..k {
            if sizes[s] >= cap {
                continue;
            }
            let sz = sizes[s] as f64;
            let penalty = alpha * ((sz + 1.0).powf(FENNEL_GAMMA) - sz.powf(FENNEL_GAMMA));
            let score = affinity[s] as f64 - penalty;
            if score > best_score {
                best_score = score;
                best = s;
            }
        }
        // All shards at capacity can only happen from rounding slack; put
        // the vertex on the smallest shard.
        if best == usize::MAX {
            best = (0..k).min_by_key(|&s| sizes[s]).unwrap();
        }
        owner[v as usize] = best as u32;
        sizes[best] += 1;
        for &s in &touched {
            affinity[s] = 0;
        }
        touched.clear();
    }
    owner
}

/// Pilot-walk parameters for [`stationary_estimate`]. Fixed constants keep
/// the estimate — and therefore [`ShardStrategy::Walk`] placements — a pure
/// function of the graph.
const PILOT_WALKS: usize = 4096;
const PILOT_LENGTH: usize = 8;
const PILOT_SEED: u64 = 0x5AC4_71F3_9E37_79B9;

/// Estimate the stationary visit distribution of an unbiased random walk.
///
/// Blend of a degree-proportional prior (exact for undirected graphs) with
/// visit counts from a short deterministic pilot pass: up to
/// `PILOT_WALKS` uniform walks of `PILOT_LENGTH` steps, started evenly
/// over the non-isolated vertices and driven by a fixed [`SplitMix64`]
/// seed. Returns a probability vector (sums to 1 unless the graph has no
/// edges, in which case it is uniform over vertices).
pub fn stationary_estimate(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let total_deg: u64 = (0..n as VertexId).map(|v| g.degree(v) as u64).sum();
    if total_deg == 0 {
        return vec![1.0 / n as f64; n];
    }
    let mut pi: Vec<f64> = (0..n as VertexId)
        .map(|v| g.degree(v) as f64 / total_deg as f64)
        .collect();
    let starts = g.non_isolated_vertices();
    if !starts.is_empty() {
        let walks = PILOT_WALKS.min(starts.len().max(64));
        let mut rng = SplitMix64::new(PILOT_SEED);
        let mut visits = vec![0u32; n];
        let mut total_visits = 0u64;
        for w in 0..walks {
            // Evenly spaced starts cover the id space without clustering.
            let mut cur = starts[w * starts.len() / walks];
            for _ in 0..PILOT_LENGTH {
                let row = g.neighbors(cur);
                if row.is_empty() {
                    break;
                }
                cur = row[(rng.next_u64() % row.len() as u64) as usize];
                visits[cur as usize] += 1;
                total_visits += 1;
            }
        }
        if total_visits > 0 {
            let inv = 1.0 / total_visits as f64;
            for (p, &c) in pi.iter_mut().zip(visits.iter()) {
                *p = 0.5 * *p + 0.5 * (c as f64 * inv);
            }
        }
    }
    pi
}

/// Expected walk crossings per step under ownership `own`:
/// `Σ_v π(v)/deg(v) · |{u ∈ N(v) : owner(u) ≠ owner(v)}|` with `π` from
/// [`stationary_estimate`]. This is the probability that one step of a
/// stationary unbiased walker leaves its current shard — the hand-off
/// rate the parallel executors in `lightrw::sharded` pay for — whereas
/// [`ShardedGraph::crossing_rate`] weights every edge equally.
pub fn expected_walk_crossing(g: &Graph, own: &Ownership) -> f64 {
    let pi = stationary_estimate(g);
    expected_walk_crossing_with(g, &pi, |v| own.owner_of(v))
}

fn expected_walk_crossing_with(g: &Graph, pi: &[f64], owner_of: impl Fn(VertexId) -> usize) -> f64 {
    let mut rate = 0.0;
    for v in 0..g.num_vertices() as VertexId {
        let row = g.neighbors(v);
        if row.is_empty() {
            continue;
        }
        let here = owner_of(v);
        let remote = row.iter().filter(|&&d| owner_of(d) != here).count();
        if remote > 0 {
            rate += pi[v as usize] * remote as f64 / row.len() as f64;
        }
    }
    rate
}

/// Walk-aware greedy assignment: fennel's one-pass stream, but the
/// affinity of a candidate shard counts *expected edge traversals*
/// (`π(u)/deg(u) + π(v)/deg(v)`, normalized so the average edge weighs
/// ~1, which keeps fennel's α calibration valid) instead of raw edge
/// counts. Falls back to degree-prefix range cuts when the greedy
/// placement scores worse on the walk objective, so `walk` never loses
/// to `range` on the metric it optimizes.
fn walk_assign(g: &Graph, k: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let m = g.num_edges() as f64;
    let pi = stationary_estimate(g);
    // Per-vertex expected per-step traversal rate of each incident edge.
    let edge_rate: Vec<f64> = (0..n as VertexId)
        .map(|v| {
            let d = g.degree(v);
            if d == 0 {
                0.0
            } else {
                pi[v as usize] / d as f64
            }
        })
        .collect();
    // Scale so the mean edge weight is ~1 (Σ_v π(v) = 1 spread over m
    // stored edges), keeping fennel's α trade-off calibration.
    let scale = m.max(1.0);
    let alpha = if n == 0 {
        0.0
    } else {
        m * (k as f64).powf(FENNEL_GAMMA - 1.0) / (n as f64).powf(FENNEL_GAMMA)
    };
    let cap = ((FENNEL_SLACK * n as f64 / k as f64).ceil() as u64).max(1);
    let mut owner = vec![u32::MAX; n];
    let mut sizes = vec![0u64; k];
    let mut affinity = vec![0.0f64; k];
    let mut touched: Vec<usize> = Vec::with_capacity(k);
    for v in 0..n as VertexId {
        for &nbr in g.neighbors(v) {
            let o = owner[nbr as usize];
            if o != u32::MAX {
                if affinity[o as usize] == 0.0 {
                    touched.push(o as usize);
                }
                // Both directions of the edge contribute: the walker can
                // traverse v→nbr or nbr→v.
                affinity[o as usize] += scale * (edge_rate[v as usize] + edge_rate[nbr as usize]);
            }
        }
        let mut best = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        for s in 0..k {
            if sizes[s] >= cap {
                continue;
            }
            let sz = sizes[s] as f64;
            let penalty = alpha * ((sz + 1.0).powf(FENNEL_GAMMA) - sz.powf(FENNEL_GAMMA));
            let score = affinity[s] - penalty;
            if score > best_score {
                best_score = score;
                best = s;
            }
        }
        if best == usize::MAX {
            best = (0..k).min_by_key(|&s| sizes[s]).unwrap();
        }
        owner[v as usize] = best as u32;
        sizes[best] += 1;
        for &s in &touched {
            affinity[s] = 0.0;
        }
        touched.clear();
    }
    // Best-of fallback: score the greedy table against plain range cuts
    // under the walk objective and keep the winner (as a table either
    // way, so the packed representation stays uniform for `walk`).
    let cuts = range_cuts(g, k);
    let range_owner: Vec<u32> = (0..n as VertexId)
        .map(|v| (cuts.partition_point(|&c| c <= v) - 1) as u32)
        .collect();
    let greedy_rate = expected_walk_crossing_with(g, &pi, |v| owner[v as usize] as usize);
    let range_rate = expected_walk_crossing_with(g, &pi, |v| range_owner[v as usize] as usize);
    if greedy_rate <= range_rate {
        owner
    } else {
        range_owner
    }
}

/// Materialize the per-shard full-span sub-CSRs from an ownership map.
fn build_shards(
    g: &Graph,
    k: usize,
    ownership: Ownership,
    strategy: ShardStrategy,
) -> ShardedGraph {
    let n = g.num_vertices();
    let has_rel = g.has_edge_labels();
    let mut shards = Vec::with_capacity(k);
    for s in 0..k {
        let mut row = Vec::with_capacity(n + 1);
        row.push(0u64);
        let mut col: Vec<VertexId> = Vec::new();
        let mut wts: Vec<u32> = Vec::new();
        let mut rel: Vec<u8> = Vec::new();
        let mut owned_vertices = 0u64;
        let mut boundary = 0u64;
        let mut ghost_set: Vec<VertexId> = Vec::new();
        for v in 0..n as VertexId {
            if ownership.owner_of(v) == s {
                owned_vertices += 1;
                let view = g.neighbor_view(v);
                col.extend_from_slice(view.targets);
                wts.extend_from_slice(view.weights);
                if has_rel {
                    rel.extend_from_slice(view.relations);
                }
                for &dst in view.targets {
                    if ownership.owner_of(dst) != s {
                        boundary += 1;
                        ghost_set.push(dst);
                    }
                }
            }
            row.push(col.len() as u64);
        }
        ghost_set.sort_unstable();
        ghost_set.dedup();
        let owned_edges = col.len() as u64;
        let mut sg = Graph {
            row_index: Section::from(row),
            col_index: Section::from(col),
            weights: Section::from(wts),
            vertex_labels: g.vertex_labels.clone(),
            edge_labels: Section::from(rel),
            directed: g.is_directed(),
            prefix: None,
        };
        if g.has_prefix_cache() {
            sg.build_prefix_cache();
        }
        shards.push(Shard {
            graph: sg,
            ghosts: Section::from(ghost_set),
            owned_vertices,
            owned_edges,
            boundary_edges: boundary,
        });
    }
    ShardedGraph {
        shards,
        ownership,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_invariants(g: &Graph, sg: &ShardedGraph) {
        let n = g.num_vertices();
        assert_eq!(sg.num_vertices(), n);
        assert_eq!(sg.num_edges(), g.num_edges() as u64);
        let mut owned = vec![false; n];
        for (s, shard) in sg.shards.iter().enumerate() {
            assert_eq!(shard.graph.num_vertices(), n, "full-span rows");
            let mut count = 0u64;
            for v in 0..n as VertexId {
                if sg.owner_of(v) == s {
                    assert!(!owned[v as usize], "vertex {v} owned twice");
                    owned[v as usize] = true;
                    count += 1;
                    // Owned rows are verbatim copies of the global rows.
                    assert_eq!(shard.graph.neighbors(v), g.neighbors(v));
                    assert_eq!(shard.graph.neighbor_weights(v), g.neighbor_weights(v));
                    assert_eq!(shard.graph.static_prefix(v), g.static_prefix(v));
                } else {
                    assert!(shard.graph.neighbors(v).is_empty(), "ghost row not empty");
                }
            }
            assert_eq!(count, shard.owned_vertices);
            // Ghosts are exactly the remote destinations of owned edges.
            for &gh in shard.ghosts.iter() {
                assert_ne!(sg.owner_of(gh), s);
            }
            let boundary: u64 = (0..n as VertexId)
                .filter(|&v| sg.owner_of(v) == s)
                .flat_map(|v| g.neighbors(v).iter())
                .filter(|&&d| sg.owner_of(d) != s)
                .count() as u64;
            assert_eq!(boundary, shard.boundary_edges);
        }
        assert!(owned.into_iter().all(|o| o), "every vertex owned");
    }

    #[test]
    fn range_partition_covers_and_balances() {
        let g = generators::rmat(9, 8, 7);
        for k in [1, 2, 4, 7] {
            let sg = partition_graph(&g, k, ShardStrategy::Range);
            assert_eq!(sg.k(), k);
            check_invariants(&g, &sg);
            // Edge balance: no shard holds more than ~2× the fair share
            // (RMAT skew caps how tight this can be).
            let fair = g.num_edges() as u64 / k as u64 + g.max_degree() as u64;
            for s in &sg.shards {
                assert!(s.owned_edges <= 2 * fair, "{} > {}", s.owned_edges, fair);
            }
        }
    }

    #[test]
    fn fennel_partition_covers_and_respects_capacity() {
        let g = generators::rmat(9, 8, 13);
        let n = g.num_vertices();
        for k in [2, 4] {
            let sg = partition_graph(&g, k, ShardStrategy::Fennel);
            check_invariants(&g, &sg);
            let cap = (FENNEL_SLACK * n as f64 / k as f64).ceil() as u64;
            for s in &sg.shards {
                assert!(s.owned_vertices <= cap);
            }
        }
    }

    #[test]
    fn fennel_beats_or_matches_random_locality_on_clustered_graph() {
        // Two dense clusters joined by one edge, with cluster membership
        // interleaved across the id space (even = A, odd = B) so the
        // one-pass stream sees both clusters growing — fennel at k=2
        // should then find a near-perfect cut, far below the ~50% a
        // random (or range) split gives. Range cuts by id, so it splits
        // both clusters down the middle — the contrast this test pins.
        let mut b = crate::GraphBuilder::undirected();
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                b = b.edge(2 * i, 2 * j);
                b = b.edge(2 * i + 1, 2 * j + 1);
            }
        }
        let g = b.edge(0, 1).build();
        let range = partition_graph(&g, 2, ShardStrategy::Range);
        assert!(
            range.crossing_rate() > 0.4,
            "range should cut both clusters"
        );
        let sg = partition_graph(&g, 2, ShardStrategy::Fennel);
        check_invariants(&g, &sg);
        assert!(
            sg.crossing_rate() < 0.10,
            "fennel crossing rate {} too high",
            sg.crossing_rate()
        );
    }

    #[test]
    fn k1_is_the_whole_graph() {
        let g = generators::rmat(7, 6, 3);
        for strategy in [
            ShardStrategy::Range,
            ShardStrategy::Fennel,
            ShardStrategy::Walk,
        ] {
            let sg = partition_graph(&g, 1, strategy);
            assert_eq!(sg.k(), 1);
            let s = &sg.shards[0];
            assert_eq!(s.graph, g);
            assert!(s.ghosts.is_empty());
            assert_eq!(s.boundary_edges, 0);
            assert_eq!(sg.crossing_rate(), 0.0);
        }
    }

    #[test]
    fn ownership_forms_agree_on_owner_of() {
        let cuts = Ownership::Range {
            cuts: vec![0, 3, 3, 10],
        };
        assert_eq!(cuts.k(), 3);
        assert_eq!(cuts.owner_of(0), 0);
        assert_eq!(cuts.owner_of(2), 0);
        assert_eq!(cuts.owner_of(3), 2); // empty middle shard
        assert_eq!(cuts.owner_of(9), 2);
        let table = Ownership::Table {
            owner: vec![0, 0, 0, 2, 2, 2, 2, 2, 2, 2],
        };
        for v in 0..10 {
            assert_eq!(cuts.owner_of(v), table.owner_of(v), "v={v}");
        }
    }

    #[test]
    fn strategy_codes_round_trip() {
        for s in [
            ShardStrategy::Range,
            ShardStrategy::Fennel,
            ShardStrategy::Walk,
        ] {
            assert_eq!(ShardStrategy::from_code(s.code()), Some(s));
            assert_eq!(ShardStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(ShardStrategy::from_code(9), None);
        assert_eq!(ShardStrategy::parse("metis"), None);
    }

    const ALL_STRATEGIES: [ShardStrategy; 3] = [
        ShardStrategy::Range,
        ShardStrategy::Fennel,
        ShardStrategy::Walk,
    ];

    fn assert_all_nonempty(sg: &ShardedGraph) {
        for (s, shard) in sg.shards.iter().enumerate() {
            assert!(shard.owned_vertices >= 1, "shard {s} is empty");
        }
    }

    #[test]
    fn k_at_or_past_the_vertex_count_clamps_and_stays_nonempty() {
        let g = generators::rmat(4, 3, 5); // 16 vertices
        let n = g.num_vertices();
        for strategy in ALL_STRATEGIES {
            for k in [n, n + 1, 3 * n] {
                let sg = partition_graph(&g, k, strategy);
                assert_eq!(sg.k(), n, "k clamps to the vertex count");
                assert_eq!(sg.ownership.k(), n, "ownership agrees after repair");
                check_invariants(&g, &sg);
                assert_all_nonempty(&sg);
            }
        }
    }

    #[test]
    fn star_graphs_never_produce_empty_shards() {
        // A hub holding every edge used to pull all range cuts onto the
        // same vertex, leaving k-1 empty shards.
        let mut b = crate::GraphBuilder::undirected();
        for leaf in 1..=12u32 {
            b = b.edge(0, leaf);
        }
        let g = b.build();
        for strategy in ALL_STRATEGIES {
            for k in [2, 3, 7, 13] {
                let sg = partition_graph(&g, k, strategy);
                assert_eq!(sg.k(), k.min(g.num_vertices()));
                check_invariants(&g, &sg);
                assert_all_nonempty(&sg);
            }
        }
    }

    #[test]
    fn stationary_estimate_is_a_probability_vector() {
        let g = generators::rmat(7, 6, 11);
        let pi = stationary_estimate(&g);
        assert_eq!(pi.len(), g.num_vertices());
        assert!(pi.iter().all(|&p| p >= 0.0));
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sums to {sum}");
        // Deterministic: same graph, same estimate.
        assert_eq!(pi, stationary_estimate(&g));
    }

    #[test]
    fn walk_partition_covers_and_never_loses_to_range_on_its_objective() {
        for (scale, seed) in [(8u32, 7u64), (9, 13)] {
            let g = generators::rmat(scale, scale as usize - 1, seed);
            for k in [2, 4] {
                let sg = partition_graph(&g, k, ShardStrategy::Walk);
                assert_eq!(sg.strategy, ShardStrategy::Walk);
                check_invariants(&g, &sg);
                assert_all_nonempty(&sg);
                let range = partition_graph(&g, k, ShardStrategy::Range);
                let walk_rate = expected_walk_crossing(&g, &sg.ownership);
                let range_rate = expected_walk_crossing(&g, &range.ownership);
                assert!(
                    walk_rate <= range_rate + 1e-12,
                    "walk {walk_rate} > range {range_rate} (k={k}, scale={scale})"
                );
            }
        }
    }

    #[test]
    fn walk_partition_finds_the_clustered_cut() {
        // Same interleaved two-clique construction as the fennel test:
        // walk-weighted affinity should also discover the near-perfect cut.
        let mut b = crate::GraphBuilder::undirected();
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                b = b.edge(2 * i, 2 * j);
                b = b.edge(2 * i + 1, 2 * j + 1);
            }
        }
        let g = b.edge(0, 1).build();
        let sg = partition_graph(&g, 2, ShardStrategy::Walk);
        check_invariants(&g, &sg);
        assert!(
            sg.crossing_rate() < 0.10,
            "walk crossing rate {} too high",
            sg.crossing_rate()
        );
    }

    #[test]
    fn labeled_graphs_shard_their_lanes() {
        let g = crate::GraphBuilder::directed()
            .num_vertices(6)
            .labeled_edge(0, 3, 2, 1)
            .labeled_edge(1, 4, 3, 0)
            .labeled_edge(3, 0, 5, 1)
            .labeled_edge(4, 5, 7, 2)
            .build();
        let sg = partition_graph(&g, 2, ShardStrategy::Range);
        check_invariants(&g, &sg);
        for (s, shard) in sg.shards.iter().enumerate() {
            for v in 0..6u32 {
                if sg.owner_of(v) == s {
                    assert_eq!(shard.graph.neighbor_relations(v), g.neighbor_relations(v));
                }
                assert_eq!(shard.graph.vertex_label(v), g.vertex_label(v));
            }
        }
    }

    #[test]
    fn cuts_from_row_index_matches_graph_form() {
        let g = generators::rmat(8, 7, 21);
        for k in [1, 2, 3, 8] {
            assert_eq!(range_cuts(&g, k), cuts_from_row_index(g.row_index(), k));
            let cuts = range_cuts(&g, k);
            assert_eq!(cuts.len(), k + 1);
            assert_eq!(cuts[0], 0);
            assert_eq!(*cuts.last().unwrap(), g.num_vertices() as VertexId);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
