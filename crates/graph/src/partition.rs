//! Vertex partitioning for sharded walk execution (DESIGN.md §11).
//!
//! A [`ShardedGraph`] splits a CSR into `K` vertex-disjoint shards. Each
//! shard is a **full-span sub-CSR**: its `row_index` still covers the
//! whole vertex-id space, but only vertices the shard *owns* keep their
//! adjacency rows — every other row is empty. Vertex ids therefore stay
//! global on every shard; there is no translation table on the walk hot
//! path, and a walker handed between shards carries plain global ids.
//!
//! Vertices referenced by a shard's edges but owned elsewhere are
//! **ghosts**: the shard lists them (sorted) so an engine can tell "dead
//! end" (empty row on the owner) from "remote" (empty row here, real row
//! on `owner_of(v)`) without consulting the ownership map per neighbor.
//!
//! Two ownership strategies:
//! - [`ShardStrategy::Range`] — contiguous vertex ranges cut so each
//!   shard holds ≈ |E|/K edges (degree-prefix balancing). Streamable:
//!   the packer computes cuts from the degree array alone.
//! - [`ShardStrategy::Fennel`] — the one-pass streaming greedy of
//!   Tsourakakis et al. (WSDM 2014): each vertex joins the shard with the
//!   most already-placed neighbors, minus a convex size penalty. Better
//!   edge locality on clustered graphs; needs the graph in memory.

use crate::csr::{Graph, VertexId};
use crate::store::Section;

/// How vertices are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous vertex ranges, cut to balance edge counts.
    Range,
    /// Fennel streaming greedy (neighbor affinity minus size penalty).
    Fennel,
}

impl ShardStrategy {
    /// Stable lowercase name (CLI surface + packed-file metadata).
    pub fn name(self) -> &'static str {
        match self {
            ShardStrategy::Range => "range",
            ShardStrategy::Fennel => "fennel",
        }
    }

    /// Parse a CLI strategy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "range" => Some(ShardStrategy::Range),
            "fennel" => Some(ShardStrategy::Fennel),
            _ => None,
        }
    }

    /// Packed-file code (`SEC_SHARD_META` word 1).
    pub fn code(self) -> u64 {
        match self {
            ShardStrategy::Range => 0,
            ShardStrategy::Fennel => 1,
        }
    }

    /// Inverse of [`ShardStrategy::code`].
    pub fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(ShardStrategy::Range),
            1 => Some(ShardStrategy::Fennel),
            _ => None,
        }
    }
}

/// The vertex → shard map, in whichever form the strategy produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ownership {
    /// `cuts.len() == k + 1`; shard `s` owns vertices `cuts[s]..cuts[s+1]`.
    Range { cuts: Vec<VertexId> },
    /// One owner entry per vertex.
    Table { owner: Vec<u32> },
}

impl Ownership {
    /// Shard owning vertex `v`.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> usize {
        match self {
            Ownership::Range { cuts } => {
                // partition_point: first cut > v, minus one.
                cuts.partition_point(|&c| c <= v) - 1
            }
            Ownership::Table { owner } => owner[v as usize] as usize,
        }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        match self {
            Ownership::Range { cuts } => cuts.len() - 1,
            Ownership::Table { owner } => owner.iter().copied().max().map_or(1, |m| m as usize + 1),
        }
    }
}

/// One shard: a full-span sub-CSR plus its boundary bookkeeping.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Full-span CSR: global ids, empty rows for non-owned vertices.
    pub graph: Graph,
    /// Sorted global ids referenced by this shard's edges but owned by
    /// another shard (the ghost-vertex table). A `Section` so packed
    /// sharded files serve it zero-copy from the mapping.
    pub ghosts: Section<VertexId>,
    /// Vertices this shard owns.
    pub owned_vertices: u64,
    /// Edges stored on this shard (rows of owned vertices).
    pub owned_edges: u64,
    /// Owned edges whose destination is a ghost — each is a potential
    /// walker hand-off.
    pub boundary_edges: u64,
}

impl Shard {
    /// Whether `v` is a ghost on this shard (binary search over the
    /// sorted ghost table).
    #[inline]
    pub fn is_ghost(&self, v: VertexId) -> bool {
        self.ghosts.binary_search(&v).is_ok()
    }

    /// Fraction of this shard's edges that cross to another shard — the
    /// expected per-step hand-off probability under uniform edge use.
    pub fn crossing_rate(&self) -> f64 {
        if self.owned_edges == 0 {
            0.0
        } else {
            self.boundary_edges as f64 / self.owned_edges as f64
        }
    }
}

/// A graph split into `K` vertex-disjoint shards.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    pub shards: Vec<Shard>,
    pub ownership: Ownership,
    pub strategy: ShardStrategy,
}

impl ShardedGraph {
    /// Number of shards.
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// Shard owning vertex `v`.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> usize {
        self.ownership.owner_of(v)
    }

    /// Vertices of the underlying graph (every shard spans all of them).
    pub fn num_vertices(&self) -> usize {
        self.shards.first().map_or(0, |s| s.graph.num_vertices())
    }

    /// Total stored edges across shards (= the unsharded edge count).
    pub fn num_edges(&self) -> u64 {
        self.shards.iter().map(|s| s.owned_edges).sum()
    }

    /// Aggregate expected crossing rate: boundary edges / all edges.
    pub fn crossing_rate(&self) -> f64 {
        let e = self.num_edges();
        if e == 0 {
            0.0
        } else {
            self.shards.iter().map(|s| s.boundary_edges).sum::<u64>() as f64 / e as f64
        }
    }
}

/// Fennel size-penalty exponent γ (the paper's recommended 3/2).
const FENNEL_GAMMA: f64 = 1.5;
/// Fennel capacity slack ν: no shard grows past ν·n/k vertices.
const FENNEL_SLACK: f64 = 1.1;

/// Split `g` into `k` shards under `strategy`.
///
/// Every shard's sub-CSR keeps the prefix cache when the source graph has
/// one (per-vertex cumulative sums are row-local, so a shard's cache
/// entries are bit-identical to the unsharded graph's — the RNG-identity
/// contract of DESIGN.md §5 survives sharding).
///
/// # Panics
///
/// Panics when `k == 0`.
pub fn partition_graph(g: &Graph, k: usize, strategy: ShardStrategy) -> ShardedGraph {
    assert!(k > 0, "partition_graph requires k >= 1");
    let ownership = match strategy {
        ShardStrategy::Range => Ownership::Range {
            cuts: range_cuts(g, k),
        },
        ShardStrategy::Fennel => Ownership::Table {
            owner: fennel_assign(g, k),
        },
    };
    build_shards(g, k, ownership, strategy)
}

/// Degree-prefix balanced range cuts: shard `s` gets vertices until its
/// edge count reaches `(s+1)·|E|/k` (last shard takes the remainder).
pub fn range_cuts(g: &Graph, k: usize) -> Vec<VertexId> {
    cuts_from_row_index(g.row_index(), k)
}

/// [`range_cuts`] over a raw `row_index` array (`n + 1` offsets) — the
/// packer uses this form before any `Graph` exists.
pub fn cuts_from_row_index(row_index: &[u64], k: usize) -> Vec<VertexId> {
    let n = row_index.len() - 1;
    let total = row_index[n];
    let mut cuts = Vec::with_capacity(k + 1);
    cuts.push(0);
    for s in 1..k {
        let target = total * s as u64 / k as u64;
        // First vertex whose starting offset reaches the target, but never
        // behind the previous cut (degenerate graphs keep cuts monotone).
        let mut c = row_index.partition_point(|&off| off < target) as VertexId;
        c = c.clamp(*cuts.last().unwrap(), n as VertexId);
        cuts.push(c);
    }
    cuts.push(n as VertexId);
    cuts
}

/// Fennel one-pass greedy assignment. Deterministic: vertices stream in id
/// order and ties break toward the lowest shard id.
fn fennel_assign(g: &Graph, k: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let m = g.num_edges() as f64;
    // α calibrated so the penalty and affinity terms trade off at the
    // average degree: α = m · k^(γ-1) / n^γ (Fennel §3, with γ = 3/2).
    let alpha = if n == 0 {
        0.0
    } else {
        m * (k as f64).powf(FENNEL_GAMMA - 1.0) / (n as f64).powf(FENNEL_GAMMA)
    };
    let cap = ((FENNEL_SLACK * n as f64 / k as f64).ceil() as u64).max(1);
    let mut owner = vec![u32::MAX; n];
    let mut sizes = vec![0u64; k];
    let mut affinity = vec![0u64; k];
    let mut touched: Vec<usize> = Vec::with_capacity(k);
    for v in 0..n as VertexId {
        for &nbr in g.neighbors(v) {
            let o = owner[nbr as usize];
            if o != u32::MAX {
                if affinity[o as usize] == 0 {
                    touched.push(o as usize);
                }
                affinity[o as usize] += 1;
            }
        }
        let mut best = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        for s in 0..k {
            if sizes[s] >= cap {
                continue;
            }
            let sz = sizes[s] as f64;
            let penalty = alpha * ((sz + 1.0).powf(FENNEL_GAMMA) - sz.powf(FENNEL_GAMMA));
            let score = affinity[s] as f64 - penalty;
            if score > best_score {
                best_score = score;
                best = s;
            }
        }
        // All shards at capacity can only happen from rounding slack; put
        // the vertex on the smallest shard.
        if best == usize::MAX {
            best = (0..k).min_by_key(|&s| sizes[s]).unwrap();
        }
        owner[v as usize] = best as u32;
        sizes[best] += 1;
        for &s in &touched {
            affinity[s] = 0;
        }
        touched.clear();
    }
    owner
}

/// Materialize the per-shard full-span sub-CSRs from an ownership map.
fn build_shards(
    g: &Graph,
    k: usize,
    ownership: Ownership,
    strategy: ShardStrategy,
) -> ShardedGraph {
    let n = g.num_vertices();
    let has_rel = g.has_edge_labels();
    let mut shards = Vec::with_capacity(k);
    for s in 0..k {
        let mut row = Vec::with_capacity(n + 1);
        row.push(0u64);
        let mut col: Vec<VertexId> = Vec::new();
        let mut wts: Vec<u32> = Vec::new();
        let mut rel: Vec<u8> = Vec::new();
        let mut owned_vertices = 0u64;
        let mut boundary = 0u64;
        let mut ghost_set: Vec<VertexId> = Vec::new();
        for v in 0..n as VertexId {
            if ownership.owner_of(v) == s {
                owned_vertices += 1;
                let view = g.neighbor_view(v);
                col.extend_from_slice(view.targets);
                wts.extend_from_slice(view.weights);
                if has_rel {
                    rel.extend_from_slice(view.relations);
                }
                for &dst in view.targets {
                    if ownership.owner_of(dst) != s {
                        boundary += 1;
                        ghost_set.push(dst);
                    }
                }
            }
            row.push(col.len() as u64);
        }
        ghost_set.sort_unstable();
        ghost_set.dedup();
        let owned_edges = col.len() as u64;
        let mut sg = Graph {
            row_index: Section::from(row),
            col_index: Section::from(col),
            weights: Section::from(wts),
            vertex_labels: g.vertex_labels.clone(),
            edge_labels: Section::from(rel),
            directed: g.is_directed(),
            prefix: None,
        };
        if g.has_prefix_cache() {
            sg.build_prefix_cache();
        }
        shards.push(Shard {
            graph: sg,
            ghosts: Section::from(ghost_set),
            owned_vertices,
            owned_edges,
            boundary_edges: boundary,
        });
    }
    ShardedGraph {
        shards,
        ownership,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_invariants(g: &Graph, sg: &ShardedGraph) {
        let n = g.num_vertices();
        assert_eq!(sg.num_vertices(), n);
        assert_eq!(sg.num_edges(), g.num_edges() as u64);
        let mut owned = vec![false; n];
        for (s, shard) in sg.shards.iter().enumerate() {
            assert_eq!(shard.graph.num_vertices(), n, "full-span rows");
            let mut count = 0u64;
            for v in 0..n as VertexId {
                if sg.owner_of(v) == s {
                    assert!(!owned[v as usize], "vertex {v} owned twice");
                    owned[v as usize] = true;
                    count += 1;
                    // Owned rows are verbatim copies of the global rows.
                    assert_eq!(shard.graph.neighbors(v), g.neighbors(v));
                    assert_eq!(shard.graph.neighbor_weights(v), g.neighbor_weights(v));
                    assert_eq!(shard.graph.static_prefix(v), g.static_prefix(v));
                } else {
                    assert!(shard.graph.neighbors(v).is_empty(), "ghost row not empty");
                }
            }
            assert_eq!(count, shard.owned_vertices);
            // Ghosts are exactly the remote destinations of owned edges.
            for &gh in shard.ghosts.iter() {
                assert_ne!(sg.owner_of(gh), s);
            }
            let boundary: u64 = (0..n as VertexId)
                .filter(|&v| sg.owner_of(v) == s)
                .flat_map(|v| g.neighbors(v).iter())
                .filter(|&&d| sg.owner_of(d) != s)
                .count() as u64;
            assert_eq!(boundary, shard.boundary_edges);
        }
        assert!(owned.into_iter().all(|o| o), "every vertex owned");
    }

    #[test]
    fn range_partition_covers_and_balances() {
        let g = generators::rmat(9, 8, 7);
        for k in [1, 2, 4, 7] {
            let sg = partition_graph(&g, k, ShardStrategy::Range);
            assert_eq!(sg.k(), k);
            check_invariants(&g, &sg);
            // Edge balance: no shard holds more than ~2× the fair share
            // (RMAT skew caps how tight this can be).
            let fair = g.num_edges() as u64 / k as u64 + g.max_degree() as u64;
            for s in &sg.shards {
                assert!(s.owned_edges <= 2 * fair, "{} > {}", s.owned_edges, fair);
            }
        }
    }

    #[test]
    fn fennel_partition_covers_and_respects_capacity() {
        let g = generators::rmat(9, 8, 13);
        let n = g.num_vertices();
        for k in [2, 4] {
            let sg = partition_graph(&g, k, ShardStrategy::Fennel);
            check_invariants(&g, &sg);
            let cap = (FENNEL_SLACK * n as f64 / k as f64).ceil() as u64;
            for s in &sg.shards {
                assert!(s.owned_vertices <= cap);
            }
        }
    }

    #[test]
    fn fennel_beats_or_matches_random_locality_on_clustered_graph() {
        // Two dense clusters joined by one edge, with cluster membership
        // interleaved across the id space (even = A, odd = B) so the
        // one-pass stream sees both clusters growing — fennel at k=2
        // should then find a near-perfect cut, far below the ~50% a
        // random (or range) split gives. Range cuts by id, so it splits
        // both clusters down the middle — the contrast this test pins.
        let mut b = crate::GraphBuilder::undirected();
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                b = b.edge(2 * i, 2 * j);
                b = b.edge(2 * i + 1, 2 * j + 1);
            }
        }
        let g = b.edge(0, 1).build();
        let range = partition_graph(&g, 2, ShardStrategy::Range);
        assert!(
            range.crossing_rate() > 0.4,
            "range should cut both clusters"
        );
        let sg = partition_graph(&g, 2, ShardStrategy::Fennel);
        check_invariants(&g, &sg);
        assert!(
            sg.crossing_rate() < 0.10,
            "fennel crossing rate {} too high",
            sg.crossing_rate()
        );
    }

    #[test]
    fn k1_is_the_whole_graph() {
        let g = generators::rmat(7, 6, 3);
        for strategy in [ShardStrategy::Range, ShardStrategy::Fennel] {
            let sg = partition_graph(&g, 1, strategy);
            assert_eq!(sg.k(), 1);
            let s = &sg.shards[0];
            assert_eq!(s.graph, g);
            assert!(s.ghosts.is_empty());
            assert_eq!(s.boundary_edges, 0);
            assert_eq!(sg.crossing_rate(), 0.0);
        }
    }

    #[test]
    fn ownership_forms_agree_on_owner_of() {
        let cuts = Ownership::Range {
            cuts: vec![0, 3, 3, 10],
        };
        assert_eq!(cuts.k(), 3);
        assert_eq!(cuts.owner_of(0), 0);
        assert_eq!(cuts.owner_of(2), 0);
        assert_eq!(cuts.owner_of(3), 2); // empty middle shard
        assert_eq!(cuts.owner_of(9), 2);
        let table = Ownership::Table {
            owner: vec![0, 0, 0, 2, 2, 2, 2, 2, 2, 2],
        };
        for v in 0..10 {
            assert_eq!(cuts.owner_of(v), table.owner_of(v), "v={v}");
        }
    }

    #[test]
    fn strategy_codes_round_trip() {
        for s in [ShardStrategy::Range, ShardStrategy::Fennel] {
            assert_eq!(ShardStrategy::from_code(s.code()), Some(s));
            assert_eq!(ShardStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(ShardStrategy::from_code(9), None);
        assert_eq!(ShardStrategy::parse("metis"), None);
    }

    #[test]
    fn labeled_graphs_shard_their_lanes() {
        let g = crate::GraphBuilder::directed()
            .num_vertices(6)
            .labeled_edge(0, 3, 2, 1)
            .labeled_edge(1, 4, 3, 0)
            .labeled_edge(3, 0, 5, 1)
            .labeled_edge(4, 5, 7, 2)
            .build();
        let sg = partition_graph(&g, 2, ShardStrategy::Range);
        check_invariants(&g, &sg);
        for (s, shard) in sg.shards.iter().enumerate() {
            for v in 0..6u32 {
                if sg.owner_of(v) == s {
                    assert_eq!(shard.graph.neighbor_relations(v), g.neighbor_relations(v));
                }
                assert_eq!(shard.graph.vertex_label(v), g.vertex_label(v));
            }
        }
    }

    #[test]
    fn cuts_from_row_index_matches_graph_form() {
        let g = generators::rmat(8, 7, 21);
        for k in [1, 2, 3, 8] {
            assert_eq!(range_cuts(&g, k), cuts_from_row_index(g.row_index(), k));
            let cuts = range_cuts(&g, k);
            assert_eq!(cuts.len(), k + 1);
            assert_eq!(cuts[0], 0);
            assert_eq!(*cuts.last().unwrap(), g.num_vertices() as VertexId);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
