//! # lightrw-graph — CSR graph substrate
//!
//! The graph storage layer shared by every engine in the LightRW
//! reproduction. Matches the paper's data layout (§3.3): graphs are stored
//! in **compressed sparse row** form with a `row_index` array (per-vertex
//! offsets into the adjacency array) and a `col_index` array (adjacent
//! edges sorted by destination). On the accelerator these two arrays live in
//! FPGA DRAM and are the targets of the degree-aware cache (`row_index`)
//! and the dynamic burst engine (`col_index`); the byte-address helpers on
//! [`Graph`] are what the memory simulator uses to model those accesses.
//!
//! For the engines' hot path (DESIGN.md §5) the crate provides
//! [`Graph::neighbor_view`] — all three CSR lanes of a vertex behind one
//! `row_index` read — and the static-weight prefix cache
//! ([`Graph::static_prefix`] / [`Graph::relation_prefix`], built at
//! [`builder::GraphBuilder::build`]), which turns static-weight and
//! metapath inverse-transform sampling into a binary search over
//! precomputed cumulative weights.
//!
//! Beyond storage, the crate provides:
//! - [`builder::GraphBuilder`] — edge-list ingestion (directed/undirected,
//!   weights, vertex labels, edge relations for MetaPath);
//! - [`generators`] — RMAT (the paper's synthetic workloads, Table 2),
//!   Erdős–Rényi, and deterministic fixtures, plus scaled stand-ins for the
//!   paper's five real-world datasets;
//! - [`io`] — SNAP-style edge-list text and a binary CSR format;
//! - [`stats`] / [`validate`] — degree-distribution summaries and
//!   structural integrity checks;
//! - [`pack`] / [`packed`] / [`store`] — the out-of-core path
//!   (DESIGN.md §10): a bounded-memory streaming pack pipeline into a
//!   packed on-disk CSR (`LRWPAK01`), loaded back through `mmap` as
//!   borrowed [`store::Section`] views so engines walk the file without
//!   a resident copy;
//! - [`partition`] — the sharded-execution data model (DESIGN.md §11):
//!   [`partition_graph`] splits a CSR into K [`Shard`] sub-CSRs with
//!   ghost-vertex tables under a range or fennel-greedy
//!   [`ShardStrategy`]; `pack --shards K` persists the partition (and
//!   optionally varint-compressed columns) as extra `LRWPAK01`
//!   sections, [`load_packed_sharded`] maps it back.
//!
//! ```
//! use lightrw_graph::GraphBuilder;
//!
//! let g = GraphBuilder::directed()
//!     .num_vertices(3)
//!     .weighted_edges(vec![(0, 1, 5), (0, 2, 1), (1, 2, 1)])
//!     .build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.neighbors(0), &[1, 2]);
//! assert_eq!(g.degree(0), 2);
//! ```

pub mod builder;
pub mod components;
pub mod csr;
pub mod generators;
pub mod io;
pub mod pack;
pub mod packed;
pub mod partition;
pub mod reorder;
pub mod stats;
pub mod store;
pub mod validate;

pub use builder::GraphBuilder;
pub use csr::{
    Graph, NeighborView, VertexId, COL_ENTRY_BYTES, MAX_CACHED_RELATIONS, MAX_PREFIX_STATIC_WEIGHT,
    ROW_ENTRY_BYTES,
};
pub use generators::DatasetProfile;
pub use packed::{
    load_packed_sharded, LoadMode, PackedGraph, PackedShardedGraph, ShardCounts, ShardMeta,
};
pub use partition::{
    clamp_shards, expected_walk_crossing, partition_graph, stationary_estimate, Ownership, Shard,
    ShardStrategy, ShardedGraph,
};
