//! Structural integrity checks for CSR graphs.
//!
//! Every loader and generator funnels through [`validate`] in debug builds;
//! the binary I/O path runs it unconditionally because on-disk data is
//! untrusted.

use crate::csr::{Graph, VertexId};

/// A structural violation found in a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `row_index` is empty or does not start at 0.
    BadOffsetsHeader,
    /// `row_index` decreases at the given vertex.
    NonMonotoneOffsets { vertex: usize },
    /// Final offset does not equal `col_index.len()`.
    OffsetsEdgeMismatch { last: u64, edges: usize },
    /// A destination id is out of range.
    DanglingEdge { src: VertexId, dst: VertexId },
    /// An adjacency list is unsorted or has duplicates.
    UnsortedAdjacency { vertex: VertexId },
    /// `weights` is not aligned with `col_index`.
    WeightsMisaligned { weights: usize, edges: usize },
    /// Vertex label array has wrong length.
    VertexLabelsMisaligned { labels: usize, vertices: usize },
    /// Edge label array has wrong length.
    EdgeLabelsMisaligned { labels: usize, edges: usize },
    /// The static-weight prefix cache is not aligned with `col_index`.
    PrefixCacheMisaligned { entries: usize, edges: usize },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadOffsetsHeader => write!(f, "row_index missing or does not start at 0"),
            Self::NonMonotoneOffsets { vertex } => {
                write!(f, "row_index decreases at vertex {vertex}")
            }
            Self::OffsetsEdgeMismatch { last, edges } => {
                write!(
                    f,
                    "row_index ends at {last} but col_index has {edges} entries"
                )
            }
            Self::DanglingEdge { src, dst } => {
                write!(f, "edge ({src},{dst}) points outside the vertex set")
            }
            Self::UnsortedAdjacency { vertex } => {
                write!(f, "adjacency of vertex {vertex} unsorted or duplicated")
            }
            Self::WeightsMisaligned { weights, edges } => {
                write!(f, "{weights} weights for {edges} edges")
            }
            Self::VertexLabelsMisaligned { labels, vertices } => {
                write!(f, "{labels} vertex labels for {vertices} vertices")
            }
            Self::EdgeLabelsMisaligned { labels, edges } => {
                write!(f, "{labels} edge labels for {edges} edges")
            }
            Self::PrefixCacheMisaligned { entries, edges } => {
                write!(f, "{entries} prefix-cache entries for {edges} edges")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check all CSR invariants listed on [`Graph`].
pub fn validate(g: &Graph) -> Result<(), ValidationError> {
    let row = &g.row_index;
    if row.is_empty() || row[0] != 0 {
        return Err(ValidationError::BadOffsetsHeader);
    }
    let n = row.len() - 1;
    for v in 0..n {
        if row[v + 1] < row[v] {
            return Err(ValidationError::NonMonotoneOffsets { vertex: v });
        }
    }
    if row[n] != g.col_index.len() as u64 {
        return Err(ValidationError::OffsetsEdgeMismatch {
            last: row[n],
            edges: g.col_index.len(),
        });
    }
    if g.weights.len() != g.col_index.len() {
        return Err(ValidationError::WeightsMisaligned {
            weights: g.weights.len(),
            edges: g.col_index.len(),
        });
    }
    if !g.vertex_labels.is_empty() && g.vertex_labels.len() != n {
        return Err(ValidationError::VertexLabelsMisaligned {
            labels: g.vertex_labels.len(),
            vertices: n,
        });
    }
    if !g.edge_labels.is_empty() && g.edge_labels.len() != g.col_index.len() {
        return Err(ValidationError::EdgeLabelsMisaligned {
            labels: g.edge_labels.len(),
            edges: g.col_index.len(),
        });
    }
    if let Some(cache) = &g.prefix {
        // Per-relation slots for labels the graph never uses stay empty.
        let filled = cache
            .per_relation
            .iter()
            .filter(|cum| !cum.is_empty())
            .chain(std::iter::once(&cache.all));
        for cum in filled {
            if cum.len() != g.col_index.len() {
                return Err(ValidationError::PrefixCacheMisaligned {
                    entries: cum.len(),
                    edges: g.col_index.len(),
                });
            }
        }
    }
    for v in 0..n as VertexId {
        let adj = g.neighbors(v);
        for w in adj.windows(2) {
            if w[0] >= w[1] {
                return Err(ValidationError::UnsortedAdjacency { vertex: v });
            }
        }
        if let Some(&dst) = adj.last() {
            if dst as usize >= n {
                return Err(ValidationError::DanglingEdge { src: v, dst });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn good() -> Graph {
        GraphBuilder::undirected().edges([(0, 1), (1, 2)]).build()
    }

    #[test]
    fn valid_graph_passes() {
        assert!(validate(&good()).is_ok());
    }

    #[test]
    fn detects_bad_header() {
        let mut g = good();
        g.row_index.to_mut()[0] = 1;
        assert_eq!(validate(&g), Err(ValidationError::BadOffsetsHeader));
    }

    #[test]
    fn detects_non_monotone_offsets() {
        let mut g = good();
        g.row_index.to_mut()[2] = 0;
        assert!(matches!(
            validate(&g),
            Err(ValidationError::NonMonotoneOffsets { .. })
        ));
    }

    #[test]
    fn detects_offset_edge_mismatch() {
        let mut g = good();
        let last = g.row_index.len() - 1;
        g.row_index.to_mut()[last] += 1;
        // also bump the one before so monotonicity holds
        assert!(matches!(
            validate(&g),
            Err(ValidationError::OffsetsEdgeMismatch { .. })
        ));
    }

    #[test]
    fn detects_dangling_edge() {
        let mut g = good();
        let n = g.col_index.len();
        g.col_index.to_mut()[n - 1] = 99;
        assert!(matches!(
            validate(&g),
            Err(ValidationError::DanglingEdge { .. })
        ));
    }

    #[test]
    fn detects_unsorted_adjacency() {
        let mut g = GraphBuilder::directed().edges([(0, 1), (0, 2)]).build();
        g.col_index.to_mut().swap(0, 1);
        assert_eq!(
            validate(&g),
            Err(ValidationError::UnsortedAdjacency { vertex: 0 })
        );
    }

    #[test]
    fn detects_duplicate_adjacency() {
        let mut g = GraphBuilder::directed().edges([(0, 1), (0, 2)]).build();
        g.col_index.to_mut()[1] = 1;
        assert_eq!(
            validate(&g),
            Err(ValidationError::UnsortedAdjacency { vertex: 0 })
        );
    }

    #[test]
    fn detects_weight_misalignment() {
        let mut g = good();
        g.weights.to_mut().pop();
        assert!(matches!(
            validate(&g),
            Err(ValidationError::WeightsMisaligned { .. })
        ));
    }

    #[test]
    fn detects_label_misalignment() {
        let mut g = good();
        g.vertex_labels = vec![0; 1].into();
        assert!(matches!(
            validate(&g),
            Err(ValidationError::VertexLabelsMisaligned { .. })
        ));
        let mut g2 = good();
        g2.edge_labels = vec![0; 1].into();
        assert!(matches!(
            validate(&g2),
            Err(ValidationError::EdgeLabelsMisaligned { .. })
        ));
    }

    #[test]
    fn errors_display_cleanly() {
        let e = ValidationError::DanglingEdge { src: 1, dst: 9 };
        assert!(e.to_string().contains("(1,9)"));
    }
}
