//! Connectivity analysis and component extraction.
//!
//! Walk corpora are only as useful as the component they explore: queries
//! started in tiny components produce degenerate paths that skew both the
//! embedding case study (§6.7) and throughput measurements. These helpers
//! identify weakly connected components and extract the largest one — the
//! standard preprocessing step for node2vec-style pipelines.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

/// Weakly connected component labeling: `labels[v]` is `v`'s component id
/// (ids are dense, ordered by discovery). Edge direction is ignored; we
/// need the *undirected* reachability closure, so a reverse-adjacency pass
/// complements the forward CSR.
pub fn weak_components(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    // Reverse adjacency (directed graphs only store forward edges).
    let mut rev_deg = vec![0u32; n];
    for (_, v, _) in g.iter_edges() {
        rev_deg[v as usize] += 1;
    }
    let mut rev_off = vec![0usize; n + 1];
    for i in 0..n {
        rev_off[i + 1] = rev_off[i] + rev_deg[i] as usize;
    }
    let mut rev = vec![0 as VertexId; g.num_edges()];
    let mut cursor = rev_off.clone();
    for (u, v, _) in g.iter_edges() {
        rev[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }

    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for start in 0..n as VertexId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            let visit = |u: VertexId, labels: &mut Vec<u32>, stack: &mut Vec<VertexId>| {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = next;
                    stack.push(u);
                }
            };
            for &u in g.neighbors(v) {
                visit(u, &mut labels, &mut stack);
            }
            for &u in &rev[rev_off[v as usize]..rev_off[v as usize + 1]] {
                visit(u, &mut labels, &mut stack);
            }
        }
        next += 1;
    }
    labels
}

/// Number of weakly connected components.
pub fn num_components(g: &Graph) -> usize {
    weak_components(g)
        .into_iter()
        .max()
        .map_or(0, |m| m as usize + 1)
}

/// Extract the largest weakly connected component as a new graph with
/// densely relabeled vertices. Returns the subgraph and, for each new
/// vertex, its original id.
pub fn largest_component(g: &Graph) -> (Graph, Vec<VertexId>) {
    let labels = weak_components(g);
    let n = g.num_vertices();
    if n == 0 {
        return (GraphBuilder::directed().build(), Vec::new());
    }
    // Component sizes.
    let k = labels.iter().copied().max().unwrap() as usize + 1;
    let mut sizes = vec![0u64; k];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let biggest = (0..k).max_by_key(|&c| sizes[c]).unwrap() as u32;

    // Dense relabeling of the kept vertices.
    let mut new_id = vec![u32::MAX; n];
    let mut keep: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        if labels[v as usize] == biggest {
            new_id[v as usize] = keep.len() as u32;
            keep.push(v);
        }
    }

    let mut b = GraphBuilder::directed().num_vertices(keep.len());
    let labeled = g.has_edge_labels();
    for &old in &keep {
        let rels = g.neighbor_relations(old);
        for (i, (&v, &w)) in g
            .neighbors(old)
            .iter()
            .zip(g.neighbor_weights(old))
            .enumerate()
        {
            let rel = if labeled { rels[i] } else { 0 };
            b.push_edge(new_id[old as usize], new_id[v as usize], w, rel);
        }
    }
    if g.has_vertex_labels() {
        b = b.vertex_labels(keep.iter().map(|&v| g.vertex_label(v)).collect());
    }
    (b.build(), keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_component_ring() {
        let g = generators::ring(20, 2);
        assert_eq!(num_components(&g), 1);
        let labels = weak_components(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn disjoint_cliques_are_separate_components() {
        let mut b = GraphBuilder::undirected().num_vertices(9);
        for base in [0u32, 3, 6] {
            b = b
                .edge(base, base + 1)
                .edge(base + 1, base + 2)
                .edge(base, base + 2);
        }
        let g = b.build();
        assert_eq!(num_components(&g), 3);
        let labels = weak_components(&g);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[6]);
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 <- 2: weakly one component even though 0 and 2 cannot
        // reach each other along directed edges.
        let g = GraphBuilder::directed().edges([(0, 1), (2, 1)]).build();
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = GraphBuilder::directed().num_vertices(5).edge(0, 1).build();
        assert_eq!(num_components(&g), 4); // {0,1}, {2}, {3}, {4}
    }

    #[test]
    fn largest_component_extraction() {
        // Big triangle {0,1,2} + edge {3,4} + isolated 5.
        let g = GraphBuilder::undirected()
            .num_vertices(6)
            .edges([(0, 1), (1, 2), (0, 2), (3, 4)])
            .build();
        let (sub, orig) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(orig, vec![0, 1, 2]);
        assert_eq!(sub.num_edges(), 6);
        assert!(crate::validate::validate(&sub).is_ok());
    }

    #[test]
    fn largest_component_preserves_attributes() {
        let g = GraphBuilder::undirected()
            .num_vertices(5)
            .labeled_edge(0, 1, 7, 2)
            .labeled_edge(1, 2, 3, 1)
            .edge(3, 4)
            .randomize_vertex_labels(3, 9)
            .build();
        let (sub, orig) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        for (new, &old) in orig.iter().enumerate() {
            assert_eq!(sub.vertex_label(new as u32), g.vertex_label(old));
        }
        // Edge (0,1) kept with weight 7, relation 2.
        let pos = sub.neighbors(0).iter().position(|&v| v == 1).unwrap();
        assert_eq!(sub.neighbor_weights(0)[pos], 7);
        assert_eq!(sub.neighbor_relations(0)[pos], 2);
    }

    #[test]
    fn rmat_majority_component() {
        let g = generators::rmat(10, 8, 3);
        let (sub, _) = largest_component(&g);
        // RMAT with edge factor 8 has a giant component holding most
        // non-isolated vertices.
        assert!(sub.num_vertices() * 2 > g.non_isolated_vertices().len());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::directed().build();
        assert_eq!(num_components(&g), 0);
        let (sub, orig) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 0);
        assert!(orig.is_empty());
    }
}
