//! Graph section storage: owned vectors or borrowed mmap regions.
//!
//! Every array a [`crate::Graph`] carries (`row_index`, `col_index`,
//! weights, labels, prefix cumulatives) is a [`Section<T>`]: either an
//! owned `Vec<T>` (the classic in-heap path — builders and the legacy
//! binary loader) or a typed window into a shared read-only [`Region`]
//! backed by a memory-mapped packed file (`crate::packed`). `Section`
//! derefs to `&[T]`, so every accessor on `Graph` keeps its exact slice
//! signature and the engines' hot paths are storage-agnostic: they never
//! learn whether a row came from anonymous heap or from the page cache.
//!
//! The mmap binding is hand-rolled in the style of
//! `lightrw-baseline`'s `affinity.rs` (offline build, no crates.io):
//! two `extern "C"` libc symbols that Rust's std already links on Linux.
//! Non-Linux hosts (and callers that ask for it) fall back to reading
//! the file into an **8-byte-aligned heap buffer** — a `Vec<u64>`, never
//! a `Vec<u8>`, because sections of `u64` are reinterpreted in place and
//! a 1-aligned buffer would be UB to cast.
//!
//! Safety invariants (DESIGN.md §10):
//! - a `Section` holds an `Arc<Region>`, so the mapping outlives every
//!   borrowed slice derived from it; `munmap` runs only when the last
//!   section (or graph) is dropped;
//! - section windows are validated at construction: in-bounds and
//!   aligned to `align_of::<T>()` (the packed format 8-aligns every
//!   section, which covers all lane types);
//! - regions are mapped `PROT_READ`/`MAP_PRIVATE`: nothing can write
//!   through them, so sharing `&[T]` across engine threads is sound
//!   (`Region` is `Send + Sync` for that reason);
//! - byte order is little-endian on disk; reinterpretation is only used
//!   on little-endian hosts (big-endian hosts take the decoding loader
//!   in `crate::packed`, which byte-swaps into owned sections).

use std::ops::Deref;
use std::sync::Arc;

/// Marker for element types a `Section` may reinterpret from raw mapped
/// bytes: fixed-layout primitive lanes with no invalid bit patterns.
pub trait Pod: Copy + 'static + private::Sealed {}

mod private {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

impl Pod for u8 {}
impl Pod for u32 {}
impl Pod for u64 {}

/// A shared read-only byte region: an `mmap(2)` of a packed graph file,
/// or an aligned heap buffer holding the same bytes (the portable
/// fallback, also used to exercise the borrowed-section machinery in
/// tests without a real mapping).
pub struct Region {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

enum Backing {
    /// A live `mmap` mapping; unmapped on drop.
    #[cfg(target_os = "linux")]
    Mmap,
    /// Heap bytes. `Vec<u64>`-backed so the base pointer is 8-aligned
    /// (the strictest alignment any section type needs); moving the Vec
    /// never moves its buffer, so `ptr` stays valid for the region's
    /// lifetime.
    Heap(#[allow(dead_code)] Vec<u64>),
}

// SAFETY: the region is read-only for its entire lifetime (PROT_READ
// mapping or a heap buffer nobody holds a `&mut` to), so concurrent
// shared access from any thread is sound.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Total bytes in the region.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this region is a live `mmap` mapping (as opposed to the
    /// heap fallback).
    pub fn is_mapped(&self) -> bool {
        #[cfg(target_os = "linux")]
        {
            matches!(self.backing, Backing::Mmap)
        }
        #[cfg(not(target_os = "linux"))]
        false
    }

    /// All bytes of the region.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` readable bytes for the region's
        // lifetime (mapping or owned heap buffer).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Map a file read-only. `force_heap` (or a non-Linux host, or an
    /// `mmap` failure) degrades to reading the file into an aligned heap
    /// buffer — same bytes, same `Section` machinery, no mapping.
    pub fn from_file(file: &std::fs::File, force_heap: bool) -> std::io::Result<Arc<Region>> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file too large for this address space",
            ));
        }
        let len = len as usize;
        if !force_heap && len > 0 {
            if let Some(region) = imp::map_readonly(file, len) {
                return Ok(Arc::new(region));
            }
        }
        Self::heap_from_file(file, len)
    }

    /// The heap path: read all `len` bytes into an 8-aligned buffer.
    fn heap_from_file(file: &std::fs::File, len: usize) -> std::io::Result<Arc<Region>> {
        use std::io::Read;
        let words = len.div_ceil(8);
        let mut buf: Vec<u64> = vec![0; words];
        // SAFETY: a `u64` buffer of `words` elements is at least `len`
        // valid, writable bytes; u8 has no alignment or validity
        // requirements.
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), words * 8) };
        let mut reader = file;
        reader.read_exact(&mut bytes[..len])?;
        let ptr = buf.as_ptr().cast::<u8>();
        Ok(Arc::new(Region {
            ptr,
            len,
            backing: Backing::Heap(buf),
        }))
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if matches!(self.backing, Backing::Mmap) {
            // SAFETY: `ptr`/`len` are exactly what `mmap` returned and
            // no `Section` outlives the owning `Arc<Region>`.
            unsafe { imp::unmap(self.ptr, self.len) };
        }
    }
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Region")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Backing, Region};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut u8,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        fn munmap(addr: *mut u8, length: usize) -> i32;
    }

    /// Map `len` bytes of `file` read-only; `None` on failure (caller
    /// degrades to the heap path).
    pub fn map_readonly(file: &std::fs::File, len: usize) -> Option<Region> {
        // SAFETY: fd is a live open file, len > 0 was checked by the
        // caller; a NULL addr lets the kernel pick the placement.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1.
        if ptr.is_null() || ptr as isize == -1 {
            return None;
        }
        Some(Region {
            ptr,
            len,
            backing: Backing::Mmap,
        })
    }

    /// # Safety
    /// `ptr`/`len` must be a live mapping returned by [`map_readonly`].
    pub unsafe fn unmap(ptr: *const u8, len: usize) {
        // Failure here is unrecoverable and harmless (the mapping leaks);
        // mirror affinity.rs's degrade-never-fail contract.
        let _ = munmap(ptr as *mut u8, len);
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::Region;

    /// Non-Linux stub: no mmap; callers take the heap path.
    pub fn map_readonly(_file: &std::fs::File, _len: usize) -> Option<Region> {
        None
    }
}

/// One typed array of a graph: owned, or a window into a [`Region`].
///
/// Derefs to `&[T]`, so call sites read it exactly like the `Vec<T>` it
/// replaced. Mutation goes through [`Section::to_mut`], which promotes a
/// mapped section to an owned copy first (copy-on-write — used by tests
/// and nothing on the hot path).
#[derive(Clone)]
pub struct Section<T: Pod> {
    repr: Repr<T>,
}

#[derive(Clone)]
enum Repr<T: Pod> {
    Owned(Vec<T>),
    Mapped {
        region: Arc<Region>,
        /// Byte offset of the window inside the region.
        offset: usize,
        /// Window length in elements.
        len: usize,
    },
}

impl<T: Pod> Section<T> {
    /// Borrow `len` elements of `region` starting at `byte_offset`.
    ///
    /// Validates bounds and alignment once here so the `Deref` can be a
    /// branch-free pointer cast forever after.
    pub fn from_region(region: &Arc<Region>, byte_offset: usize, len: usize) -> Option<Self> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_offset.checked_add(bytes)?;
        if end > region.len() {
            return None;
        }
        // SAFETY of the later casts depends on this alignment check: the
        // region base is page- or 8-aligned, so offset alignment suffices.
        if !(region.ptr as usize + byte_offset).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Self {
            repr: Repr::Mapped {
                region: Arc::clone(region),
                offset: byte_offset,
                len,
            },
        })
    }

    /// View as a slice (what `Deref` returns).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped {
                region,
                offset,
                len,
            } => {
                // SAFETY: bounds and alignment validated in
                // `from_region`; the region lives as long as `self`; T is
                // Pod so any bit pattern is a valid value.
                unsafe { std::slice::from_raw_parts(region.ptr.add(*offset).cast::<T>(), *len) }
            }
        }
    }

    /// Mutable access, promoting a mapped section to an owned copy.
    /// Only for construction-time fixups and tests — never on a walk
    /// hot path.
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Repr::Mapped { .. } = self.repr {
            self.repr = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => unreachable!("promoted above"),
        }
    }

    /// Whether this section borrows a region (vs owning its elements).
    pub fn is_borrowed(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }
}

impl<T: Pod> Deref for Section<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            repr: Repr::Owned(v),
        }
    }
}

impl<T: Pod> Default for Section<T> {
    fn default() -> Self {
        Vec::new().into()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Pod + PartialEq> PartialEq for Section<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for Section<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("lightrw_store_{name}_{}", bytes.len()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn owned_section_behaves_like_its_vec() {
        let mut s: Section<u32> = vec![3, 1, 4, 1, 5].into();
        assert_eq!(&s[..], &[3, 1, 4, 1, 5]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_borrowed());
        s.to_mut()[0] = 9;
        assert_eq!(s[0], 9);
    }

    #[test]
    fn region_windows_reinterpret_little_endian_lanes() {
        // 8 bytes of u64 = 7, then 4+4 bytes of u32s 40, 41.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&40u32.to_le_bytes());
        bytes.extend_from_slice(&41u32.to_le_bytes());
        let path = temp_file("windows", &bytes);
        for force_heap in [true, false] {
            let file = std::fs::File::open(&path).unwrap();
            let region = Region::from_file(&file, force_heap).unwrap();
            let words = Section::<u64>::from_region(&region, 0, 1).unwrap();
            assert_eq!(&words[..], &[7]);
            let lanes = Section::<u32>::from_region(&region, 8, 2).unwrap();
            assert_eq!(&lanes[..], &[40, 41]);
            // Heap fallback must report itself as unmapped; the mmap path
            // is mapped on Linux only.
            if force_heap {
                assert!(!region.is_mapped());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_bounds_and_misaligned_windows_are_rejected() {
        let path = temp_file("bounds", &[0u8; 16]);
        let file = std::fs::File::open(&path).unwrap();
        let region = Region::from_file(&file, true).unwrap();
        assert!(Section::<u64>::from_region(&region, 0, 3).is_none()); // 24 > 16
        assert!(Section::<u64>::from_region(&region, 12, 1).is_none()); // unaligned
        assert!(Section::<u32>::from_region(&region, usize::MAX, 1).is_none()); // overflow
        assert!(Section::<u8>::from_region(&region, 0, 16).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn to_mut_promotes_mapped_sections_copy_on_write() {
        let mut bytes = Vec::new();
        for x in [1u32, 2, 3] {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        let path = temp_file("cow", &bytes);
        let file = std::fs::File::open(&path).unwrap();
        let region = Region::from_file(&file, true).unwrap();
        let mut s = Section::<u32>::from_region(&region, 0, 3).unwrap();
        assert!(s.is_borrowed());
        let other = s.clone();
        s.to_mut()[1] = 99;
        assert_eq!(&s[..], &[1, 99, 3]);
        assert!(!s.is_borrowed());
        // The clone still reads the untouched region bytes.
        assert_eq!(&other[..], &[1, 2, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_region() {
        let path = temp_file("empty", &[]);
        let file = std::fs::File::open(&path).unwrap();
        let region = Region::from_file(&file, false).unwrap();
        assert!(region.is_empty());
        let s = Section::<u64>::from_region(&region, 0, 0).unwrap();
        assert!(s.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sections_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Section<u64>>();
        assert_send_sync::<Region>();
    }
}
