//! Graph I/O: SNAP-style edge-list text and a binary CSR image.
//!
//! The text format accepts the files distributed by the SNAP repository
//! (the source of the paper's youtube/us-patents/liveJournal datasets):
//! `#`-prefixed comment lines, then one `src dst [weight [relation]]` line
//! per edge, whitespace separated. The binary format is a straight dump of
//! the CSR arrays with a magic header, used to cache generated stand-ins
//! between experiment runs.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::validate::validate;

/// Errors from graph parsing/loading.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed edge-list line (1-based line number, content).
    BadLine { line: usize, content: String },
    /// Binary image magic mismatch (not a lightrw graph file at all).
    BadMagic,
    /// Recognized magic but a format version this build cannot read.
    UnsupportedVersion { found: u64, supported: u64 },
    /// Binary image truncated or inconsistent.
    Corrupt(&'static str),
    /// Binary image truncated or corrupt, with the byte offset at which
    /// the inconsistency was detected.
    CorruptAt { offset: u64, what: &'static str },
    /// Structural validation of the loaded graph failed.
    Invalid(crate::validate::ValidationError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::BadLine { line, content } => {
                write!(f, "malformed edge at line {line}: {content:?}")
            }
            IoError::BadMagic => write!(f, "not a lightrw binary graph (bad magic)"),
            IoError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported graph format version {found} (this build reads version {supported})"
            ),
            IoError::Corrupt(what) => write!(f, "corrupt binary graph: {what}"),
            IoError::CorruptAt { offset, what } => {
                write!(f, "corrupt binary graph at byte {offset}: {what}")
            }
            IoError::Invalid(e) => write!(f, "loaded graph failed validation: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse an edge-list from a reader.
///
/// `directed` controls whether edges are mirrored. Lines starting with `#`
/// or `%` are comments; blank lines are skipped.
pub fn read_edge_list<R: Read>(reader: R, directed: bool) -> Result<Graph, IoError> {
    let mut builder = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let bad = || IoError::BadLine {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        let u: VertexId = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let v: VertexId = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let w: u32 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| bad())?,
            None => 1,
        };
        let rel: u8 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| bad())?,
            None => 0,
        };
        builder.push_edge(u, v, w, rel);
    }
    let g = builder.build();
    validate(&g).map_err(IoError::Invalid)?;
    Ok(g)
}

/// Load an edge-list file.
pub fn load_edge_list<P: AsRef<Path>>(path: P, directed: bool) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?, directed)
}

/// Write a graph as an edge list (stored directed edges, one per line,
/// `src dst weight [relation]`).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), IoError> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# lightrw edge list: {} vertices, {} stored edges, directed={}",
        g.num_vertices(),
        g.num_edges(),
        g.is_directed()
    )?;
    let labeled = g.has_edge_labels();
    for u in 0..g.num_vertices() as VertexId {
        let rels = g.neighbor_relations(u);
        for (i, (&v, &w)) in g.neighbors(u).iter().zip(g.neighbor_weights(u)).enumerate() {
            if labeled {
                writeln!(out, "{u} {v} {w} {}", rels[i])?;
            } else {
                writeln!(out, "{u} {v} {w}")?;
            }
        }
    }
    out.flush()?;
    Ok(())
}

/// Magic of the heap-decoded binary CSR image. (The mmap-oriented packed
/// format in `crate::packed` has its own magic, `LRWPAK`.)
const MAGIC: &[u8; 8] = b"LRWCSRBI";
/// Format version word written right after the magic. Bump on any layout
/// change so stale caches fail loudly instead of decoding garbage.
const VERSION: u64 = 3;

fn write_u64<W: Write>(w: &mut W, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

/// A reader that tracks its byte position so every truncation or
/// inconsistency error can point at the exact offset (the hardening
/// contract of this codec: a short or bit-flipped file must fail loudly,
/// never produce a garbage `Graph`).
struct Pos<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> Pos<R> {
    fn new(inner: R) -> Self {
        Self { inner, offset: 0 }
    }

    /// Fail with [`IoError::CorruptAt`] naming `what` if fewer than
    /// `buf.len()` bytes remain.
    fn read_exact(&mut self, buf: &mut [u8], what: &'static str) -> Result<(), IoError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(IoError::CorruptAt {
                offset: self.offset,
                what,
            }),
            Err(e) => Err(IoError::Io(e)),
        }
    }

    fn read_u64(&mut self, what: &'static str) -> Result<u64, IoError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b, what)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_u32(&mut self, what: &'static str) -> Result<u32, IoError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b, what)?;
        Ok(u32::from_le_bytes(b))
    }
}

/// Serialize the CSR image to a writer (little-endian, versioned).
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), IoError> {
    let mut out = BufWriter::new(writer);
    out.write_all(MAGIC)?;
    write_u64(&mut out, VERSION)?;
    write_u64(&mut out, g.is_directed() as u64)?;
    write_u64(&mut out, g.num_vertices() as u64)?;
    write_u64(&mut out, g.num_edges() as u64)?;
    write_u64(&mut out, g.has_vertex_labels() as u64)?;
    write_u64(&mut out, g.has_edge_labels() as u64)?;
    for &off in g.row_index() {
        write_u64(&mut out, off)?;
    }
    for &c in g.col_index() {
        out.write_all(&c.to_le_bytes())?;
    }
    for v in 0..g.num_vertices() as VertexId {
        for &w in g.neighbor_weights(v) {
            out.write_all(&w.to_le_bytes())?;
        }
    }
    if g.has_vertex_labels() {
        for v in 0..g.num_vertices() as VertexId {
            out.write_all(&[g.vertex_label(v)])?;
        }
    }
    if g.has_edge_labels() {
        for v in 0..g.num_vertices() as VertexId {
            out.write_all(g.neighbor_relations(v))?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Deserialize a CSR image. The result is validated before being
/// returned, and carries the static-weight prefix cache (DESIGN.md §5);
/// use [`read_binary_with`] to skip the cache build.
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, IoError> {
    read_binary_with(reader, true)
}

/// Like [`read_binary`], but with explicit control over the prefix-cache
/// build — loaders that will never run static-weight or metapath walks
/// (e.g. pure memory-model experiments) can skip the extra O(|E|) pass
/// and the cumulative arrays' memory.
pub fn read_binary_with<R: Read>(reader: R, prefix_cache: bool) -> Result<Graph, IoError> {
    let mut r = Pos::new(BufReader::new(reader));
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic, "truncated magic")?;
    if &magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = r.read_u64("truncated version word")?;
    if version != VERSION {
        return Err(IoError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let directed_word = r.read_u64("truncated header (directed flag)")?;
    if directed_word > 1 {
        return Err(IoError::CorruptAt {
            offset: r.offset - 8,
            what: "directed flag is neither 0 nor 1",
        });
    }
    let directed = directed_word != 0;
    let n = r.read_u64("truncated header (vertex count)")? as usize;
    let m = r.read_u64("truncated header (edge count)")? as usize;
    let vlabels_word = r.read_u64("truncated header (vertex-label flag)")?;
    let elabels_word = r.read_u64("truncated header (edge-label flag)")?;
    if vlabels_word > 1 || elabels_word > 1 {
        return Err(IoError::CorruptAt {
            offset: r.offset - if elabels_word > 1 { 8 } else { 16 },
            what: "label-presence flag is neither 0 nor 1",
        });
    }
    let (has_vlabels, has_elabels) = (vlabels_word != 0, elabels_word != 0);

    let mut row_index = Vec::with_capacity(n.saturating_add(1).min(1 << 28));
    for _ in 0..=n {
        row_index.push(r.read_u64("truncated row_index")?);
    }
    let mut col_index = Vec::with_capacity(m.min(1 << 28));
    for _ in 0..m {
        col_index.push(r.read_u32("truncated col_index")?);
    }
    let mut weights = Vec::with_capacity(m.min(1 << 28));
    for _ in 0..m {
        weights.push(r.read_u32("truncated weights")?);
    }
    let mut vertex_labels = Vec::new();
    if has_vlabels {
        vertex_labels = vec![0u8; n];
        r.read_exact(&mut vertex_labels, "truncated vertex labels")?;
    }
    let mut edge_labels = Vec::new();
    if has_elabels {
        edge_labels = vec![0u8; m];
        r.read_exact(&mut edge_labels, "truncated edge labels")?;
    }
    // A well-formed image ends exactly here; trailing bytes mean the
    // header counts and the payload disagree.
    let mut probe = [0u8; 1];
    match r.inner.read(&mut probe) {
        Ok(0) => {}
        Ok(_) => {
            return Err(IoError::CorruptAt {
                offset: r.offset,
                what: "trailing bytes after CSR image",
            })
        }
        Err(e) => return Err(IoError::Io(e)),
    }

    let mut g = Graph {
        row_index: row_index.into(),
        col_index: col_index.into(),
        weights: weights.into(),
        vertex_labels: vertex_labels.into(),
        edge_labels: edge_labels.into(),
        directed,
        prefix: None,
    };
    validate(&g).map_err(IoError::Invalid)?;
    if prefix_cache {
        // `build_prefix_cache` itself skips (leaves the cache absent) when
        // the on-disk weights exceed the 16-bit promote limit.
        g.build_prefix_cache();
    }
    Ok(g)
}

/// Save a binary CSR image to a file.
pub fn save_binary<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), IoError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Load a binary CSR image from a file (with the prefix cache; see
/// [`load_binary_with`]).
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    read_binary(std::fs::File::open(path)?)
}

/// Like [`load_binary`], but with explicit control over the prefix-cache
/// build.
pub fn load_binary_with<P: AsRef<Path>>(path: P, prefix_cache: bool) -> Result<Graph, IoError> {
    read_binary_with(std::fs::File::open(path)?, prefix_cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn attributed_graph() -> Graph {
        generators::rmat_dataset(7, 11)
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = attributed_graph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        // The written list is of *stored* (already mirrored) edges, so read
        // it back as directed to avoid double mirroring. Trailing isolated
        // vertices are not representable in an edge list, so the reloaded
        // vertex count may be smaller.
        let g2 = read_edge_list(&buf[..], true).unwrap();
        assert!(g2.num_vertices() <= g.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in 0..g2.num_vertices() as VertexId {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
            assert_eq!(g.neighbor_weights(v), g2.neighbor_weights(v));
            assert_eq!(g.neighbor_relations(v), g2.neighbor_relations(v));
        }
    }

    #[test]
    fn edge_list_parses_comments_and_defaults() {
        let text = "# comment\n% other comment\n\n0 1\n1 2 7\n2 0 3 1\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbor_weights(1), &[7]);
        assert_eq!(g.neighbor_relations(2), &[1]);
        assert_eq!(g.neighbor_weights(0), &[1]); // default weight
    }

    #[test]
    fn edge_list_undirected_mirrors() {
        let g = read_edge_list("0 1\n".as_bytes(), false).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn edge_list_reports_bad_lines() {
        let err = read_edge_list("0 x\n".as_bytes(), true).unwrap_err();
        match err {
            IoError::BadLine { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_edge_list("42\n".as_bytes(), true).unwrap_err();
        assert!(matches!(err, IoError::BadLine { .. }));
    }

    #[test]
    fn binary_roundtrip_exact() {
        let g = attributed_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
        // Loaded graphs carry the hot-path cache by default; the opt-out
        // variant skips it (structural equality is unaffected).
        assert!(g2.has_prefix_cache());
        let g3 = read_binary_with(&buf[..], false).unwrap();
        assert!(!g3.has_prefix_cache());
        assert_eq!(g2, g3);
    }

    #[test]
    fn binary_roundtrip_without_labels() {
        let g = crate::GraphBuilder::directed()
            .edges([(0, 1), (1, 2)])
            .build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
        assert!(!g2.has_vertex_labels());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTAGRAPH........"[..]).unwrap_err();
        assert!(matches!(err, IoError::BadMagic));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = attributed_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_corrupted_payload() {
        let g = attributed_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Stomp on a col_index entry to create a dangling edge: col data
        // begins after magic + version + 5 header words + (n+1) offsets.
        let col_start = 8 + 8 + 5 * 8 + (g.num_vertices() + 1) * 8;
        buf[col_start..col_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_binary(&buf[..]),
            Err(IoError::Invalid(_)) | Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn binary_rejects_wrong_version() {
        let g = attributed_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[8..16].copy_from_slice(&99u64.to_le_bytes());
        assert!(matches!(
            read_binary(&buf[..]),
            Err(IoError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn binary_truncation_errors_carry_byte_offsets() {
        let g = attributed_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Cut mid-row_index: the error must name the exact offset where
        // bytes ran out.
        let cut = 8 + 8 + 5 * 8 + 12;
        match read_binary(&buf[..cut]).unwrap_err() {
            IoError::CorruptAt { offset, what } => {
                assert_eq!(offset, (8 + 8 + 5 * 8 + 8) as u64);
                assert!(what.contains("row_index"), "got {what:?}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Cutting at any point must error, never yield a graph.
        for frac in [1, 3, 7, 9] {
            let cut = buf.len() * frac / 10;
            assert!(read_binary(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn binary_bit_flips_fail_loudly() {
        let g = attributed_graph();
        let mut clean = Vec::new();
        write_binary(&g, &mut clean).unwrap();
        // Flip one bit in every header word (version, flags, counts): each
        // must produce an error or — at minimum — not silently produce a
        // different graph claiming to be valid.
        for word in 1..7 {
            let mut buf = clean.clone();
            buf[word * 8] ^= 0x04;
            match read_binary(&buf[..]) {
                Err(_) => {}
                Ok(g2) => assert_eq!(g, g2, "bit flip in header word {word} went unnoticed"),
            }
        }
        // Growing the edge count makes the payload short: offset-carrying
        // truncation error, not a garbage graph.
        let mut buf = clean.clone();
        let m = g.num_edges() as u64;
        buf[32..40].copy_from_slice(&(m + 1).to_le_bytes());
        assert!(matches!(
            read_binary(&buf[..]),
            Err(IoError::CorruptAt { .. }) | Err(IoError::Invalid(_))
        ));
        // Trailing garbage is also rejected.
        let mut buf = clean.clone();
        buf.push(0xAB);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(IoError::CorruptAt {
                what: "trailing bytes after CSR image",
                ..
            })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lightrw_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = attributed_graph();
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
