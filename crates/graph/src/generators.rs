//! Synthetic graph generators and dataset stand-ins.
//!
//! The paper evaluates on five real-world graphs (Table 2) plus RMAT
//! synthetics (rmat-12…22, Kronecker/R-MAT model). We implement:
//!
//! - [`rmat`] — the R-MAT recursive generator (Chakrabarti et al., SDM'04)
//!   with Graph500 partition probabilities by default, which produces the
//!   power-law degree skew all of LightRW's memory optimizations target;
//! - [`erdos_renyi_gnm`] — uniform random graphs (a no-skew control for
//!   ablation benches);
//! - deterministic fixtures ([`ring`], [`star`], [`path`], [`complete`])
//!   used heavily by unit tests;
//! - [`DatasetProfile`] — scaled stand-ins for youtube / us-patents /
//!   liveJournal / orkut / uk2002. We cannot redistribute the real files,
//!   so each profile records the real |V|, |E|, directedness and average
//!   degree from Table 2 and generates an RMAT graph with matching average
//!   degree at a caller-chosen scale. DESIGN.md documents why this
//!   preserves the evaluated effects; `lightrw-graph::io` can load the real
//!   SNAP files when available.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use lightrw_rng::{Rng, SplitMix64};

/// Graph500 R-MAT partition probabilities (a, b, c; d is the remainder).
pub const RMAT_A: f64 = 0.57;
pub const RMAT_B: f64 = 0.19;
pub const RMAT_C: f64 = 0.19;

/// Generate an R-MAT edge list: `2^scale` vertices, `edge_factor * 2^scale`
/// undirected-intent edge samples (duplicates collapse in the builder, as
/// in the reference R-MAT generator).
pub fn rmat_edges(
    scale: u32,
    edge_factor: usize,
    skew: (f64, f64, f64),
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    rmat_edge_stream(scale, edge_factor, skew, seed).collect()
}

/// Streaming form of [`rmat_edges`]: yields the identical edge sequence
/// (same RNG draws, same order) without materializing the list. The
/// out-of-core pack pipeline (`crate::pack`) consumes this so an rmat-22+
/// dataset can be packed in bounded memory.
pub fn rmat_edge_stream(
    scale: u32,
    edge_factor: usize,
    (a, b, c): (f64, f64, f64),
    seed: u64,
) -> impl Iterator<Item = (VertexId, VertexId)> {
    assert!(scale < 32, "scale must fit in u32 vertex ids");
    assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0);
    let n_edges = edge_factor << scale;
    let mut rng = SplitMix64::new(seed);
    (0..n_edges).map(move |_| {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    })
}

/// R-MAT graph with Graph500 parameters, built directed (each sampled edge
/// stored one way), `2^scale` vertices. The paper's rmat-N datasets use
/// average degree 8 (Table 2: |E| = 2^{N+3}), i.e. `edge_factor = 8`.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    GraphBuilder::directed()
        .num_vertices(1 << scale)
        .edges(rmat_edges(
            scale,
            edge_factor,
            (RMAT_A, RMAT_B, RMAT_C),
            seed,
        ))
        .build()
}

/// Erdős–Rényi G(n, m): `m` edges sampled uniformly (without self-loops).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "G(n,m) needs at least two vertices");
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.gen_range(n as u64) as VertexId;
        let mut v = rng.gen_range(n as u64 - 1) as VertexId;
        if v >= u {
            v += 1; // skip self-loop
        }
        edges.push((u, v));
    }
    GraphBuilder::undirected()
        .num_vertices(n)
        .edges(edges)
        .build()
}

/// Ring lattice: each vertex connected to its `k` clockwise successors
/// (undirected). Deterministic; every vertex has degree `2k`.
pub fn ring(n: usize, k: usize) -> Graph {
    assert!(n > 2 * k, "ring needs n > 2k");
    let mut b = GraphBuilder::undirected().num_vertices(n);
    for u in 0..n {
        for j in 1..=k {
            b = b.edge(u as VertexId, ((u + j) % n) as VertexId);
        }
    }
    b.build()
}

/// Star: vertex 0 connected to all others (undirected). The max-skew
/// fixture for cache tests.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    GraphBuilder::undirected()
        .num_vertices(n)
        .edges((1..n as VertexId).map(|v| (0, v)))
        .build()
}

/// Simple path 0-1-2-…-(n-1), undirected.
pub fn path(n: usize) -> Graph {
    assert!(n >= 2);
    GraphBuilder::undirected()
        .num_vertices(n)
        .edges((0..n as VertexId - 1).map(|v| (v, v + 1)))
        .build()
}

/// Complete graph K_n, undirected.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::undirected().num_vertices(n);
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            b = b.edge(u, v);
        }
    }
    b.build()
}

/// One of the paper's evaluation datasets (Table 2), with the metadata
/// needed to build a scaled synthetic stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetProfile {
    /// Short name used in the paper's figures (YT, UP, LJ, OR, UK, RMAT-n).
    pub name: &'static str,
    /// Full vertex count of the real dataset.
    pub real_vertices: u64,
    /// Full edge count of the real dataset.
    pub real_edges: u64,
    /// Whether the real dataset is directed.
    pub directed: bool,
    /// Default R-MAT skew used for the stand-in (Graph500 unless noted).
    pub skew: (f64, f64, f64),
}

impl DatasetProfile {
    /// Average degree of the real dataset.
    pub fn avg_degree(&self) -> f64 {
        self.real_edges as f64 / self.real_vertices as f64
    }

    /// youtube (YT): 1.14M vertices, 2.99M edges, undirected.
    pub fn youtube() -> Self {
        Self {
            name: "youtube",
            real_vertices: 1_140_000,
            real_edges: 2_990_000,
            directed: false,
            skew: (RMAT_A, RMAT_B, RMAT_C),
        }
    }

    /// us-patents (UP): 3.78M vertices, 16.52M edges, directed.
    pub fn us_patents() -> Self {
        Self {
            name: "us-patents",
            real_vertices: 3_780_000,
            real_edges: 16_520_000,
            directed: true,
            // Citation networks are mildly skewed; soften the recursion.
            skew: (0.45, 0.22, 0.22),
        }
    }

    /// liveJournal (LJ): 4.8M vertices, 68.9M edges, undirected.
    pub fn livejournal() -> Self {
        Self {
            name: "liveJournal",
            real_vertices: 4_800_000,
            real_edges: 68_900_000,
            directed: false,
            skew: (RMAT_A, RMAT_B, RMAT_C),
        }
    }

    /// orkut (OR): 3.1M vertices, 117.2M edges, undirected.
    pub fn orkut() -> Self {
        Self {
            name: "orkut",
            real_vertices: 3_100_000,
            real_edges: 117_200_000,
            directed: false,
            skew: (RMAT_A, RMAT_B, RMAT_C),
        }
    }

    /// uk2002 (UK): 18.52M vertices, 298.11M edges, directed web graph.
    pub fn uk2002() -> Self {
        Self {
            name: "uk2002",
            real_vertices: 18_520_000,
            real_edges: 298_110_000,
            directed: true,
            // Web graphs are the most skewed of the set.
            skew: (0.62, 0.17, 0.17),
        }
    }

    /// The paper's five real-world datasets in Table 2 order.
    pub fn all_real() -> Vec<Self> {
        vec![
            Self::youtube(),
            Self::us_patents(),
            Self::livejournal(),
            Self::orkut(),
            Self::uk2002(),
        ]
    }

    /// Build the scaled stand-in: an R-MAT graph with `2^scale` vertices
    /// whose average degree matches the real dataset's, with random weights
    /// and labels initialized the way the paper does (§6.1.4).
    ///
    /// `scale` trades fidelity for runtime; experiment harnesses default to
    /// 14–16 and accept `--scale` to raise it.
    pub fn stand_in(&self, scale: u32, seed: u64) -> Graph {
        // For undirected datasets the builder doubles edges, so sample half
        // as many input pairs to hit the target stored-edge count.
        let target_avg = self.avg_degree();
        let per_vertex = if self.directed {
            target_avg
        } else {
            target_avg / 2.0
        };
        // Duplicate collapse loses some sampled edges; oversample ~12%.
        let edge_factor = ((per_vertex * 1.12).round() as usize).max(1);
        let edges = rmat_edges(scale, edge_factor, self.skew, seed);
        let mut b = if self.directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        b = b.num_vertices(1 << scale).edges(edges);
        b.randomize_weights(64, seed ^ 0x5EED_0001)
            .randomize_edge_labels(2, seed ^ 0x5EED_0002)
            .randomize_vertex_labels(4, seed ^ 0x5EED_0003)
            .build()
    }
}

/// Build the rmat-N synthetic of Table 2 (avg degree 8, directed), with
/// weights/labels initialized like the stand-ins.
pub fn rmat_dataset(scale: u32, seed: u64) -> Graph {
    GraphBuilder::directed()
        .num_vertices(1 << scale)
        .edges(rmat_edges(scale, 8, (RMAT_A, RMAT_B, RMAT_C), seed))
        .randomize_weights(64, seed ^ 0x5EED_0001)
        .randomize_edge_labels(2, seed ^ 0x5EED_0002)
        .randomize_vertex_labels(4, seed ^ 0x5EED_0003)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_histogram;
    use crate::validate::validate;

    #[test]
    fn rmat_vertex_count_and_validity() {
        let g = rmat(10, 8, 1);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 0);
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 8, 2);
        // Power-law: max degree far above average.
        assert!(
            (g.max_degree() as f64) > 10.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn rmat_deterministic() {
        assert_eq!(rmat(8, 4, 7), rmat(8, 4, 7));
        assert_ne!(rmat(8, 4, 7), rmat(8, 4, 8));
    }

    #[test]
    fn erdos_renyi_is_flat() {
        let g = erdos_renyi_gnm(2048, 8192, 3);
        assert!(validate(&g).is_ok());
        // ER max degree stays within a small factor of the average.
        assert!((g.max_degree() as f64) < 6.0 * g.avg_degree().max(1.0));
    }

    #[test]
    fn erdos_renyi_has_no_self_loops() {
        let g = erdos_renyi_gnm(100, 1000, 4);
        for (u, v, _) in g.iter_edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn ring_degrees_uniform() {
        let g = ring(10, 2);
        for v in 0..10u32 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn star_hub_degree() {
        let g = star(64);
        assert_eq!(g.degree(0), 63);
        for v in 1..64u32 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn path_endpoints() {
        let g = path(5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 6 * 5);
        for v in 0..6u32 {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn stand_in_matches_profile_shape() {
        for p in DatasetProfile::all_real() {
            let g = p.stand_in(10, 42);
            assert_eq!(g.num_vertices(), 1024, "{}", p.name);
            assert_eq!(g.is_directed(), p.directed, "{}", p.name);
            // Average degree within 2x of the real profile (duplicate
            // collapse + small scale make it inexact).
            let ratio = g.avg_degree() / p.avg_degree();
            assert!(
                (0.4..=1.6).contains(&ratio),
                "{}: avg degree ratio {ratio} (got {} want {})",
                p.name,
                g.avg_degree(),
                p.avg_degree()
            );
            assert!(g.has_vertex_labels() && g.has_edge_labels(), "{}", p.name);
            assert!(validate(&g).is_ok(), "{}", p.name);
        }
    }

    #[test]
    fn rmat_dataset_has_attributes() {
        let g = rmat_dataset(8, 5);
        assert!(g.has_vertex_labels());
        assert!(g.has_edge_labels());
        assert!(g.iter_edges().all(|(_, _, w)| (1..=64).contains(&w)));
    }

    #[test]
    fn degree_histogram_covers_all_vertices() {
        let g = rmat(10, 8, 9);
        let h = degree_histogram(&g);
        let total: u64 = h.iter().map(|b| b.count).sum();
        assert_eq!(total, g.num_vertices() as u64);
    }
}
