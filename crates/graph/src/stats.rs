//! Degree-distribution summaries.
//!
//! The effectiveness of both memory optimizations in the paper is a
//! function of the degree distribution: the degree-aware cache wins when
//! high-degree vertices dominate traversals (§5.1's `Pr[v] = Ω(N(v))`
//! analysis), and the dynamic burst engine's valid-data ratio is set by how
//! adjacency lengths straddle burst sizes (§5.2, Fig. 6). These summaries
//! feed both the experiment harnesses and EXPERIMENTS.md commentary.

use crate::csr::{Graph, VertexId};

/// One log2 bucket of the degree histogram: degrees in
/// `[2^bucket, 2^{bucket+1})`, except bucket 0 which also holds degree 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeBucket {
    /// log2 lower bound of the bucket.
    pub bucket: u32,
    /// Number of vertices whose degree falls in the bucket.
    pub count: u64,
    /// Total edges owned by vertices in the bucket.
    pub edges: u64,
}

/// Histogram of out-degrees in log2 buckets.
pub fn degree_histogram(g: &Graph) -> Vec<DegreeBucket> {
    let mut buckets: Vec<DegreeBucket> = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        let d = g.degree(v);
        let b = if d == 0 {
            0
        } else {
            32 - (d.leading_zeros() + 1)
        };
        while buckets.len() <= b as usize {
            buckets.push(DegreeBucket {
                bucket: buckets.len() as u32,
                count: 0,
                edges: 0,
            });
        }
        buckets[b as usize].count += 1;
        buckets[b as usize].edges += d as u64;
    }
    buckets
}

/// Summary statistics of a graph, printed by experiment harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    pub vertices: usize,
    pub edges: usize,
    pub avg_degree: f64,
    pub max_degree: u32,
    /// Fraction of all edges owned by the top 1% highest-degree vertices —
    /// the skew measure that predicts degree-aware cache benefit.
    pub top1pct_edge_share: f64,
    /// Gini coefficient of the degree distribution (0 = uniform).
    pub degree_gini: f64,
}

/// Compute a [`GraphSummary`].
pub fn summarize(g: &Graph) -> GraphSummary {
    let n = g.num_vertices();
    let mut degrees: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let total_edges: u64 = degrees.iter().map(|&d| d as u64).sum();

    let top = (n / 100).max(1).min(n);
    let top_edges: u64 = degrees.iter().rev().take(top).map(|&d| d as u64).sum();
    let top1pct_edge_share = if total_edges == 0 {
        0.0
    } else {
        top_edges as f64 / total_edges as f64
    };

    // Gini over the sorted degree sequence.
    let degree_gini = if total_edges == 0 || n < 2 {
        0.0
    } else {
        let mut weighted: f64 = 0.0;
        for (i, &d) in degrees.iter().enumerate() {
            weighted += (i as f64 + 1.0) * d as f64;
        }
        (2.0 * weighted) / (n as f64 * total_edges as f64) - (n as f64 + 1.0) / n as f64
    };

    GraphSummary {
        vertices: n,
        edges: g.num_edges(),
        avg_degree: g.avg_degree(),
        max_degree: degrees.last().copied().unwrap_or(0),
        top1pct_edge_share,
        degree_gini,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi_gnm, ring, rmat, star};

    #[test]
    fn histogram_buckets_partition_vertices() {
        let g = rmat(10, 8, 1);
        let h = degree_histogram(&g);
        assert_eq!(
            h.iter().map(|b| b.count).sum::<u64>(),
            g.num_vertices() as u64
        );
        assert_eq!(h.iter().map(|b| b.edges).sum::<u64>(), g.num_edges() as u64);
    }

    #[test]
    fn histogram_of_regular_graph_is_single_bucket() {
        let g = ring(16, 2); // all degree 4 => bucket 2
        let h = degree_histogram(&g);
        let nonzero: Vec<_> = h.iter().filter(|b| b.count > 0).collect();
        assert_eq!(nonzero.len(), 1);
        assert_eq!(nonzero[0].bucket, 2);
        assert_eq!(nonzero[0].count, 16);
    }

    #[test]
    fn star_is_maximally_skewed() {
        let s = summarize(&star(1000));
        assert!(s.top1pct_edge_share > 0.45, "{}", s.top1pct_edge_share);
        assert!(s.degree_gini > 0.45, "{}", s.degree_gini);
    }

    #[test]
    fn ring_has_zero_gini() {
        let s = summarize(&ring(100, 3));
        assert!(s.degree_gini.abs() < 1e-9);
        assert_eq!(s.max_degree, 6);
    }

    #[test]
    fn rmat_more_skewed_than_er() {
        let r = summarize(&rmat(12, 8, 3));
        let e = summarize(&erdos_renyi_gnm(4096, 8 * 4096, 3));
        assert!(
            r.degree_gini > e.degree_gini + 0.1,
            "rmat {} vs er {}",
            r.degree_gini,
            e.degree_gini
        );
        assert!(r.top1pct_edge_share > e.top1pct_edge_share);
    }

    #[test]
    fn empty_graph_summary() {
        let g = crate::GraphBuilder::directed().build();
        let s = summarize(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.degree_gini, 0.0);
    }
}
