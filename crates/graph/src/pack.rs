//! Streaming pack pipeline: edge stream → packed on-disk CSR, in
//! bounded memory (DESIGN.md §10).
//!
//! The pipeline never holds the edge list in memory. Its phases:
//!
//! 1. **Ingest + run generation.** Edge records (24 bytes: endpoints,
//!    weight, relation, input sequence number) are buffered in a
//!    fixed-capacity chunk; each full chunk is sorted by `(u, v, seq)`
//!    and spilled to a temporary run file. Undirected inputs are
//!    mirrored at ingest, exactly like `GraphBuilder`.
//! 2. **K-way merge + dedup + stats.** All runs merge into one sorted
//!    stream; duplicate `(u, v)` pairs collapse keeping the lowest
//!    sequence number (the input's first occurrence — deterministic,
//!    where the in-memory builder's unstable sort leaves the survivor
//!    unspecified when duplicate attributes differ). The surviving
//!    records stream to a merged temp file while one O(|V|) pass of
//!    state accumulates: per-vertex degrees, max weight, the relation
//!    histogram — everything needed to size the section table.
//! 3. **(Optional) degree relabeling.** With `PackOptions::relabel`,
//!    vertices are renumbered in descending-degree order (ties by old
//!    id — the same order as `reorder::by_degree_descending`) and the
//!    merged records are re-sorted externally under the new ids; the
//!    `new_to_old` permutation is persisted in the file.
//! 4. **Section streaming.** The output file is sized up front; one
//!    seeked write handle per section (col_index, weights, labels, each
//!    prefix cumulative) consumes the merged stream in a single linear
//!    pass, so the prefix caches are computed on the fly and
//!    `build_prefix_cache` is a no-op on load.
//!
//! Peak memory is `O(chunk + |V|)`: the sort chunk (configurable,
//! default 4 Mi records ≈ 96 MB) plus one `u32` degree per vertex —
//! independent of |E|.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use lightrw_rng::{Rng, SplitMix64};

use crate::builder::rng_key;
use crate::csr::{Graph, VertexId, MAX_CACHED_RELATIONS, MAX_PREFIX_STATIC_WEIGHT};
use crate::generators::{rmat_edge_stream, RMAT_A, RMAT_B, RMAT_C};
use crate::io::IoError;
use crate::packed::{
    assign_offsets, shard_section, varint_len, write_header, write_packed_with, write_varint,
    PackExtras, FLAG_COMPRESSED, FLAG_DIRECTED, FLAG_ELABELS, FLAG_PREFIX, FLAG_RELABEL,
    FLAG_SHARDS, FLAG_VLABELS, SEC_COL, SEC_COL_VARINT, SEC_ELABELS, SEC_NEW_TO_OLD,
    SEC_PREFIX_ALL, SEC_REL_PREFIX_BASE, SEC_ROW, SEC_SHARD_CUTS, SEC_SHARD_META, SEC_VLABELS,
    SEC_WEIGHTS, SHARD_LANE_GHOSTS, SHARD_LANE_ROW,
};
use crate::partition::{cuts_from_row_index, partition_graph, ShardStrategy};
use crate::reorder::{by_degree_descending, Relabeling};

/// Knobs for the streaming pipeline.
#[derive(Debug, Clone)]
pub struct PackOptions {
    /// Renumber vertices in descending-degree order at pack time and
    /// persist the relabeling in the file.
    pub relabel: bool,
    /// Sort-chunk capacity in records (24 bytes each). Bounds the
    /// pipeline's memory; smaller values spill more runs.
    pub chunk_records: usize,
    /// Precompute prefix cumulative sections into the file (skipped
    /// automatically when any weight exceeds the 16-bit promote limit).
    pub prefix_cache: bool,
    /// Partition the graph into this many contiguous vertex-range
    /// shards and persist the partition in the file (0 = unsharded).
    /// The streaming pipeline supports the range strategy only — its
    /// cuts derive from the degree prefix sums already in memory;
    /// fennel needs the whole graph and goes through
    /// [`pack_graph_with`].
    pub shards: usize,
    /// Store `col_index` varint-delta compressed (DESIGN.md §11).
    pub compress: bool,
}

impl Default for PackOptions {
    fn default() -> Self {
        Self {
            relabel: false,
            chunk_records: 4 << 20,
            prefix_cache: true,
            shards: 0,
            compress: false,
        }
    }
}

/// What the pipeline did, for logs and tests.
#[derive(Debug, Clone)]
pub struct PackStats {
    pub vertices: usize,
    /// Stored (directed) edges after dedup.
    pub edges: usize,
    /// Duplicate `(u, v)` records collapsed.
    pub duplicates: usize,
    /// Sorted runs spilled to disk (0 when one chunk held everything).
    pub runs: usize,
    /// Total size of the packed output file.
    pub file_bytes: u64,
}

/// A 24-byte edge record: the unit the external sort works in.
#[derive(Debug, Clone, Copy)]
struct Rec {
    u: u32,
    v: u32,
    w: u32,
    rel: u32,
    seq: u64,
}

impl Rec {
    fn key(&self) -> (u32, u32, u64) {
        (self.u, self.v, self.seq)
    }

    fn write_to(&self, out: &mut impl Write) -> io::Result<()> {
        let mut b = [0u8; 24];
        b[0..4].copy_from_slice(&self.u.to_le_bytes());
        b[4..8].copy_from_slice(&self.v.to_le_bytes());
        b[8..12].copy_from_slice(&self.w.to_le_bytes());
        b[12..16].copy_from_slice(&self.rel.to_le_bytes());
        b[16..24].copy_from_slice(&self.seq.to_le_bytes());
        out.write_all(&b)
    }

    /// `Ok(None)` on clean EOF; mid-record EOF is an error.
    fn read_from(r: &mut impl Read) -> io::Result<Option<Rec>> {
        let mut b = [0u8; 24];
        match r.read_exact(&mut b) {
            Ok(()) => Ok(Some(Rec {
                u: u32::from_le_bytes(b[0..4].try_into().unwrap()),
                v: u32::from_le_bytes(b[4..8].try_into().unwrap()),
                w: u32::from_le_bytes(b[8..12].try_into().unwrap()),
                rel: u32::from_le_bytes(b[12..16].try_into().unwrap()),
                seq: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            })),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// One source of sorted records for the k-way merge: a spilled run file
/// or the final in-memory chunk (kept unspilled when it is the only
/// run's worth of leftover data).
enum Cursor {
    File(BufReader<File>),
    Mem(std::vec::IntoIter<Rec>),
}

impl Cursor {
    fn next(&mut self) -> io::Result<Option<Rec>> {
        match self {
            Cursor::File(r) => Rec::read_from(r),
            Cursor::Mem(it) => Ok(it.next()),
        }
    }
}

/// `(record sort key, cursor index)` — min-heap entries for the k-way merge.
type MergeEntry = Reverse<((u32, u32, u64), usize)>;

/// Merge any number of sorted cursors into one sorted stream.
struct Merge {
    cursors: Vec<Cursor>,
    heap: BinaryHeap<MergeEntry>,
    pending: Vec<Option<Rec>>,
}

impl Merge {
    fn new(mut cursors: Vec<Cursor>) -> io::Result<Self> {
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        let mut pending = Vec::with_capacity(cursors.len());
        for (i, c) in cursors.iter_mut().enumerate() {
            let first = c.next()?;
            if let Some(rec) = first {
                heap.push(Reverse((rec.key(), i)));
            }
            pending.push(first);
        }
        Ok(Self {
            cursors,
            heap,
            pending,
        })
    }

    fn next(&mut self) -> io::Result<Option<Rec>> {
        let Some(Reverse((_, i))) = self.heap.pop() else {
            return Ok(None);
        };
        let rec = self.pending[i]
            .take()
            .expect("heap entry backed by a record");
        if let Some(next) = self.cursors[i].next()? {
            self.heap.push(Reverse((next.key(), i)));
            self.pending[i] = Some(next);
        }
        Ok(Some(rec))
    }
}

/// Chunked sorter: buffers records, spills sorted runs, hands the final
/// set of cursors to a [`Merge`].
struct Sorter<'t> {
    buf: Vec<Rec>,
    cap: usize,
    runs: Vec<PathBuf>,
    tmp_base: PathBuf,
    temps: &'t mut Vec<PathBuf>,
}

impl<'t> Sorter<'t> {
    fn new(cap: usize, tmp_base: PathBuf, temps: &'t mut Vec<PathBuf>) -> Self {
        Self {
            buf: Vec::with_capacity(cap.min(1 << 22)),
            cap: cap.max(2),
            runs: Vec::new(),
            tmp_base,
            temps,
        }
    }

    fn push(&mut self, rec: Rec) -> io::Result<()> {
        self.buf.push(rec);
        if self.buf.len() >= self.cap {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        self.buf.sort_unstable_by_key(Rec::key);
        let path = self
            .tmp_base
            .with_extension(format!("run{}.tmp", self.runs.len()));
        let mut out = BufWriter::new(File::create(&path)?);
        for rec in &self.buf {
            rec.write_to(&mut out)?;
        }
        out.flush()?;
        self.temps.push(path.clone());
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Finish ingestion: returns merge cursors (spilled runs plus the
    /// sorted in-memory remainder) and the number of spilled runs.
    fn into_merge(mut self) -> io::Result<(Merge, usize)> {
        self.buf.sort_unstable_by_key(Rec::key);
        let n_runs = self.runs.len();
        let mut cursors: Vec<Cursor> = Vec::with_capacity(n_runs + 1);
        for path in &self.runs {
            cursors.push(Cursor::File(BufReader::new(File::open(path)?)));
        }
        if !self.buf.is_empty() {
            cursors.push(Cursor::Mem(std::mem::take(&mut self.buf).into_iter()));
        }
        Ok((Merge::new(cursors)?, n_runs))
    }
}

/// A section writer: its own handle on the output file, seeked to the
/// section's offset. Multiple live at once so one linear pass over the
/// merged edge stream can fill every edge-indexed section.
struct SecWriter {
    out: BufWriter<File>,
}

impl SecWriter {
    fn at(path: &Path, offset: u64) -> io::Result<Self> {
        let mut f = OpenOptions::new().write(true).open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        Ok(Self {
            out: BufWriter::new(f),
        })
    }

    fn put_u32(&mut self, x: u32) -> io::Result<()> {
        self.out.write_all(&x.to_le_bytes())
    }

    fn put_u64(&mut self, x: u64) -> io::Result<()> {
        self.out.write_all(&x.to_le_bytes())
    }

    fn put_u8(&mut self, x: u8) -> io::Result<()> {
        self.out.write_all(&[x])
    }

    fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Everything phase 2 learns about the edge set.
struct StreamStats {
    degree: Vec<u32>,
    max_endpoint: Option<u32>,
    max_weight: u32,
    label_used: [bool; 256],
    /// Any record (pre-dedup, like `GraphBuilder`) carried a non-zero
    /// relation ⇒ the file stores an edge-label section.
    any_rel: bool,
    edges: usize,
    duplicates: usize,
}

impl StreamStats {
    fn new() -> Self {
        Self {
            degree: Vec::new(),
            max_endpoint: None,
            max_weight: 0,
            label_used: [false; 256],
            any_rel: false,
            edges: 0,
            duplicates: 0,
        }
    }

    fn see_kept(&mut self, rec: &Rec) {
        let hi = rec.u.max(rec.v);
        self.max_endpoint = Some(self.max_endpoint.map_or(hi, |m| m.max(hi)));
        if self.degree.len() <= rec.u as usize {
            self.degree.resize(rec.u as usize + 1, 0);
        }
        self.degree[rec.u as usize] += 1;
        self.max_weight = self.max_weight.max(rec.w);
        self.label_used[(rec.rel & 0xFF) as usize] = true;
        self.edges += 1;
    }
}

/// Pack an edge stream into a packed CSR file at `out`.
///
/// `records` yields `(u, v, weight, relation)` in input order;
/// undirected inputs are mirrored internally. `vertex_labels`, when
/// given, is called once with the final vertex count and must return
/// that many labels (in *original* ids; the pipeline permutes them
/// itself under `relabel`). The resulting file loads to a graph equal
/// to `GraphBuilder` fed the same stream — see the dedup caveat in the
/// module docs.
pub fn pack_edge_stream<I>(
    records: I,
    directed: bool,
    min_vertices: usize,
    vertex_labels: Option<Box<dyn FnOnce(usize) -> Vec<u8>>>,
    out: &Path,
    opts: &PackOptions,
) -> Result<PackStats, IoError>
where
    I: IntoIterator<Item = (u32, u32, u32, u8)>,
{
    let mut temps: Vec<PathBuf> = Vec::new();
    let result = pack_edge_stream_inner(
        records,
        directed,
        min_vertices,
        vertex_labels,
        out,
        opts,
        &mut temps,
    );
    for p in temps {
        std::fs::remove_file(p).ok();
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn pack_edge_stream_inner<I>(
    records: I,
    directed: bool,
    min_vertices: usize,
    vertex_labels: Option<Box<dyn FnOnce(usize) -> Vec<u8>>>,
    out: &Path,
    opts: &PackOptions,
    temps: &mut Vec<PathBuf>,
) -> Result<PackStats, IoError>
where
    I: IntoIterator<Item = (u32, u32, u32, u8)>,
{
    // ---- Phase 1: ingest, mirror, chunk-sort, spill. ----
    let mut sorter = Sorter::new(opts.chunk_records, out.to_path_buf(), temps);
    let mut seq = 0u64;
    let mut any_rel = false;
    for (u, v, w, rel) in records {
        any_rel |= rel != 0;
        sorter.push(Rec {
            u,
            v,
            w,
            rel: rel as u32,
            seq,
        })?;
        seq += 1;
        if !directed {
            sorter.push(Rec {
                u: v,
                v: u,
                w,
                rel: rel as u32,
                seq,
            })?;
            seq += 1;
        }
    }

    // ---- Phase 2: merge, dedup (min seq wins), stats, merged spool. ----
    let (mut merge, n_runs) = sorter.into_merge()?;
    let merged_path = out.with_extension("merged.tmp");
    temps.push(merged_path.clone());
    let mut merged_out = BufWriter::new(File::create(&merged_path)?);
    let mut stats = StreamStats::new();
    stats.any_rel = any_rel;
    let mut last: Option<(u32, u32)> = None;
    while let Some(rec) = merge.next()? {
        if last == Some((rec.u, rec.v)) {
            stats.duplicates += 1;
            continue;
        }
        last = Some((rec.u, rec.v));
        stats.see_kept(&rec);
        Rec { seq: 0, ..rec }.write_to(&mut merged_out)?;
    }
    merged_out.flush()?;
    drop(merged_out);

    let n = stats
        .degree
        .len()
        .max(stats.max_endpoint.map_or(0, |m| m as usize + 1))
        .max(min_vertices);
    stats.degree.resize(n, 0);
    let m = stats.edges;

    // ---- Phase 3 (optional): degree relabeling + external re-sort. ----
    let mut relabeling: Option<Relabeling> = None;
    let mut edge_source = merged_path.clone();
    if opts.relabel {
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.sort_by_key(|&v| (Reverse(stats.degree[v as usize]), v));
        let map = Relabeling::from_new_to_old(order);

        let mut resort = Sorter::new(opts.chunk_records, out.with_extension("relabel"), temps);
        let mut merged_in = BufReader::new(File::open(&merged_path)?);
        while let Some(rec) = Rec::read_from(&mut merged_in)? {
            resort.push(Rec {
                u: map.new_id(rec.u),
                v: map.new_id(rec.v),
                ..rec
            })?;
        }
        let (mut remerge, _) = resort.into_merge()?;
        let relabeled_path = out.with_extension("relabeled.tmp");
        temps.push(relabeled_path.clone());
        let mut relabeled_out = BufWriter::new(File::create(&relabeled_path)?);
        while let Some(rec) = remerge.next()? {
            rec.write_to(&mut relabeled_out)?;
        }
        relabeled_out.flush()?;

        let old_degree = std::mem::take(&mut stats.degree);
        stats.degree = map
            .new_to_old()
            .iter()
            .map(|&old| old_degree[old as usize])
            .collect();
        edge_source = relabeled_path;
        relabeling = Some(map);
    }

    // ---- Phase 4: lay out sections and stream them out. ----
    let n64 = n as u64;
    let m64 = m as u64;
    let mut vlabels = vertex_labels.map(|f| f(n));
    if let Some(labels) = &mut vlabels {
        assert_eq!(labels.len(), n, "vertex-label closure length mismatch");
        if let Some(map) = &relabeling {
            let orig = std::mem::take(labels);
            *labels = map.new_to_old().iter().map(|&o| orig[o as usize]).collect();
        }
    }
    let distinct = stats.label_used.iter().filter(|&&u| u).count();
    let max_label = (0..256).rev().find(|&r| stats.label_used[r]);
    let with_prefix = opts.prefix_cache && stats.max_weight <= MAX_PREFIX_STATIC_WEIGHT;
    // Per-relation cumulatives mirror `Graph::build_prefix_cache`: only
    // for typed graphs with few enough distinct labels, only for labels
    // actually used.
    let rel_prefix_labels: Vec<usize> =
        if with_prefix && stats.any_rel && distinct <= MAX_CACHED_RELATIONS {
            (0..=max_label.unwrap_or(0))
                .filter(|&r| stats.label_used[r])
                .collect()
        } else {
            Vec::new()
        };

    // Row offsets as one in-memory array: O(|V|), the pipeline's
    // existing budget (the degree vector); the shard cuts and every
    // per-shard row lane derive from it.
    let mut row: Vec<u64> = Vec::with_capacity(n + 1);
    {
        let mut acc = 0u64;
        row.push(0);
        for &d in &stats.degree {
            acc += d as u64;
            row.push(acc);
        }
        debug_assert_eq!(acc, m64);
    }

    // Clamp the requested shard count to the vertex count so every
    // persisted shard owns at least one vertex (partition.rs guarantee).
    let k = if opts.shards > 0 {
        crate::partition::clamp_shards(opts.shards, n)
    } else {
        0
    };
    let cuts: Vec<VertexId> = if k > 0 {
        cuts_from_row_index(&row, k)
    } else {
        Vec::new()
    };
    // Sharding and compression both need one extra linear pass over the
    // merged records *before* the section table is sized: the ghost
    // sets and boundary counts per shard, and the exact varint byte
    // total. Ghost membership is k×n bits — bounded like the degrees.
    let mut ghost_bits: Vec<Vec<u64>> = vec![vec![0u64; n.div_ceil(64)]; k];
    let mut boundary = vec![0u64; k];
    let mut varint_total = 0u64;
    if k > 1 || opts.compress {
        let mut reader = BufReader::new(File::open(&edge_source)?);
        let mut cur_u: Option<u32> = None;
        let mut prev_v = 0u32;
        let mut s = 0usize;
        while let Some(rec) = Rec::read_from(&mut reader)? {
            if cur_u != Some(rec.u) {
                cur_u = Some(rec.u);
                if opts.compress {
                    varint_total += varint_len(rec.v);
                }
                // Records stream sorted by u, so the owner only advances.
                while s + 1 < k && rec.u >= cuts[s + 1] {
                    s += 1;
                }
            } else if opts.compress {
                varint_total += varint_len(rec.v - prev_v - 1);
            }
            prev_v = rec.v;
            if k > 1 {
                let t = cuts.partition_point(|&c| c <= rec.v) - 1;
                if t != s {
                    boundary[s] += 1;
                    ghost_bits[s][rec.v as usize / 64] |= 1 << (rec.v % 64);
                }
            }
        }
    }
    let ghosts: Vec<Vec<u32>> = ghost_bits
        .iter()
        .map(|bits| {
            (0..n as u32)
                .filter(|&v| bits[v as usize / 64] >> (v % 64) & 1 == 1)
                .collect()
        })
        .collect();
    drop(ghost_bits);

    let mut flags = 0u64;
    if directed {
        flags |= FLAG_DIRECTED;
    }
    let mut lens: Vec<(u64, u64)> = vec![(SEC_ROW, (n64 + 1) * 8)];
    if opts.compress {
        flags |= FLAG_COMPRESSED;
        lens.push((SEC_COL_VARINT, varint_total));
    } else {
        lens.push((SEC_COL, m64 * 4));
    }
    lens.push((SEC_WEIGHTS, m64 * 4));
    if vlabels.is_some() {
        flags |= FLAG_VLABELS;
        lens.push((SEC_VLABELS, n64));
    }
    if stats.any_rel {
        flags |= FLAG_ELABELS;
        lens.push((SEC_ELABELS, m64));
    }
    if with_prefix {
        flags |= FLAG_PREFIX;
        lens.push((SEC_PREFIX_ALL, m64 * 8));
        for &r in &rel_prefix_labels {
            lens.push((SEC_REL_PREFIX_BASE + r as u64, m64 * 8));
        }
    }
    if relabeling.is_some() {
        flags |= FLAG_RELABEL;
        lens.push((SEC_NEW_TO_OLD, n64 * 4));
    }
    if k > 0 {
        flags |= FLAG_SHARDS;
        lens.push((SEC_SHARD_META, (2 + 3 * k as u64) * 8));
        lens.push((SEC_SHARD_CUTS, (k as u64 + 1) * 4));
        for (s, shard_ghosts) in ghosts.iter().enumerate().take(k) {
            lens.push((shard_section(s, SHARD_LANE_ROW), (n64 + 1) * 8));
            lens.push((
                shard_section(s, SHARD_LANE_GHOSTS),
                shard_ghosts.len() as u64 * 4,
            ));
        }
    }
    let (table, total) = assign_offsets(&lens);
    let offset_of = |id: u64| -> u64 {
        table
            .iter()
            .find(|&&(tid, _, _)| tid == id)
            .expect("section laid out")
            .1
    };

    {
        let file = File::create(out)?;
        file.set_len(total)?; // zero-fills, which also provides padding
        let mut head = BufWriter::new(file);
        write_header(&mut head, flags, n64, m64, &table)?;
        head.flush()?;
    }

    {
        let mut w = SecWriter::at(out, offset_of(SEC_ROW))?;
        for &off in &row {
            w.put_u64(off)?;
        }
        w.finish()?;
    }
    if k > 0 {
        let mut meta = SecWriter::at(out, offset_of(SEC_SHARD_META))?;
        meta.put_u64(k as u64)?;
        meta.put_u64(ShardStrategy::Range.code())?;
        for s in 0..k {
            let (lo, hi) = (cuts[s] as usize, cuts[s + 1] as usize);
            meta.put_u64((hi - lo) as u64)?;
            meta.put_u64(row[hi] - row[lo])?;
            meta.put_u64(boundary[s])?;
        }
        meta.finish()?;
        let mut cw = SecWriter::at(out, offset_of(SEC_SHARD_CUTS))?;
        for &c in &cuts {
            cw.put_u32(c)?;
        }
        cw.finish()?;
        for s in 0..k {
            // Range shard rows are the global offsets clamped to the
            // owned span — see `packed::range_shard_row`.
            let mut rw = SecWriter::at(out, offset_of(shard_section(s, SHARD_LANE_ROW)))?;
            for v in 0..=n as u32 {
                rw.put_u64(row[v.clamp(cuts[s], cuts[s + 1]) as usize])?;
            }
            rw.finish()?;
            let mut gw = SecWriter::at(out, offset_of(shard_section(s, SHARD_LANE_GHOSTS)))?;
            for &gv in &ghosts[s] {
                gw.put_u32(gv)?;
            }
            gw.finish()?;
        }
    }
    if let Some(labels) = &vlabels {
        let mut w = SecWriter::at(out, offset_of(SEC_VLABELS))?;
        w.out.write_all(labels)?;
        w.finish()?;
    }
    if let Some(map) = &relabeling {
        let mut w = SecWriter::at(out, offset_of(SEC_NEW_TO_OLD))?;
        for &old in map.new_to_old() {
            w.put_u32(old)?;
        }
        w.finish()?;
    }

    // One linear pass over the merged (possibly relabeled) records fills
    // every edge-indexed section in parallel.
    {
        let mut col = if opts.compress {
            SecWriter::at(out, offset_of(SEC_COL_VARINT))?
        } else {
            SecWriter::at(out, offset_of(SEC_COL))?
        };
        let mut wts = SecWriter::at(out, offset_of(SEC_WEIGHTS))?;
        let mut elb = if stats.any_rel {
            Some(SecWriter::at(out, offset_of(SEC_ELABELS))?)
        } else {
            None
        };
        let mut pfx = if with_prefix {
            Some(SecWriter::at(out, offset_of(SEC_PREFIX_ALL))?)
        } else {
            None
        };
        let mut rel_pfx: Vec<(usize, u64, SecWriter)> = Vec::new();
        for &r in &rel_prefix_labels {
            rel_pfx.push((
                r,
                0,
                SecWriter::at(out, offset_of(SEC_REL_PREFIX_BASE + r as u64))?,
            ));
        }

        let mut cur_u: Option<u32> = None;
        let mut acc = 0u64;
        let mut prev_v = 0u32;
        let mut reader = BufReader::new(File::open(&edge_source)?);
        while let Some(rec) = Rec::read_from(&mut reader)? {
            let new_row = cur_u != Some(rec.u);
            if new_row {
                cur_u = Some(rec.u);
                acc = 0;
                for entry in rel_pfx.iter_mut() {
                    entry.1 = 0;
                }
            }
            if opts.compress {
                let val = if new_row { rec.v } else { rec.v - prev_v - 1 };
                write_varint(&mut col.out, val)?;
            } else {
                col.put_u32(rec.v)?;
            }
            prev_v = rec.v;
            wts.put_u32(rec.w)?;
            if let Some(e) = elb.as_mut() {
                e.put_u8(rec.rel as u8)?;
            }
            if let Some(p) = pfx.as_mut() {
                acc += rec.w as u64;
                p.put_u64(acc)?;
            }
            for (r, racc, w) in rel_pfx.iter_mut() {
                if rec.rel as usize == *r {
                    *racc += rec.w as u64;
                }
                w.put_u64(*racc)?;
            }
        }
        col.finish()?;
        wts.finish()?;
        if let Some(e) = elb {
            e.finish()?;
        }
        if let Some(p) = pfx {
            p.finish()?;
        }
        for (_, _, w) in rel_pfx {
            w.finish()?;
        }
    }

    Ok(PackStats {
        vertices: n,
        edges: m,
        duplicates: stats.duplicates,
        runs: n_runs,
        file_bytes: total,
    })
}

/// Pack an in-memory graph (the small-graph convenience path). Builds
/// the prefix cache in place first (no-op if present or ineligible) so
/// the file carries it; with `relabel`, the graph is reordered via
/// [`by_degree_descending`] and the relabeling persisted.
pub fn pack_graph(g: &mut Graph, relabel: bool, out: &Path) -> Result<u64, IoError> {
    pack_graph_with(g, relabel, 0, ShardStrategy::Range, false, out)
}

/// [`pack_graph`] with shard-partition and compression extras. Unlike
/// the streaming pipeline, the in-memory path supports both partition
/// strategies (fennel walks the whole adjacency greedily).
pub fn pack_graph_with(
    g: &mut Graph,
    relabel: bool,
    shards: usize,
    strategy: ShardStrategy,
    compress: bool,
    out: &Path,
) -> Result<u64, IoError> {
    g.build_prefix_cache();
    let write = |g: &Graph, map: Option<&Relabeling>| -> Result<u64, IoError> {
        let sharded = (shards > 0).then(|| partition_graph(g, shards, strategy));
        let extras = PackExtras {
            sharded: sharded.as_ref(),
            compress,
        };
        write_packed_with(g, map, &extras, out)
    };
    if relabel {
        let (mut reordered, map) = by_degree_descending(g);
        reordered.build_prefix_cache();
        write(&reordered, Some(&map))
    } else {
        write(g, None)
    }
}

/// Stream-pack the `generators::rmat_dataset` synthetic without ever
/// materializing it: the packed file loads to a graph **equal** to
/// `rmat_dataset(scale, seed)` (same edges, weights, labels), because
/// the per-pair attribute draws reuse the builder's `rng_key` mixing.
pub fn pack_rmat_dataset(
    scale: u32,
    seed: u64,
    out: &Path,
    opts: &PackOptions,
) -> Result<PackStats, IoError> {
    let wseed = seed ^ 0x5EED_0001;
    let eseed = seed ^ 0x5EED_0002;
    let vseed = seed ^ 0x5EED_0003;
    let records = rmat_edge_stream(scale, 8, (RMAT_A, RMAT_B, RMAT_C), seed).map(move |(u, v)| {
        let (a, b) = (u.min(v) as u64, u.max(v) as u64);
        let w = 1 + SplitMix64::new(rng_key(wseed, a, b)).gen_range(64) as u32;
        let rel = SplitMix64::new(rng_key(eseed ^ 0xA5A5, a, b)).gen_range(2) as u8;
        (u, v, w, rel)
    });
    let vlabels: Box<dyn FnOnce(usize) -> Vec<u8>> = Box::new(move |n| {
        let mut rng = SplitMix64::new(vseed);
        (0..n).map(|_| rng.gen_range(4) as u8).collect()
    });
    pack_edge_stream(records, true, 1usize << scale, Some(vlabels), out, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::packed::{load_packed, LoadMode};
    use crate::GraphBuilder;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lightrw_pack_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn no_temps_left(out: &Path) {
        let dir = out.parent().unwrap();
        let stem = out.file_stem().unwrap().to_str().unwrap().to_string();
        for entry in std::fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(
                !(name.starts_with(&stem) && name.ends_with(".tmp")),
                "leftover temp file {name}"
            );
        }
    }

    #[test]
    fn streamed_pack_equals_builder_with_spilling() {
        // Tiny chunks force multiple runs and a real k-way merge.
        let edges: Vec<(u32, u32, u32, u8)> = (0..200u32)
            .map(|i| {
                let u = (i * 7) % 50;
                let v = (i * 13 + 1) % 50;
                (u, v, 1 + (i % 9), (i % 3) as u8)
            })
            .collect();
        for directed in [true, false] {
            let mut b = if directed {
                GraphBuilder::directed()
            } else {
                GraphBuilder::undirected()
            };
            b = b.num_vertices(60);
            // Dedup differs only when duplicate attrs differ; feed the
            // builder the same first-wins survivors by deduping here.
            let mut seen = std::collections::HashSet::new();
            for &(u, v, w, rel) in &edges {
                if seen.insert((u, v)) {
                    b.push_edge(u, v, w, rel);
                    if !directed {
                        seen.insert((v, u));
                    }
                }
            }
            let expected = b.build();

            let out = tmp(&format!("builder_eq_{directed}.lrwpak"));
            let opts = PackOptions {
                chunk_records: 16,
                ..PackOptions::default()
            };
            let dedup_in: Vec<_> = {
                let mut seen = std::collections::HashSet::new();
                edges
                    .iter()
                    .copied()
                    .filter(|&(u, v, _, _)| {
                        let fresh = seen.insert((u, v));
                        if fresh && !directed {
                            seen.insert((v, u));
                        }
                        fresh
                    })
                    .collect()
            };
            let st = pack_edge_stream(dedup_in, directed, 60, None, &out, &opts).unwrap();
            assert!(st.runs > 1, "expected spilled runs, got {}", st.runs);
            let loaded = load_packed(&out, LoadMode::Heap).unwrap();
            assert_eq!(loaded.graph, expected, "directed={directed}");
            // Prefix cumulatives must match the in-memory build too.
            for v in 0..expected.num_vertices() as u32 {
                assert_eq!(loaded.graph.static_prefix(v), expected.static_prefix(v));
                for r in 0..3 {
                    assert_eq!(
                        loaded.graph.relation_prefix(v, r),
                        expected.relation_prefix(v, r)
                    );
                }
            }
            no_temps_left(&out);
            std::fs::remove_file(&out).ok();
        }
    }

    #[test]
    fn duplicate_collapse_keeps_first_occurrence() {
        let records = vec![(0u32, 1u32, 5u32, 0u8), (0, 2, 1, 0), (0, 1, 9, 0)];
        let out = tmp("dups.lrwpak");
        let st = pack_edge_stream(records, true, 0, None, &out, &PackOptions::default()).unwrap();
        assert_eq!(st.duplicates, 1);
        assert_eq!(st.edges, 2);
        let g = load_packed(&out, LoadMode::Heap).unwrap().graph;
        assert_eq!(g.neighbor_weights(0), &[5, 1]); // first (0,1) wins
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn streamed_rmat_pack_is_bit_identical_to_in_memory_dataset() {
        for seed in [3u64, 11] {
            let expected = generators::rmat_dataset(7, seed);
            let out = tmp(&format!("rmat7_{seed}.lrwpak"));
            let opts = PackOptions {
                chunk_records: 500, // force external sorting
                ..PackOptions::default()
            };
            let st = pack_rmat_dataset(7, seed, &out, &opts).unwrap();
            assert_eq!(st.vertices, 1 << 7);
            assert_eq!(st.edges, expected.num_edges());
            let loaded = load_packed(&out, LoadMode::Auto).unwrap();
            assert_eq!(loaded.graph, expected);
            assert!(loaded.graph.has_prefix_cache());
            for v in 0..expected.num_vertices() as u32 {
                assert_eq!(loaded.graph.static_prefix(v), expected.static_prefix(v));
                for r in 0..2 {
                    assert_eq!(
                        loaded.graph.relation_prefix(v, r),
                        expected.relation_prefix(v, r)
                    );
                }
                assert_eq!(loaded.graph.vertex_label(v), expected.vertex_label(v));
            }
            std::fs::remove_file(&out).ok();
        }
    }

    #[test]
    fn relabeled_pack_matches_reorder_by_degree() {
        let seed = 5u64;
        let g = generators::rmat_dataset(7, seed);
        let (expected, map) = by_degree_descending(&g);
        let out = tmp("rmat7_relabel.lrwpak");
        let opts = PackOptions {
            relabel: true,
            chunk_records: 300,
            ..PackOptions::default()
        };
        pack_rmat_dataset(7, seed, &out, &opts).unwrap();
        let loaded = load_packed(&out, LoadMode::Auto).unwrap();
        assert_eq!(loaded.graph, expected);
        let lm = loaded.relabeling.expect("relabeling persisted");
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(lm.new_id(v), map.new_id(v));
            assert_eq!(lm.old_id(v), map.old_id(v));
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn pack_graph_convenience_roundtrips() {
        let mut g = generators::rmat_dataset(6, 9);
        let out = tmp("conv.lrwpak");
        let bytes = pack_graph(&mut g, false, &out).unwrap();
        assert_eq!(bytes, std::fs::metadata(&out).unwrap().len());
        assert_eq!(load_packed(&out, LoadMode::Auto).unwrap().graph, g);
        // And the relabeled flavor.
        let out2 = tmp("conv_rl.lrwpak");
        pack_graph(&mut g, true, &out2).unwrap();
        let loaded = load_packed(&out2, LoadMode::Auto).unwrap();
        let (expected, _) = by_degree_descending(&g);
        assert_eq!(loaded.graph, expected);
        assert!(loaded.relabeling.is_some());
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&out2).ok();
    }

    #[test]
    fn streamed_sharded_pack_matches_in_memory_partition() {
        let seed = 13u64;
        let expected = generators::rmat_dataset(7, seed);
        let mem = partition_graph(&expected, 4, ShardStrategy::Range);
        let out = tmp("rmat7_sharded.lrwpak");
        let opts = PackOptions {
            chunk_records: 400, // force external sorting
            shards: 4,
            ..PackOptions::default()
        };
        pack_rmat_dataset(7, seed, &out, &opts).unwrap();
        let loaded = crate::packed::load_packed_sharded(&out, LoadMode::Auto).unwrap();
        assert_eq!(loaded.meta.k(), 4);
        assert_eq!(loaded.meta.strategy, ShardStrategy::Range);
        assert_eq!(loaded.sharded.crossing_rate(), mem.crossing_rate());
        for (s, (ls, ms)) in loaded
            .sharded
            .shards
            .iter()
            .zip(mem.shards.iter())
            .enumerate()
        {
            assert_eq!(ls.owned_vertices, ms.owned_vertices, "shard {s}");
            assert_eq!(ls.owned_edges, ms.owned_edges, "shard {s}");
            assert_eq!(ls.boundary_edges, ms.boundary_edges, "shard {s}");
            assert_eq!(&ls.ghosts[..], &ms.ghosts[..], "shard {s}");
            for v in 0..expected.num_vertices() as u32 {
                assert_eq!(ls.graph.neighbors(v), ms.graph.neighbors(v), "shard {s}");
                assert_eq!(ls.graph.neighbor_weights(v), ms.graph.neighbor_weights(v));
            }
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn streamed_compressed_pack_is_equal_and_smaller() {
        let seed = 4u64;
        let expected = generators::rmat_dataset(7, seed);
        let out_c = tmp("rmat7_comp.lrwpak");
        let out_p = tmp("rmat7_plaincol.lrwpak");
        let comp = pack_rmat_dataset(
            7,
            seed,
            &out_c,
            &PackOptions {
                chunk_records: 300,
                compress: true,
                ..PackOptions::default()
            },
        )
        .unwrap();
        let plain = pack_rmat_dataset(
            7,
            seed,
            &out_p,
            &PackOptions {
                chunk_records: 300,
                ..PackOptions::default()
            },
        )
        .unwrap();
        assert!(
            comp.file_bytes < plain.file_bytes,
            "varint file ({}) not smaller than plain ({})",
            comp.file_bytes,
            plain.file_bytes
        );
        let loaded = load_packed(&out_c, LoadMode::Auto).unwrap();
        assert_eq!(loaded.graph, expected);
        std::fs::remove_file(&out_c).ok();
        std::fs::remove_file(&out_p).ok();
    }

    #[test]
    fn streamed_sharded_compressed_relabel_combine() {
        let seed = 8u64;
        let out = tmp("rmat6_combo.lrwpak");
        let opts = PackOptions {
            relabel: true,
            chunk_records: 200,
            shards: 2,
            compress: true,
            ..PackOptions::default()
        };
        pack_rmat_dataset(6, seed, &out, &opts).unwrap();
        let g = generators::rmat_dataset(6, seed);
        let (expected, _) = by_degree_descending(&g);
        let loaded = crate::packed::load_packed_sharded(&out, LoadMode::Heap).unwrap();
        assert!(loaded.relabeling.is_some());
        let mem = partition_graph(&expected, 2, ShardStrategy::Range);
        for (ls, ms) in loaded.sharded.shards.iter().zip(mem.shards.iter()) {
            assert_eq!(ls.boundary_edges, ms.boundary_edges);
            assert_eq!(&ls.ghosts[..], &ms.ghosts[..]);
            for v in 0..expected.num_vertices() as u32 {
                assert_eq!(ls.graph.neighbors(v), ms.graph.neighbors(v));
            }
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn pack_graph_with_fennel_partition_roundtrips() {
        let mut g = generators::rmat_dataset(6, 5);
        let out = tmp("conv_fennel.lrwpak");
        pack_graph_with(&mut g, false, 3, ShardStrategy::Fennel, false, &out).unwrap();
        let mem = partition_graph(&g, 3, ShardStrategy::Fennel);
        let loaded = crate::packed::load_packed_sharded(&out, LoadMode::Auto).unwrap();
        assert_eq!(loaded.meta.strategy, ShardStrategy::Fennel);
        for (ls, ms) in loaded.sharded.shards.iter().zip(mem.shards.iter()) {
            assert_eq!(ls.owned_edges, ms.owned_edges);
            for v in 0..g.num_vertices() as u32 {
                assert_eq!(ls.graph.neighbors(v), ms.graph.neighbors(v));
            }
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn empty_stream_packs_an_empty_graph() {
        let out = tmp("empty.lrwpak");
        let st =
            pack_edge_stream(Vec::new(), true, 4, None, &out, &PackOptions::default()).unwrap();
        assert_eq!((st.vertices, st.edges), (4, 0));
        let g = load_packed(&out, LoadMode::Heap).unwrap().graph;
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        std::fs::remove_file(&out).ok();
    }
}
