//! Graph construction from edge lists.

use crate::csr::{Graph, VertexId};
use lightrw_rng::{Rng, SplitMix64};

/// Builder for [`Graph`].
///
/// Collects edges (with optional per-edge weight and relation label),
/// then sorts, deduplicates and packs them into CSR. Undirected builders
/// mirror every edge with identical weight/label, matching the paper's
/// representation of undirected graphs as two directed edges (§2.1).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    directed: bool,
    min_vertices: usize,
    edges: Vec<(VertexId, VertexId, u32, u8)>,
    vertex_labels: Vec<u8>,
    prefix_cache: bool,
}

impl GraphBuilder {
    /// Start a directed graph.
    pub fn directed() -> Self {
        Self {
            directed: true,
            min_vertices: 0,
            edges: Vec::new(),
            vertex_labels: Vec::new(),
            prefix_cache: true,
        }
    }

    /// Start an undirected graph (every edge stored in both directions).
    pub fn undirected() -> Self {
        Self {
            directed: false,
            ..Self::directed()
        }
    }

    /// Ensure the graph has at least `n` vertices even if some are isolated.
    pub fn num_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Control whether [`GraphBuilder::build`] computes the static-weight
    /// prefix cache (on by default; see [`Graph::build_prefix_cache`] and
    /// DESIGN.md §5). Disable to save the 8 bytes/edge when no engine will
    /// run static-weight or metapath walks on the graph.
    pub fn prefix_cache(mut self, enabled: bool) -> Self {
        self.prefix_cache = enabled;
        self
    }

    /// Add one edge with unit weight and no relation label.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.push_edge(u, v, 1, 0);
        self
    }

    /// Add many unit-weight edges.
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, it: I) -> Self {
        for (u, v) in it {
            self.push_edge(u, v, 1, 0);
        }
        self
    }

    /// Add one weighted edge.
    pub fn weighted_edge(mut self, u: VertexId, v: VertexId, w: u32) -> Self {
        self.push_edge(u, v, w, 0);
        self
    }

    /// Add many weighted edges.
    pub fn weighted_edges<I: IntoIterator<Item = (VertexId, VertexId, u32)>>(
        mut self,
        it: I,
    ) -> Self {
        for (u, v, w) in it {
            self.push_edge(u, v, w, 0);
        }
        self
    }

    /// Add one fully attributed edge (weight + relation label).
    pub fn labeled_edge(mut self, u: VertexId, v: VertexId, w: u32, rel: u8) -> Self {
        self.push_edge(u, v, w, rel);
        self
    }

    /// In-place edge insertion (non-consuming; useful in loops).
    pub fn push_edge(&mut self, u: VertexId, v: VertexId, w: u32, rel: u8) {
        self.edges.push((u, v, w, rel));
        if !self.directed {
            self.edges.push((v, u, w, rel));
        }
    }

    /// Attach explicit vertex labels (`labels[v]` is `v`'s type).
    pub fn vertex_labels(mut self, labels: Vec<u8>) -> Self {
        self.vertex_labels = labels;
        self
    }

    /// Assign uniform-random edge weights in `[1, max_weight]` to all edges
    /// added *so far*, overriding their current weights. Mirrored halves of
    /// an undirected edge receive the same weight. This matches the paper's
    /// setup: "graph datasets are initialized with random edge weights"
    /// (§6.1.4).
    pub fn randomize_weights(mut self, max_weight: u32, seed: u64) -> Self {
        assert!(max_weight >= 1);
        // Deterministic per undirected pair: key on (min,max) so mirrored
        // entries agree regardless of insertion order.
        for e in &mut self.edges {
            let (a, b) = (e.0.min(e.1) as u64, e.0.max(e.1) as u64);
            let mut pair_rng = SplitMix64::new(rng_key(seed, a, b));
            e.2 = 1 + pair_rng.gen_range(max_weight as u64) as u32;
        }
        self
    }

    /// Assign uniform-random relation labels in `[0, num_relations)` to all
    /// edges added so far (mirrored halves agree), for MetaPath workloads.
    pub fn randomize_edge_labels(mut self, num_relations: u8, seed: u64) -> Self {
        assert!(num_relations >= 1);
        for e in &mut self.edges {
            let (a, b) = (e.0.min(e.1) as u64, e.0.max(e.1) as u64);
            let mut pair_rng = SplitMix64::new(rng_key(seed ^ 0xA5A5, a, b));
            e.3 = pair_rng.gen_range(num_relations as u64) as u8;
        }
        self
    }

    /// Assign uniform-random vertex labels in `[0, num_labels)`.
    pub fn randomize_vertex_labels(mut self, num_labels: u8, seed: u64) -> Self {
        assert!(num_labels >= 1);
        let n = self.vertex_count();
        let mut rng = SplitMix64::new(seed);
        self.vertex_labels = (0..n)
            .map(|_| rng.gen_range(num_labels as u64) as u8)
            .collect();
        self
    }

    fn vertex_count(&self) -> usize {
        let from_edges = self
            .edges
            .iter()
            .map(|&(u, v, _, _)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        from_edges
            .max(self.min_vertices)
            .max(self.vertex_labels.len())
    }

    /// Pack into CSR. Duplicate `(u,v)` edges are collapsed (first
    /// occurrence wins); self-loops are kept if present in the input.
    pub fn build(self) -> Graph {
        let n = self.vertex_count();
        let has_edge_labels = self.edges.iter().any(|e| e.3 != 0);
        let mut edges = self.edges;
        edges.sort_unstable_by_key(|&(u, v, _, _)| (u, v));
        edges.dedup_by_key(|&mut (u, v, _, _)| (u, v));

        let mut row_index = vec![0u64; n + 1];
        for &(u, _, _, _) in &edges {
            row_index[u as usize + 1] += 1;
        }
        for i in 0..n {
            row_index[i + 1] += row_index[i];
        }

        let mut col_index = Vec::with_capacity(edges.len());
        let mut weights = Vec::with_capacity(edges.len());
        let mut edge_labels = if has_edge_labels {
            Vec::with_capacity(edges.len())
        } else {
            Vec::new()
        };
        for (_, v, w, rel) in &edges {
            col_index.push(*v);
            weights.push(*w);
            if has_edge_labels {
                edge_labels.push(*rel);
            }
        }

        let mut vertex_labels = self.vertex_labels;
        if !vertex_labels.is_empty() {
            vertex_labels.resize(n, 0);
        }

        let mut g = Graph {
            row_index: row_index.into(),
            col_index: col_index.into(),
            weights: weights.into(),
            vertex_labels: vertex_labels.into(),
            edge_labels: edge_labels.into(),
            directed: self.directed,
            prefix: None,
        };
        if self.prefix_cache {
            g.build_prefix_cache();
        }
        debug_assert!(crate::validate::validate(&g).is_ok());
        g
    }
}

/// Stable mixing of (seed, a, b) into a per-pair RNG seed. Shared with
/// the streaming pack pipeline (`crate::pack`), which must reproduce the
/// builder's per-pair attribute draws without materializing the edges.
pub(crate) fn rng_key(seed: u64, a: u64, b: u64) -> u64 {
    use lightrw_rng::splitmix::mix64;
    mix64(seed ^ mix64(a.wrapping_mul(0x9E3779B97F4A7C15) ^ b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn duplicate_edges_collapse() {
        let g = GraphBuilder::directed()
            .edges([(0, 1), (0, 1), (0, 2)])
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = GraphBuilder::directed()
            .edges([(0, 5), (0, 1), (0, 3), (0, 2)])
            .build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 5]);
    }

    #[test]
    fn undirected_mirrors_weights() {
        let g = GraphBuilder::undirected()
            .weighted_edge(0, 1, 9)
            .weighted_edge(1, 2, 4)
            .build();
        assert_eq!(g.neighbor_weights(0), &[9]);
        assert_eq!(g.neighbor_weights(2), &[4]);
        // mirror of (0,1) at vertex 1
        let i = g.neighbors(1).iter().position(|&x| x == 0).unwrap();
        assert_eq!(g.neighbor_weights(1)[i], 9);
    }

    #[test]
    fn random_weights_mirror_consistently() {
        let g = GraphBuilder::undirected()
            .edges([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)])
            .randomize_weights(100, 42)
            .build();
        for u in 0..4u32 {
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                let wu = g.neighbor_weights(u)[i];
                let j = g.neighbors(v).iter().position(|&x| x == u).unwrap();
                let wv = g.neighbor_weights(v)[j];
                assert_eq!(wu, wv, "edge ({u},{v}) weight mismatch");
            }
        }
        // Weights in range and not all equal.
        let all: Vec<u32> = g.iter_edges().map(|(_, _, w)| w).collect();
        assert!(all.iter().all(|&w| (1..=100).contains(&w)));
        assert!(all.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn random_edge_labels_mirror_consistently() {
        let g = GraphBuilder::undirected()
            .edges([(0, 1), (1, 2), (0, 2)])
            .randomize_edge_labels(3, 7)
            .build();
        assert!(g.has_edge_labels());
        for u in 0..3u32 {
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                let ru = g.neighbor_relations(u)[i];
                let j = g.neighbors(v).iter().position(|&x| x == u).unwrap();
                assert_eq!(ru, g.neighbor_relations(v)[j]);
            }
        }
    }

    #[test]
    fn vertex_labels_padded_to_vertex_count() {
        let g = GraphBuilder::directed()
            .num_vertices(10)
            .edge(0, 1)
            .vertex_labels(vec![1, 2])
            .build();
        assert!(g.has_vertex_labels());
        assert_eq!(g.vertex_label(1), 2);
        assert_eq!(g.vertex_label(9), 0);
    }

    #[test]
    fn randomize_vertex_labels_in_range() {
        let g = GraphBuilder::directed()
            .num_vertices(100)
            .edge(0, 1)
            .randomize_vertex_labels(4, 3)
            .build();
        for v in 0..100u32 {
            assert!(g.vertex_label(v) < 4);
        }
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = GraphBuilder::directed().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn self_loops_are_kept() {
        let g = GraphBuilder::directed().edges([(1, 1), (1, 2)]).build();
        assert_eq!(g.neighbors(1), &[1, 2]);
    }

    #[test]
    fn built_graphs_validate() {
        let g = GraphBuilder::undirected()
            .edges([(0, 1), (4, 2), (3, 3), (1, 4)])
            .randomize_weights(10, 1)
            .randomize_edge_labels(2, 2)
            .randomize_vertex_labels(3, 3)
            .build();
        assert!(validate(&g).is_ok());
    }
}
