//! Compressed sparse row graph storage.

/// Vertex identifier. 32 bits, as in the paper's hardware (vertex ids and
/// edge targets travel over 32-bit lanes of the 512-bit memory bus).
pub type VertexId = u32;

/// Bytes per `row_index` entry as laid out in accelerator DRAM.
///
/// The Neighbor Info Loader fetches `{address, degree}` per vertex
/// (paper Fig. 5): a 32-bit offset plus a 32-bit degree.
pub const ROW_ENTRY_BYTES: u64 = 8;

/// Bytes per `col_index` entry as laid out in accelerator DRAM: a 32-bit
/// destination vertex plus a 32-bit packed attribute word (static weight
/// and relation label), which is what the Weight Updater consumes.
pub const COL_ENTRY_BYTES: u64 = 8;

/// An immutable CSR graph with optional vertex labels (MetaPath node
/// types) and edge relations (MetaPath edge types).
///
/// Invariants (checked by [`crate::validate::validate`], established by
/// [`crate::builder::GraphBuilder`]):
/// - `row_index.len() == num_vertices + 1`, monotone non-decreasing,
///   `row_index[0] == 0`, `row_index[V] == col_index.len()`;
/// - every destination in `col_index` is `< num_vertices`;
/// - each adjacency list is sorted by destination and duplicate-free;
/// - `weights.len() == col_index.len()`; label arrays, when present, are
///   aligned the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    pub(crate) row_index: Vec<u64>,
    pub(crate) col_index: Vec<VertexId>,
    /// Static edge weight w* (paper §2.1); 1 for unweighted graphs.
    pub(crate) weights: Vec<u32>,
    /// Vertex label L(v) for heterogeneous graphs (MetaPath). Empty if the
    /// graph is homogeneous.
    pub(crate) vertex_labels: Vec<u8>,
    /// Edge relation R(u,v) aligned with `col_index`. Empty if untyped.
    pub(crate) edge_labels: Vec<u8>,
    pub(crate) directed: bool,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_index.len() - 1
    }

    /// Number of *stored* directed edges (an undirected input edge counts
    /// twice, as in the paper's representation).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_index.len()
    }

    /// Whether the graph was built as directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        let v = v as usize;
        (self.row_index[v + 1] - self.row_index[v]) as u32
    }

    /// Start offset of `v`'s adjacency list in `col_index`.
    #[inline]
    pub fn neighbor_offset(&self, v: VertexId) -> u64 {
        self.row_index[v as usize]
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.col_index[self.row_index[v] as usize..self.row_index[v + 1] as usize]
    }

    /// Static weights aligned with [`Graph::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[u32] {
        let v = v as usize;
        &self.weights[self.row_index[v] as usize..self.row_index[v + 1] as usize]
    }

    /// Edge relations aligned with [`Graph::neighbors`]; empty slice if the
    /// graph has no edge labels.
    #[inline]
    pub fn neighbor_relations(&self, v: VertexId) -> &[u8] {
        if self.edge_labels.is_empty() {
            return &[];
        }
        let v = v as usize;
        &self.edge_labels[self.row_index[v] as usize..self.row_index[v + 1] as usize]
    }

    /// Label of vertex `v`; 0 when the graph is unlabeled.
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> u8 {
        if self.vertex_labels.is_empty() {
            0
        } else {
            self.vertex_labels[v as usize]
        }
    }

    /// Whether the graph carries vertex labels.
    #[inline]
    pub fn has_vertex_labels(&self) -> bool {
        !self.vertex_labels.is_empty()
    }

    /// Whether the graph carries edge relations.
    #[inline]
    pub fn has_edge_labels(&self) -> bool {
        !self.edge_labels.is_empty()
    }

    /// Edge-existence test via binary search over the sorted adjacency of
    /// `u`. This is the membership probe Node2Vec's weight update needs
    /// (`(a_{t-1}, b) ∈ E`, paper Eq. 2b).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Average degree |E|/|V|.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Vertices with non-zero out-degree, in id order. The paper's query
    /// sets use one query per such vertex (§6.1.4).
    pub fn non_isolated_vertices(&self) -> Vec<VertexId> {
        (0..self.num_vertices() as VertexId)
            .filter(|&v| self.degree(v) > 0)
            .collect()
    }

    /// Iterate all stored directed edges as `(src, dst, weight)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, u32)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .zip(self.neighbor_weights(u))
                .map(move |(&v, &w)| (u, v, w))
        })
    }

    // ------------------------------------------------------------------
    // Accelerator address model (consumed by lightrw-memsim / hwsim)
    // ------------------------------------------------------------------

    /// Byte address of `v`'s `row_index` entry in accelerator DRAM.
    ///
    /// The CSR arrays are laid out back to back starting at address 0:
    /// `row_index` first, then `col_index`.
    #[inline]
    pub fn row_entry_addr(&self, v: VertexId) -> u64 {
        v as u64 * ROW_ENTRY_BYTES
    }

    /// Byte address where the `col_index` region starts.
    #[inline]
    pub fn col_region_base(&self) -> u64 {
        (self.num_vertices() as u64 + 1) * ROW_ENTRY_BYTES
    }

    /// Byte address of `v`'s adjacency list in accelerator DRAM.
    #[inline]
    pub fn col_entry_addr(&self, v: VertexId) -> u64 {
        self.col_region_base() + self.neighbor_offset(v) * COL_ENTRY_BYTES
    }

    /// Bytes occupied by `v`'s adjacency list in accelerator DRAM — the `c`
    /// of the dynamic burst split (paper §5.2).
    #[inline]
    pub fn neighbor_bytes(&self, v: VertexId) -> u64 {
        self.degree(v) as u64 * COL_ENTRY_BYTES
    }

    /// Total bytes of the CSR image (what the host pushes over PCIe before
    /// invoking the accelerator — Table 4's transfer volume).
    pub fn csr_bytes(&self) -> u64 {
        self.col_region_base() + self.num_edges() as u64 * COL_ENTRY_BYTES
    }

    /// Direct access to the raw offsets array (read-only).
    #[inline]
    pub fn row_index(&self) -> &[u64] {
        &self.row_index
    }

    /// Direct access to the raw adjacency array (read-only).
    #[inline]
    pub fn col_index(&self) -> &[VertexId] {
        &self.col_index
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle() -> crate::Graph {
        // 0-1, 1-2, 0-2 undirected.
        GraphBuilder::undirected()
            .edges([(0, 1), (1, 2), (0, 2)])
            .build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6); // doubled
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(!g.is_directed());
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn has_edge_both_ways_in_undirected() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn directed_edges_are_one_way() {
        let g = GraphBuilder::directed().edges([(0, 1), (1, 2)]).build();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn address_model_layout() {
        let g = triangle();
        assert_eq!(g.row_entry_addr(0), 0);
        assert_eq!(g.row_entry_addr(2), 16);
        // 4 row entries (V+1) of 8 bytes before col region.
        assert_eq!(g.col_region_base(), 32);
        assert_eq!(g.col_entry_addr(0), 32);
        assert_eq!(g.col_entry_addr(1), 32 + 2 * 8);
        assert_eq!(g.neighbor_bytes(0), 16);
        assert_eq!(g.csr_bytes(), 32 + 6 * 8);
    }

    #[test]
    fn non_isolated_skips_zero_degree() {
        let g = GraphBuilder::directed()
            .num_vertices(5)
            .edges([(0, 1), (3, 4)])
            .build();
        assert_eq!(g.non_isolated_vertices(), vec![0, 3]);
    }

    #[test]
    fn iter_edges_yields_all() {
        let g = triangle();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(0, 1, 1)));
        assert!(edges.contains(&(2, 0, 1)));
    }

    #[test]
    fn unlabeled_graph_reports_zero_labels() {
        let g = triangle();
        assert!(!g.has_vertex_labels());
        assert!(!g.has_edge_labels());
        assert_eq!(g.vertex_label(1), 0);
        assert!(g.neighbor_relations(0).is_empty());
    }
}
