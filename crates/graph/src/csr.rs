//! Compressed sparse row graph storage.
//!
//! Every array lives in a [`Section`](crate::store::Section): owned heap
//! memory when built in process, or a borrowed window of a memory-mapped
//! packed file (see `crate::packed` and DESIGN.md §10). Accessors return
//! plain slices either way.

use crate::store::Section;

/// Vertex identifier. 32 bits, as in the paper's hardware (vertex ids and
/// edge targets travel over 32-bit lanes of the 512-bit memory bus).
pub type VertexId = u32;

/// Bytes per `row_index` entry as laid out in accelerator DRAM.
///
/// The Neighbor Info Loader fetches `{address, degree}` per vertex
/// (paper Fig. 5): a 32-bit offset plus a 32-bit degree.
pub const ROW_ENTRY_BYTES: u64 = 8;

/// Bytes per `col_index` entry as laid out in accelerator DRAM: a 32-bit
/// destination vertex plus a 32-bit packed attribute word (static weight
/// and relation label), which is what the Weight Updater consumes.
pub const COL_ENTRY_BYTES: u64 = 8;

/// Largest static weight the prefix cache accepts.
///
/// Engines promote static weights to fixed point by shifting left 16 bits
/// (`FX_FRAC_BITS` in `lightrw-walker`); the cached cumulative sums are
/// over *raw* statics and must stay exact under that promotion, so the
/// cache is only built when every weight fits in 16 bits (`w << 16` never
/// wraps the `u32` dynamic weight).
pub const MAX_PREFIX_STATIC_WEIGHT: u32 = (1 << 16) - 1;

/// Most *distinct* edge-relation labels the per-relation prefix cache
/// will materialize (one cumulative array per used label, each |E|
/// entries). The paper's metapaths use ≤ 5 relations; graphs with more
/// distinct labels fall back to the streaming path.
pub const MAX_CACHED_RELATIONS: usize = 8;

/// Precomputed per-vertex inclusive cumulative static weights — the
/// static-weight prefix cache of DESIGN.md §5.
///
/// `all[e]` is the running sum of `weights` over the owning vertex's
/// adjacency list (restarting at each vertex), so static-weight inverse
/// transform sampling is a binary search instead of a per-step O(d)
/// accumulation. `per_relation[r]` holds the same layout with weights of
/// edges whose relation ≠ `r` zeroed — the MetaPath fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PrefixCache {
    pub(crate) all: Section<u64>,
    pub(crate) per_relation: Vec<Section<u64>>,
}

/// All per-neighbor CSR lanes of one vertex, fetched with a single
/// `row_index` read — the software analogue of the 512-bit `{dst, weight,
/// relation}` words the accelerator's Neighbor Loader streams (Fig. 5).
#[derive(Debug, Clone, Copy)]
pub struct NeighborView<'g> {
    /// Destination vertices, sorted ascending.
    pub targets: &'g [VertexId],
    /// Static weights aligned with `targets`.
    pub weights: &'g [u32],
    /// Edge relations aligned with `targets`; empty when the graph is
    /// untyped (use [`NeighborView::relation`] for the 0-default).
    pub relations: &'g [u8],
}

impl<'g> NeighborView<'g> {
    /// Number of candidates (the vertex's out-degree).
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the vertex has no out-edges (dead end).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Relation label of candidate `i`; 0 when the graph is untyped.
    #[inline]
    pub fn relation(&self, i: usize) -> u8 {
        if self.relations.is_empty() {
            0
        } else {
            self.relations[i]
        }
    }
}

/// An immutable CSR graph with optional vertex labels (MetaPath node
/// types) and edge relations (MetaPath edge types).
///
/// Invariants (checked by [`crate::validate::validate`], established by
/// [`crate::builder::GraphBuilder`]):
/// - `row_index.len() == num_vertices + 1`, monotone non-decreasing,
///   `row_index[0] == 0`, `row_index[V] == col_index.len()`;
/// - every destination in `col_index` is `< num_vertices`;
/// - each adjacency list is sorted by destination and duplicate-free;
/// - `weights.len() == col_index.len()`; label arrays, when present, are
///   aligned the same way.
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) row_index: Section<u64>,
    pub(crate) col_index: Section<VertexId>,
    /// Static edge weight w* (paper §2.1); 1 for unweighted graphs.
    pub(crate) weights: Section<u32>,
    /// Vertex label L(v) for heterogeneous graphs (MetaPath). Empty if the
    /// graph is homogeneous.
    pub(crate) vertex_labels: Section<u8>,
    /// Edge relation R(u,v) aligned with `col_index`. Empty if untyped.
    pub(crate) edge_labels: Section<u8>,
    pub(crate) directed: bool,
    /// Optional static-weight prefix cache (derived data; excluded from
    /// equality — see the manual `PartialEq` below).
    pub(crate) prefix: Option<PrefixCache>,
}

/// Structural equality only: the prefix cache is derived data, so two
/// graphs with identical CSR content compare equal whether or not either
/// carries the cache.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.row_index == other.row_index
            && self.col_index == other.col_index
            && self.weights == other.weights
            && self.vertex_labels == other.vertex_labels
            && self.edge_labels == other.edge_labels
            && self.directed == other.directed
    }
}

impl Eq for Graph {}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_index.len() - 1
    }

    /// Number of *stored* directed edges (an undirected input edge counts
    /// twice, as in the paper's representation).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_index.len()
    }

    /// Whether the graph was built as directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        let v = v as usize;
        (self.row_index[v + 1] - self.row_index[v]) as u32
    }

    /// Start offset of `v`'s adjacency list in `col_index`.
    #[inline]
    pub fn neighbor_offset(&self, v: VertexId) -> u64 {
        self.row_index[v as usize]
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.col_index[self.row_index[v] as usize..self.row_index[v + 1] as usize]
    }

    /// Static weights aligned with [`Graph::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[u32] {
        let v = v as usize;
        &self.weights[self.row_index[v] as usize..self.row_index[v + 1] as usize]
    }

    /// Edge relations aligned with [`Graph::neighbors`]; empty slice if the
    /// graph has no edge labels.
    #[inline]
    pub fn neighbor_relations(&self, v: VertexId) -> &[u8] {
        if self.edge_labels.is_empty() {
            return &[];
        }
        let v = v as usize;
        &self.edge_labels[self.row_index[v] as usize..self.row_index[v + 1] as usize]
    }

    /// Label of vertex `v`; 0 when the graph is unlabeled.
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> u8 {
        if self.vertex_labels.is_empty() {
            0
        } else {
            self.vertex_labels[v as usize]
        }
    }

    /// Whether the graph carries vertex labels.
    #[inline]
    pub fn has_vertex_labels(&self) -> bool {
        !self.vertex_labels.is_empty()
    }

    /// Whether the graph carries edge relations.
    #[inline]
    pub fn has_edge_labels(&self) -> bool {
        !self.edge_labels.is_empty()
    }

    /// All CSR lanes of `v`'s adjacency with one `row_index` read.
    #[inline]
    pub fn neighbor_view(&self, v: VertexId) -> NeighborView<'_> {
        let v = v as usize;
        let lo = self.row_index[v] as usize;
        let hi = self.row_index[v + 1] as usize;
        NeighborView {
            targets: &self.col_index[lo..hi],
            weights: &self.weights[lo..hi],
            relations: if self.edge_labels.is_empty() {
                &[]
            } else {
                &self.edge_labels[lo..hi]
            },
        }
    }

    // ------------------------------------------------------------------
    // Static-weight prefix cache (DESIGN.md §5)
    // ------------------------------------------------------------------

    /// Whether the static-weight prefix cache is present.
    #[inline]
    pub fn has_prefix_cache(&self) -> bool {
        self.prefix.is_some()
    }

    /// Inclusive cumulative static weights over `v`'s adjacency list, for
    /// binary-search (inverse-transform) sampling of static-weight walks.
    /// `None` when the cache was not built (see
    /// [`Graph::build_prefix_cache`]).
    #[inline]
    pub fn static_prefix(&self, v: VertexId) -> Option<&[u64]> {
        let cache = self.prefix.as_ref()?;
        let v = v as usize;
        Some(&cache.all[self.row_index[v] as usize..self.row_index[v + 1] as usize])
    }

    /// Like [`Graph::static_prefix`], but with weights of edges whose
    /// relation ≠ `rel` zeroed — the MetaPath per-relation cumulative.
    /// `None` when unavailable (no cache, label set too large, or `rel`
    /// absent from the graph); callers fall back to the streaming path,
    /// which yields the same selection.
    #[inline]
    pub fn relation_prefix(&self, v: VertexId, rel: u8) -> Option<&[u64]> {
        let cache = self.prefix.as_ref()?;
        if self.edge_labels.is_empty() {
            // Untyped graphs carry the implicit relation 0 on every edge.
            return if rel == 0 {
                self.static_prefix(v)
            } else {
                None
            };
        }
        let cum = cache.per_relation.get(rel as usize)?;
        if cum.is_empty() {
            return None; // label unused by the graph, or label set too large
        }
        let v = v as usize;
        Some(&cum[self.row_index[v] as usize..self.row_index[v + 1] as usize])
    }

    /// Build the static-weight prefix cache: one O(|E|) pass, typically
    /// done right after construction. No-op when the cache is already
    /// present — in particular, packed graphs (`crate::packed`) arrive
    /// with the cumulative arrays precomputed into the file, so loading
    /// them never re-materializes the cache on the heap. Also a no-op
    /// (cache stays absent) when any weight exceeds
    /// [`MAX_PREFIX_STATIC_WEIGHT`], because the engines' 16-bit
    /// fixed-point promotion would wrap and the cached sums would no
    /// longer match the streaming path bit for bit.
    pub fn build_prefix_cache(&mut self) {
        if self.prefix.is_some() {
            return;
        }
        if self.weights.iter().any(|&w| w > MAX_PREFIX_STATIC_WEIGHT) {
            self.prefix = None;
            return;
        }
        let n = self.num_vertices();
        let mut all = Vec::with_capacity(self.col_index.len());
        for v in 0..n {
            let (lo, hi) = (self.row_index[v] as usize, self.row_index[v + 1] as usize);
            let mut acc = 0u64;
            for e in lo..hi {
                acc += self.weights[e] as u64;
                all.push(acc);
            }
        }
        // Per-relation copies: only for labels the graph actually uses, and
        // only when there are few enough *distinct* labels (dense |E|-entry
        // arrays per label are the cost being bounded). Unused label slots
        // stay empty so `relation_prefix` can reject them cheaply.
        let mut label_used = [false; 256];
        for &r in self.edge_labels.iter() {
            label_used[r as usize] = true;
        }
        let distinct = label_used.iter().filter(|&&u| u).count();
        let per_relation = match self.edge_labels.iter().copied().max() {
            Some(max) if distinct <= MAX_CACHED_RELATIONS => (0..=max)
                .map(|r| {
                    if !label_used[r as usize] {
                        return Section::default();
                    }
                    let mut cum = Vec::with_capacity(self.col_index.len());
                    for v in 0..n {
                        let (lo, hi) = (self.row_index[v] as usize, self.row_index[v + 1] as usize);
                        let mut acc = 0u64;
                        for e in lo..hi {
                            if self.edge_labels[e] == r {
                                acc += self.weights[e] as u64;
                            }
                            cum.push(acc);
                        }
                    }
                    cum.into()
                })
                .collect(),
            _ => Vec::new(),
        };
        self.prefix = Some(PrefixCache {
            all: all.into(),
            per_relation,
        });
    }

    /// Whether any CSR section borrows a mapped (or heap-fallback) file
    /// region instead of owning its memory — true for graphs loaded via
    /// `crate::packed`.
    pub fn is_out_of_core(&self) -> bool {
        self.row_index.is_borrowed() || self.col_index.is_borrowed()
    }

    /// Drop the prefix cache (memory back, engines take the streaming
    /// path; sampled walks are unchanged — see DESIGN.md §5).
    pub fn drop_prefix_cache(&mut self) {
        self.prefix = None;
    }

    /// Edge-existence test via binary search over the sorted adjacency of
    /// `u`. This is the membership probe Node2Vec's weight update needs
    /// (`(a_{t-1}, b) ∈ E`, paper Eq. 2b).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Average degree |E|/|V|.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Vertices with non-zero out-degree, in id order. The paper's query
    /// sets use one query per such vertex (§6.1.4).
    pub fn non_isolated_vertices(&self) -> Vec<VertexId> {
        (0..self.num_vertices() as VertexId)
            .filter(|&v| self.degree(v) > 0)
            .collect()
    }

    /// Iterate all stored directed edges as `(src, dst, weight)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, u32)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .zip(self.neighbor_weights(u))
                .map(move |(&v, &w)| (u, v, w))
        })
    }

    // ------------------------------------------------------------------
    // Accelerator address model (consumed by lightrw-memsim / hwsim)
    // ------------------------------------------------------------------

    /// Byte address of `v`'s `row_index` entry in accelerator DRAM.
    ///
    /// The CSR arrays are laid out back to back starting at address 0:
    /// `row_index` first, then `col_index`.
    #[inline]
    pub fn row_entry_addr(&self, v: VertexId) -> u64 {
        v as u64 * ROW_ENTRY_BYTES
    }

    /// Byte address where the `col_index` region starts.
    #[inline]
    pub fn col_region_base(&self) -> u64 {
        (self.num_vertices() as u64 + 1) * ROW_ENTRY_BYTES
    }

    /// Byte address of `v`'s adjacency list in accelerator DRAM.
    #[inline]
    pub fn col_entry_addr(&self, v: VertexId) -> u64 {
        self.col_region_base() + self.neighbor_offset(v) * COL_ENTRY_BYTES
    }

    /// Bytes occupied by `v`'s adjacency list in accelerator DRAM — the `c`
    /// of the dynamic burst split (paper §5.2).
    #[inline]
    pub fn neighbor_bytes(&self, v: VertexId) -> u64 {
        self.degree(v) as u64 * COL_ENTRY_BYTES
    }

    /// Total bytes of the CSR image (what the host pushes over PCIe before
    /// invoking the accelerator — Table 4's transfer volume).
    pub fn csr_bytes(&self) -> u64 {
        self.col_region_base() + self.num_edges() as u64 * COL_ENTRY_BYTES
    }

    /// Direct access to the raw offsets array (read-only).
    #[inline]
    pub fn row_index(&self) -> &[u64] {
        &self.row_index
    }

    /// Direct access to the raw adjacency array (read-only).
    #[inline]
    pub fn col_index(&self) -> &[VertexId] {
        &self.col_index
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle() -> crate::Graph {
        // 0-1, 1-2, 0-2 undirected.
        GraphBuilder::undirected()
            .edges([(0, 1), (1, 2), (0, 2)])
            .build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6); // doubled
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(!g.is_directed());
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn has_edge_both_ways_in_undirected() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn directed_edges_are_one_way() {
        let g = GraphBuilder::directed().edges([(0, 1), (1, 2)]).build();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn address_model_layout() {
        let g = triangle();
        assert_eq!(g.row_entry_addr(0), 0);
        assert_eq!(g.row_entry_addr(2), 16);
        // 4 row entries (V+1) of 8 bytes before col region.
        assert_eq!(g.col_region_base(), 32);
        assert_eq!(g.col_entry_addr(0), 32);
        assert_eq!(g.col_entry_addr(1), 32 + 2 * 8);
        assert_eq!(g.neighbor_bytes(0), 16);
        assert_eq!(g.csr_bytes(), 32 + 6 * 8);
    }

    #[test]
    fn non_isolated_skips_zero_degree() {
        let g = GraphBuilder::directed()
            .num_vertices(5)
            .edges([(0, 1), (3, 4)])
            .build();
        assert_eq!(g.non_isolated_vertices(), vec![0, 3]);
    }

    #[test]
    fn iter_edges_yields_all() {
        let g = triangle();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(0, 1, 1)));
        assert!(edges.contains(&(2, 0, 1)));
    }

    #[test]
    fn neighbor_view_matches_lane_accessors() {
        let g = crate::GraphBuilder::undirected()
            .labeled_edge(0, 1, 3, 1)
            .labeled_edge(0, 2, 5, 2)
            .labeled_edge(1, 2, 7, 1)
            .build();
        for v in 0..3u32 {
            let view = g.neighbor_view(v);
            assert_eq!(view.targets, g.neighbors(v));
            assert_eq!(view.weights, g.neighbor_weights(v));
            assert_eq!(view.relations, g.neighbor_relations(v));
            assert_eq!(view.len(), g.degree(v) as usize);
        }
        // Untyped graphs report relation 0 through the view.
        let u = triangle();
        assert!(u.neighbor_view(0).relations.is_empty());
        assert_eq!(u.neighbor_view(0).relation(1), 0);
    }

    #[test]
    fn static_prefix_is_per_vertex_cumulative() {
        let g = crate::GraphBuilder::directed()
            .weighted_edges([(0, 1, 2), (0, 2, 3), (1, 2, 5)])
            .num_vertices(3)
            .build();
        assert!(g.has_prefix_cache());
        assert_eq!(g.static_prefix(0).unwrap(), &[2, 5]);
        assert_eq!(g.static_prefix(1).unwrap(), &[5]); // restarts per vertex
        assert_eq!(g.static_prefix(2).unwrap(), &[] as &[u64]);
    }

    #[test]
    fn relation_prefix_masks_other_relations() {
        let g = crate::GraphBuilder::directed()
            .labeled_edge(0, 1, 2, 0)
            .labeled_edge(0, 2, 3, 1)
            .labeled_edge(0, 3, 5, 0)
            .num_vertices(4)
            .build();
        assert_eq!(g.relation_prefix(0, 0).unwrap(), &[2, 2, 7]);
        assert_eq!(g.relation_prefix(0, 1).unwrap(), &[0, 3, 3]);
        // A relation the graph never uses is not cached.
        assert!(g.relation_prefix(0, 9).is_none());
    }

    #[test]
    fn sparse_label_values_are_cached_by_distinct_count() {
        // Labels {0, 9}: only two distinct relations, so both are cached
        // even though the max label value exceeds MAX_CACHED_RELATIONS;
        // the 8 unused slots in between stay empty.
        let g = crate::GraphBuilder::directed()
            .labeled_edge(0, 1, 2, 0)
            .labeled_edge(0, 2, 3, 9)
            .num_vertices(3)
            .build();
        assert_eq!(g.relation_prefix(0, 0).unwrap(), &[2, 2]);
        assert_eq!(g.relation_prefix(0, 9).unwrap(), &[0, 3]);
        assert!(g.relation_prefix(0, 4).is_none());
        assert!(crate::validate::validate(&g).is_ok());
    }

    #[test]
    fn too_many_distinct_labels_skip_per_relation_cache() {
        let mut b = crate::GraphBuilder::directed().num_vertices(12);
        for r in 0..9u8 {
            b = b.labeled_edge(0, r as u32 + 1, 1, r);
        }
        let g = b.build();
        assert!(g.has_prefix_cache()); // the all-weights cumulative still exists
        assert!(g.static_prefix(0).is_some());
        assert!(g.relation_prefix(0, 0).is_none()); // 9 distinct > MAX (8)
    }

    #[test]
    fn untyped_graph_relation_zero_aliases_static_prefix() {
        let g = triangle();
        assert_eq!(g.relation_prefix(0, 0), g.static_prefix(0));
        assert!(g.relation_prefix(0, 1).is_none());
    }

    #[test]
    fn oversized_weights_skip_the_cache() {
        let g = crate::GraphBuilder::directed()
            .weighted_edge(0, 1, 1 << 16) // would wrap under the fixed-point promote
            .build();
        assert!(!g.has_prefix_cache());
        assert!(g.static_prefix(0).is_none());
        assert!(g.relation_prefix(0, 0).is_none());
    }

    #[test]
    fn cache_can_be_dropped_and_rebuilt() {
        let mut g = triangle();
        assert!(g.has_prefix_cache());
        g.drop_prefix_cache();
        assert!(g.static_prefix(0).is_none());
        g.build_prefix_cache();
        assert_eq!(g.static_prefix(0).unwrap(), &[1, 2]);
    }

    #[test]
    fn equality_ignores_the_cache() {
        let with = triangle();
        let mut without = triangle();
        without.drop_prefix_cache();
        assert_eq!(with, without);
    }

    #[test]
    fn unlabeled_graph_reports_zero_labels() {
        let g = triangle();
        assert!(!g.has_vertex_labels());
        assert!(!g.has_edge_labels());
        assert_eq!(g.vertex_label(1), 0);
        assert!(g.neighbor_relations(0).is_empty());
    }
}
