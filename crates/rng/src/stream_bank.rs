//! The k-lane stream bank: ThundeRiNG's shape in software.
//!
//! Hardware picture (paper Fig. 4): one shared state generator feeds `k`
//! decorrelators `R1..Rk`; each clock cycle the WRS Sampler receives one
//! fresh 32-bit uniform per lane. [`StreamBank::next_row`] is that cycle.

use crate::{Decorrelator, Mcg64};

/// A bank of `k` independent uniform streams sharing one state sequence.
#[derive(Debug, Clone)]
pub struct StreamBank {
    shared: Mcg64,
    lanes: Vec<Decorrelator>,
    /// Number of rows generated so far (diagnostics; one row per "cycle").
    rows: u64,
}

impl StreamBank {
    /// Create a bank with `k` lanes.
    pub fn new(seed: u64, k: usize) -> Self {
        assert!(k > 0, "StreamBank requires at least one lane");
        Self {
            shared: Mcg64::new(seed),
            lanes: (0..k).map(|i| Decorrelator::for_lane(seed, i)).collect(),
            rows: 0,
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn k(&self) -> usize {
        self.lanes.len()
    }

    /// Rows generated so far.
    #[inline]
    pub fn rows_generated(&self) -> u64 {
        self.rows
    }

    /// Generate one row: advance the shared state once, write one 32-bit
    /// uniform per lane into `out`.
    ///
    /// `out.len()` may be shorter than `k` (the tail batch of a neighbor
    /// list uses fewer lanes); it must not be longer.
    #[inline]
    pub fn next_row(&mut self, out: &mut [u32]) {
        assert!(out.len() <= self.lanes.len(), "row wider than bank");
        let s = self.shared.next_state();
        for (o, lane) in out.iter_mut().zip(&self.lanes) {
            *o = lane.apply_u32(s);
        }
        self.rows += 1;
    }

    /// Generate one row of `f64` uniforms in `[0,1)` (reference-model use).
    #[inline]
    pub fn next_row_f64(&mut self, out: &mut [f64]) {
        assert!(out.len() <= self.lanes.len(), "row wider than bank");
        let s = self.shared.next_state();
        for (o, lane) in out.iter_mut().zip(&self.lanes) {
            *o = lane.apply(s) as f64 * (1.0 / (u64::MAX as f64 + 1.0));
        }
        self.rows += 1;
    }

    /// Capture the bank's stream position as `(shared_state, rows)`.
    ///
    /// The decorrelator lanes are pure functions of the construction seed
    /// and lane index, so this pair (plus the seed) fully determines the
    /// bank: hand-off serialization (DESIGN.md §11) carries it across
    /// shards and restores with [`StreamBank::restore_stream`].
    #[inline]
    pub fn stream_state(&self) -> (u64, u64) {
        (self.shared.state(), self.rows)
    }

    /// Resume the stream captured by [`StreamBank::stream_state`] on a
    /// bank built with [`StreamBank::new`] from the *same* seed (the
    /// lanes are seed-derived and are not part of the capture).
    #[inline]
    pub fn restore_stream(&mut self, state: u64, rows: u64) {
        self.shared.set_state(state);
        self.rows = rows;
    }

    /// Draw a single value from one lane, advancing the shared state.
    ///
    /// Convenience for scalar consumers (e.g. the sequential WRS reference
    /// sampler); costs a full row like hardware would.
    #[inline]
    pub fn next_u32_lane(&mut self, lane: usize) -> u32 {
        let s = self.shared.next_state();
        self.rows += 1;
        self.lanes[lane].apply_u32(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn row_width_matches_k() {
        let mut bank = StreamBank::new(1, 8);
        let mut row = [0u32; 8];
        bank.next_row(&mut row);
        assert_eq!(bank.k(), 8);
        assert_eq!(bank.rows_generated(), 1);
    }

    #[test]
    #[should_panic(expected = "row wider than bank")]
    fn too_wide_row_panics() {
        let mut bank = StreamBank::new(1, 2);
        let mut row = [0u32; 3];
        bank.next_row(&mut row);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StreamBank::new(77, 4);
        let mut b = StreamBank::new(77, 4);
        let (mut ra, mut rb) = ([0u32; 4], [0u32; 4]);
        for _ in 0..100 {
            a.next_row(&mut ra);
            b.next_row(&mut rb);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn partial_row_prefix_matches_full_row() {
        // A tail batch (fewer items than k) must see the same lane values
        // as a full row would — the hardware lanes are position-fixed.
        let mut a = StreamBank::new(5, 8);
        let mut b = StreamBank::new(5, 8);
        let mut full = [0u32; 8];
        let mut part = [0u32; 3];
        a.next_row(&mut full);
        b.next_row(&mut part);
        assert_eq!(&full[..3], &part[..]);
    }

    #[test]
    fn lanes_pairwise_uncorrelated() {
        let k = 8;
        let n = 4096;
        let mut bank = StreamBank::new(2024, k);
        let mut cols: Vec<Vec<f64>> = (0..k).map(|_| Vec::with_capacity(n)).collect();
        let mut row = vec![0u32; k];
        for _ in 0..n {
            bank.next_row(&mut row);
            for (c, &v) in cols.iter_mut().zip(&row) {
                c.push(v as f64 / u32::MAX as f64);
            }
        }
        for i in 0..k {
            for j in i + 1..k {
                let r = stats::pearson(&cols[i], &cols[j]);
                assert!(r.abs() < 0.06, "lanes {i},{j} correlation {r}");
            }
        }
    }

    #[test]
    fn each_lane_uniform() {
        let k = 4;
        let n = 50_000;
        let mut bank = StreamBank::new(31, k);
        let mut cols: Vec<Vec<f64>> = (0..k).map(|_| Vec::with_capacity(n)).collect();
        let mut row = vec![0u32; k];
        for _ in 0..n {
            bank.next_row(&mut row);
            for (c, &v) in cols.iter_mut().zip(&row) {
                c.push(v as f64 / (u32::MAX as f64 + 1.0));
            }
        }
        for (i, c) in cols.iter().enumerate() {
            let chi2 = stats::chi_square_uniform(c, 32);
            // 31 dof, 99.9th pct ≈ 62.5; deterministic seed so no flake.
            assert!(chi2 < 70.0, "lane {i} chi-square {chi2}");
        }
    }

    #[test]
    fn lane_serial_autocorrelation_low() {
        let mut bank = StreamBank::new(8, 2);
        let mut xs = Vec::with_capacity(8192);
        let mut row = [0u32; 2];
        for _ in 0..8192 {
            bank.next_row(&mut row);
            xs.push(row[0] as f64 / u32::MAX as f64);
        }
        for lag in [1, 2, 7] {
            let r = stats::autocorrelation(&xs, lag);
            assert!(r.abs() < 0.05, "lag {lag} autocorrelation {r}");
        }
    }

    #[test]
    fn f64_rows_in_unit_interval() {
        let mut bank = StreamBank::new(3, 4);
        let mut row = [0f64; 4];
        for _ in 0..1000 {
            bank.next_row_f64(&mut row);
            for &x in &row {
                assert!((0.0..1.0).contains(&x));
            }
        }
    }
}
