//! SplitMix64: the workspace's scalar utility generator.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is a tiny counter-based
//! generator with excellent avalanche behaviour. We use it for seed
//! expansion (deriving many independent seeds from one), for workload
//! generation (edge weights, labels, query shuffling) and anywhere a
//! single stream of random numbers is enough. The hardware-shaped
//! multi-stream generator lives in [`crate::StreamBank`].

use crate::Rng;

/// Golden-ratio increment of the SplitMix64 Weyl sequence.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer: a 64-bit bijective avalanche mix.
///
/// Exposed publicly because the per-stream decorrelators reuse it as their
/// output permutation (see [`crate::Decorrelator`]).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 generator: counter + finalizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive `n` well-separated child seeds from this generator.
    ///
    /// Used to give every component of an experiment (graph generator,
    /// query shuffler, each accelerator instance, ...) its own stream.
    pub fn derive_seeds(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }

    /// Split off an independent child generator.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// The raw Weyl-sequence state. Together with [`SplitMix64::new`]
    /// (which installs a state verbatim) this makes the generator
    /// serializable: a walker handed off between shards carries
    /// `state()` and the receiver resumes the exact stream
    /// (DESIGN.md §11).
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn known_vector() {
        // First three outputs for seed 0, from the canonical splitmix64.c
        // reference implementation (Vigna): 0xE220A8397B1DCDAF,
        // 0x6E789E6AA1B965F4, 0x06C45D188009454F.
        let mut rng = SplitMix64::new(0);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F
            ]
        );
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let equal = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut rng = SplitMix64::new(99);
        let seeds = rng.derive_seeds(1000);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000);
    }

    #[test]
    fn split_children_are_independent_streams() {
        let mut parent = SplitMix64::new(7);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let xs: Vec<f64> = (0..4096).map(|_| c1.next_f64()).collect();
        let ys: Vec<f64> = (0..4096).map(|_| c2.next_f64()).collect();
        let r = stats::pearson(&xs, &ys);
        assert!(r.abs() < 0.05, "cross-correlation too high: {r}");
    }

    #[test]
    fn uniformity_chi_square() {
        let mut rng = SplitMix64::new(2024);
        let samples: Vec<f64> = (0..200_000).map(|_| rng.next_f64()).collect();
        let chi2 = stats::chi_square_uniform(&samples, 64);
        // 63 dof; 99.9th percentile ≈ 103. Deterministic seed, so no flake.
        assert!(chi2 < 110.0, "chi-square too large: {chi2}");
    }

    #[test]
    fn mix64_is_bijective_on_sample() {
        // Bijectivity can't be tested exhaustively; check no collisions on
        // a large structured sample (sequential inputs are the worst case
        // for weak mixers).
        let mut outs: Vec<u64> = (0..100_000u64).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 100_000);
    }
}
