//! The shared-state base generator of the multi-stream bank.
//!
//! ThundeRiNG's key observation is that the *state transition* of a good
//! linear generator is the expensive part on hardware (wide multiply), while
//! output scrambling is cheap — so one state sequence can be shared by many
//! streams. We model the shared sequence with a 64-bit multiplicative
//! congruential generator (MCG) using a spectral-test-optimal multiplier
//! from Steele & Vigna, "Computationally easy, spectrally good multipliers
//! for congruential pseudorandom number generators" (2022).

/// Spectrally good 64-bit MCG multiplier (Steele & Vigna 2022, table 7).
pub const MCG_MULTIPLIER: u64 = 0xF1357AEA2E62A9C5;

/// Shared-state 64-bit multiplicative congruential generator.
///
/// `state_{n+1} = state_n * MCG_MULTIPLIER (mod 2^64)`, state must be odd.
///
/// On its own an MCG's low bits are weak; the bank never uses raw state as
/// output — every lane passes it through a [`crate::Decorrelator`], exactly
/// like ThundeRiNG's per-instance output stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mcg64 {
    state: u64,
}

impl Mcg64 {
    /// Create from a seed. The seed is forced odd (MCG state must be a unit
    /// modulo 2^64) and avalanche-mixed so that close seeds give unrelated
    /// sequences.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self {
            state: crate::splitmix::mix64(seed) | 1,
        }
    }

    /// Advance one step and return the new raw state.
    ///
    /// This is the per-cycle shared-state generation of the bank. The raw
    /// value is *not* a finished random number; see [`crate::StreamBank`].
    #[inline]
    pub fn next_state(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MCG_MULTIPLIER);
        self.state
    }

    /// Peek at the current state (testing/debugging).
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Install a raw state captured from a live generator via
    /// [`Mcg64::state`] — the restore half of shard hand-off
    /// serialization. The state is forced odd, preserving the MCG unit
    /// invariant even against a corrupted capture.
    #[inline]
    pub fn set_state(&mut self, state: u64) {
        self.state = state | 1;
    }

    /// Jump the generator forward by `n` steps in O(log n) time.
    ///
    /// Used to leapfrog independent banks without generating intermediate
    /// states: `state * MCG_MULTIPLIER^n (mod 2^64)`.
    pub fn jump(&mut self, n: u64) {
        let mut mult = MCG_MULTIPLIER;
        let mut acc: u64 = 1;
        let mut n = n;
        while n > 0 {
            if n & 1 == 1 {
                acc = acc.wrapping_mul(mult);
            }
            mult = mult.wrapping_mul(mult);
            n >>= 1;
        }
        self.state = self.state.wrapping_mul(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_stays_odd() {
        let mut g = Mcg64::new(0); // even, gets forced odd
        for _ in 0..1000 {
            assert_eq!(g.next_state() & 1, 1);
        }
    }

    #[test]
    fn deterministic() {
        let mut a = Mcg64::new(5);
        let mut b = Mcg64::new(5);
        for _ in 0..64 {
            assert_eq!(a.next_state(), b.next_state());
        }
    }

    #[test]
    fn jump_matches_stepping() {
        for n in [0u64, 1, 2, 3, 17, 1000, 65537] {
            let mut stepped = Mcg64::new(123);
            for _ in 0..n {
                stepped.next_state();
            }
            let mut jumped = Mcg64::new(123);
            jumped.jump(n);
            assert_eq!(stepped.state(), jumped.state(), "n={n}");
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        // Thanks to mix64 seeding, adjacent seeds must not give adjacent
        // states.
        let a = Mcg64::new(1).state();
        let b = Mcg64::new(2).state();
        let diff = (a ^ b).count_ones();
        assert!(diff > 16, "seed mixing too weak: {diff} differing bits");
    }
}
