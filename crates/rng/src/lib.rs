//! # lightrw-rng — multi-stream pseudo-random number generation
//!
//! Software model of the RNG substrate LightRW (SIGMOD 2023) relies on.
//! The paper integrates **ThundeRiNG** (Tan et al., ICS 2021), an FPGA
//! multi-stream PRNG built from two ideas:
//!
//! 1. **State sharing** — a single (costly) linear-congruential state
//!    sequence is generated once per cycle and fanned out to all streams,
//!    instead of keeping one independent generator per stream.
//! 2. **Per-stream decorrelators** — each stream applies a cheap, distinct
//!    output permutation (odd multiplier + xor-shift finalizer) to the shared
//!    state so that the streams are empirically uncorrelated.
//!
//! [`StreamBank`] reproduces exactly this structure: `next_row` advances the
//! shared state *once* and produces `k` lane outputs, mirroring the hardware
//! that emits `k` random numbers per clock cycle for the parallel WRS
//! sampler (paper §4.2, Fig. 4).
//!
//! The crate also provides [`SplitMix64`], a small scalar generator used
//! across the workspace for seeding, workload generation and shuffling, and
//! [`stats`], the statistical helpers used by the randomness tests
//! (uniformity chi-square, autocorrelation, cross-stream correlation — the
//! software stand-in for the paper's TestU01 evidence).
//!
//! Everything is deterministic given a seed; no OS entropy is ever consumed.
//!
//! ```
//! use lightrw_rng::{Rng, SplitMix64, StreamBank};
//!
//! // One shared-state advance yields a whole row of decorrelated lanes.
//! let mut bank = StreamBank::new(42, 8);
//! let mut row = [0u32; 8];
//! bank.next_row(&mut row);
//! assert!(row.iter().collect::<std::collections::HashSet<_>>().len() > 1);
//!
//! // Scalar generation is deterministic per seed.
//! assert_eq!(SplitMix64::new(7).next_u64(), SplitMix64::new(7).next_u64());
//! ```

pub mod decorrelator;
pub mod mcg;
pub mod splitmix;
pub mod stats;
pub mod stream_bank;

pub use decorrelator::Decorrelator;
pub use mcg::Mcg64;
pub use splitmix::SplitMix64;
pub use stream_bank::StreamBank;

/// Minimal deterministic RNG interface used across the workspace.
///
/// All substrate crates (graph generators, samplers, the CPU baseline)
/// consume this trait so that every randomized component is seedable and
/// reproducible, per the experiment methodology in DESIGN.md §4.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`Rng::next_u64`]; the upper
    /// bits of multiplicative generators are the strongest).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits / 2^53: the standard uniform-double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and avoids
    /// the modulo operation in the common case.
    #[inline]
    fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be non-zero");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // Rejection zone for unbiasedness.
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, len)` as `usize`.
    #[inline]
    fn gen_index(&mut self, len: usize) -> usize {
        self.gen_range(len as u64) as usize
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it should actually move things with overwhelming probability.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }
}
