//! Statistical helpers for randomness and distribution testing.
//!
//! These back two kinds of tests in the workspace:
//! 1. RNG quality tests (the software stand-in for the paper's TestU01
//!    evidence for ThundeRiNG): uniformity chi-square, serial
//!    autocorrelation, cross-stream Pearson correlation, monobit balance.
//! 2. Sampler correctness tests: every weighted sampler (inverse transform,
//!    alias, WRS, parallel WRS) must draw items with frequencies matching
//!    their weights; [`chi_square_counts`] is the shared goodness-of-fit
//!    statistic.

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Pearson correlation coefficient of two equal-length series.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Lag-`lag` autocorrelation of a series.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    pearson(&xs[..xs.len() - lag], &xs[lag..])
}

/// Chi-square statistic of samples in `[0,1)` against the uniform
/// distribution over `bins` equal-width bins.
pub fn chi_square_uniform(samples: &[f64], bins: usize) -> f64 {
    assert!(bins >= 2);
    let mut counts = vec![0u64; bins];
    for &x in samples {
        debug_assert!((0.0..1.0).contains(&x), "sample {x} outside [0,1)");
        let b = ((x * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let expected = samples.len() as f64 / bins as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Chi-square statistic of observed counts against expected probabilities.
///
/// `probs` need not be normalized; zero-probability categories must have
/// zero observed count (asserted) and contribute nothing.
pub fn chi_square_counts(observed: &[u64], probs: &[f64]) -> f64 {
    assert_eq!(observed.len(), probs.len());
    let total: u64 = observed.iter().sum();
    let psum: f64 = probs.iter().sum();
    assert!(psum > 0.0, "all-zero probability vector");
    let mut chi2 = 0.0;
    for (&obs, &p) in observed.iter().zip(probs) {
        if p == 0.0 {
            assert_eq!(obs, 0, "sampled a zero-probability category");
            continue;
        }
        let expected = total as f64 * p / psum;
        let d = obs as f64 - expected;
        chi2 += d * d / expected;
    }
    chi2
}

/// A loose upper bound on the chi-square critical value at ~99.9%
/// confidence for `dof` degrees of freedom.
///
/// Uses the Wilson–Hilferty cube approximation with z = 3.09; accurate to a
/// few percent for dof ≥ 4, which is all the tests need (they compare a
/// deterministic statistic against a fixed threshold, not run a real
/// hypothesis test).
pub fn chi_square_crit_999(dof: usize) -> f64 {
    let k = dof as f64;
    let z = 3.09;
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Fraction of set bits over a stream of words (monobit test statistic).
pub fn monobit_fraction(words: &[u64]) -> f64 {
    if words.is_empty() {
        return 0.5;
    }
    let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
    ones as f64 / (words.len() as f64 * 64.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng, SplitMix64};

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_series_is_minus_one() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        let xs = [1.0; 10];
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 2) as f64).collect();
        assert!(autocorrelation(&xs, 2) > 0.99);
        assert!(autocorrelation(&xs, 1) < -0.99);
    }

    #[test]
    fn chi_square_uniform_detects_skew() {
        // All samples in one bin => massive statistic.
        let xs = vec![0.01; 1000];
        assert!(chi_square_uniform(&xs, 10) > 1000.0);
    }

    #[test]
    fn chi_square_counts_perfect_fit_is_zero() {
        let observed = [10u64, 20, 30];
        let probs = [1.0, 2.0, 3.0];
        assert!(chi_square_counts(&observed, &probs) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn chi_square_counts_rejects_impossible_observation() {
        chi_square_counts(&[1, 1], &[1.0, 0.0]);
    }

    #[test]
    fn crit_value_reasonable() {
        // Known table values: dof=63 → ≈ 103.4; dof=31 → ≈ 61.1 (99.9%).
        let c63 = chi_square_crit_999(63);
        assert!((100.0..108.0).contains(&c63), "{c63}");
        let c31 = chi_square_crit_999(31);
        assert!((58.0..65.0).contains(&c31), "{c31}");
    }

    #[test]
    fn monobit_balanced_for_good_rng() {
        let mut rng = SplitMix64::new(6);
        let words: Vec<u64> = (0..10_000).map(|_| rng.next_u64()).collect();
        let f = monobit_fraction(&words);
        assert!((f - 0.5).abs() < 0.002, "monobit fraction {f}");
    }
}
