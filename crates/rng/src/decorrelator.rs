//! Per-stream output decorrelators.
//!
//! Every lane of the [`crate::StreamBank`] owns one `Decorrelator`: a cheap
//! bijective transform applied to the shared MCG state so that lanes emit
//! empirically independent sequences. This mirrors ThundeRiNG's per-instance
//! "decorrelator" stage (paper §4.2), which the authors show passes
//! BigCrush for up to 64 concurrent streams at 1.2% resource cost.
//!
//! Our software decorrelator composes:
//! 1. a lane-specific **odd multiplier** (derived from the Weyl sequence, so
//!    all lanes get well-separated constants),
//! 2. a lane-specific **xor tweak**, and
//! 3. the SplitMix64 **avalanche finalizer** [`crate::splitmix::mix64`].
//!
//! Steps 1–2 make the lane functions distinct bijections of the shared
//! state; step 3 destroys the linear structure the MCG leaves in low bits.

use crate::splitmix::{mix64, GOLDEN_GAMMA};

/// A lane's output permutation: `mix64(state * mult ^ tweak)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decorrelator {
    mult: u64,
    tweak: u64,
}

impl Decorrelator {
    /// Build the decorrelator for `lane` under a bank-level `salt`.
    ///
    /// Lane constants are taken from the golden-ratio Weyl sequence (odd by
    /// construction) so that any number of lanes get maximally separated
    /// multipliers — the same trick SplitMix64 uses to split generators.
    pub fn for_lane(salt: u64, lane: usize) -> Self {
        let base = salt.wrapping_add((lane as u64).wrapping_mul(GOLDEN_GAMMA));
        Self {
            // Odd multiplier, avalanche-mixed so lanes differ in all bits.
            mult: mix64(base) | 1,
            tweak: mix64(base.wrapping_add(GOLDEN_GAMMA)),
        }
    }

    /// Apply the permutation to a shared state value.
    #[inline]
    pub fn apply(&self, state: u64) -> u64 {
        mix64(state.wrapping_mul(self.mult) ^ self.tweak)
    }

    /// Apply and keep the strongest 32 bits — the hardware emits 32-bit
    /// uniforms for the WRS acceptance test (paper Eq. 6: `r* / (2^32-1)`).
    #[inline]
    pub fn apply_u32(&self, state: u64) -> u32 {
        (self.apply(state) >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use crate::Mcg64;

    #[test]
    fn lanes_get_distinct_constants() {
        let ds: Vec<Decorrelator> = (0..64).map(|i| Decorrelator::for_lane(9, i)).collect();
        for i in 0..ds.len() {
            for j in i + 1..ds.len() {
                assert_ne!(ds[i], ds[j], "lanes {i} and {j} collide");
            }
        }
    }

    #[test]
    fn multiplier_is_odd() {
        for lane in 0..256 {
            assert_eq!(Decorrelator::for_lane(42, lane).mult & 1, 1);
        }
    }

    #[test]
    fn same_state_different_lanes_uncorrelated() {
        // The core ThundeRiNG property: two lanes fed the *same* state
        // sequence must still produce uncorrelated outputs.
        let d0 = Decorrelator::for_lane(7, 0);
        let d1 = Decorrelator::for_lane(7, 1);
        let mut mcg = Mcg64::new(1);
        let mut xs = Vec::with_capacity(8192);
        let mut ys = Vec::with_capacity(8192);
        for _ in 0..8192 {
            let s = mcg.next_state();
            xs.push(d0.apply_u32(s) as f64 / u32::MAX as f64);
            ys.push(d1.apply_u32(s) as f64 / u32::MAX as f64);
        }
        let r = stats::pearson(&xs, &ys);
        assert!(r.abs() < 0.05, "lane correlation {r}");
    }

    #[test]
    fn lane_output_is_uniform() {
        let d = Decorrelator::for_lane(3, 5);
        let mut mcg = Mcg64::new(2);
        let samples: Vec<f64> = (0..100_000)
            .map(|_| d.apply(mcg.next_state()) as f64 / u64::MAX as f64)
            .collect();
        let chi2 = stats::chi_square_uniform(&samples, 64);
        assert!(chi2 < 110.0, "chi-square {chi2}");
    }

    #[test]
    fn apply_is_injective_on_sample() {
        let d = Decorrelator::for_lane(1, 0);
        let mut outs: Vec<u64> = (0..50_000u64).map(|i| d.apply(i)).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 50_000);
    }
}
