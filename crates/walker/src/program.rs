//! Composable walk programs: control flow over the weight rules.
//!
//! LightRW fixes its pipeline to two fixed-length applications; the
//! step-centric engines underneath are far more general (ThunderRW's
//! Gather-Move-Update model, FlexiWalker's extensible dynamic walks). A
//! [`WalkProgram`] composes the existing per-step weighting
//! ([`crate::app::WalkApp`]) with a per-step **control decision**
//! ([`Control`]): continue the walk, restart from the start vertex with
//! probability α (personalized PageRank), or halt (step budget exhausted,
//! or a target vertex reached). The same three engines execute every
//! program through one shared per-attempt state machine,
//! [`WalkProgram::step_attempt`], so control flow lives in exactly one
//! place and stays on the allocation-free hot path (DESIGN.md §8).
//!
//! ## Program shapes
//!
//! - **Fixed length** ([`WalkProgram::fixed`]) — today's behavior,
//!   bit-identical to the pre-program engines for every app × engine ×
//!   sampler combination (`tests/engine_agreement.rs` pins this): no
//!   control draw is ever taken.
//! - **PPR** ([`WalkProgram::ppr`]) — at every step attempt the walker
//!   teleports back to its start vertex with probability α, under a hard
//!   step cap. The emitted path records the teleports (the start vertex
//!   reappears), so per-vertex visit counts estimate the personalized
//!   PageRank vector (`tests/distribution_conformance.rs` chi-squares
//!   this against the closed-form law on all three engines).
//! - **Target termination** ([`WalkProgram::with_targets`]) — the walk
//!   halts the moment it reaches a vertex in a word-packed
//!   [`NeighborBitset`] of targets (checked on arrival, and up front for
//!   a query that *starts* on a target, which emits its start-only path).
//! - **Dead-end policy** ([`WalkProgram::with_dead_end`]) — a vertex with
//!   no sampleable out-edge either truncates the walk (today's behavior)
//!   or restarts it from the start vertex, still consuming budget so
//!   termination stays guaranteed.
//!
//! ## Termination
//!
//! Every program terminates: each [`StepOutcome::Moved`] or
//! [`StepOutcome::Teleported`] consumes one unit of the query's step
//! budget, and the remaining outcomes finish the walk outright, so a walk
//! takes at most `budget` attempts plus one final halting attempt
//! (`tests/service_properties.rs` proptests this together with the
//! exactly-once emission contract).
//!
//! ## RNG stream contract (DESIGN.md §8)
//!
//! The restart decision draws **one 32-bit uniform from the sampler's own
//! stream** ([`crate::HotStepper::control_draw`]) immediately *before*
//! the step's sampling draws — table kinds tap their scalar RNG,
//! reservoir kinds lane 0 of their bank (one row, like any sampling
//! cycle). Programs that cannot restart (`restart_prob() == 0`) never
//! take the draw, which is what keeps fixed-length programs bit-identical
//! to the pre-program engines under every batch schedule.

use std::fmt;
use std::sync::Arc;

use crate::app::{StepContext, WalkApp};
use crate::hotpath::HotStepper;
use crate::membership::NeighborBitset;
use crate::query::Query;
use lightrw_graph::{Graph, VertexId};

/// Fixed-point scale of the restart probability: α is stored as a 32-bit
/// threshold out of `RESTART_ONE`, so the restart test is an integer
/// compare against the 32-bit control draw (exactly as a hardware Query
/// Controller would implement it).
pub const RESTART_ONE: u64 = 1 << 32;

/// What a walk does when every candidate weight at the current vertex is
/// zero (no out-edges, or a MetaPath step no incident edge satisfies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DeadEndPolicy {
    /// Terminate the walk with the vertices sampled so far — the
    /// pre-program contract (see [`Query::length`]).
    #[default]
    Truncate,
    /// Teleport back to the start vertex and keep walking; the teleport
    /// consumes one unit of step budget, so termination is preserved even
    /// when the start vertex itself is a dead end.
    Restart,
}

/// The per-step control decision a [`WalkProgram`] makes *before* the
/// fused weight-calculation + sampling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep walking: sample the next vertex through the hot path.
    Continue,
    /// Teleport back to the start vertex (drawn with probability α).
    Restart,
    /// Stop the walk here (the current vertex is a target).
    Halt,
}

/// What one [`WalkProgram::step_attempt`] did. Engines append a vertex on
/// the two advancing outcomes and seal the path on the two finishing
/// ones; `done == true` means the walk is over *after* the append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The hot path sampled a move to `next` (one real graph step).
    Moved {
        /// The sampled vertex, already written into the walk state.
        next: VertexId,
        /// Walk finished: budget exhausted or `next` is a target.
        done: bool,
    },
    /// The walker teleported back to the query's start vertex (restart
    /// draw, or a dead end under [`DeadEndPolicy::Restart`]).
    Teleported {
        /// Walk finished: budget exhausted or the start is a target.
        done: bool,
        /// True when the teleport was triggered by a dead end — i.e. the
        /// neighbor load *did* happen first. Engines with a memory model
        /// charge the load in that case and skip it for a pure restart
        /// draw, which never leaves the Query Controller.
        after_dead_end: bool,
    },
    /// Truncating dead end: the walk is over, nothing was appended.
    DeadEnd,
    /// The walk's current vertex is already a target (only reachable on
    /// the first attempt — arrivals set `done` instead): the walk is
    /// over, nothing was appended.
    TargetAtStart,
}

impl StepOutcome {
    /// The vertex this outcome appends to the path, if any.
    #[inline]
    pub fn appended(&self, start: VertexId) -> Option<VertexId> {
        match *self {
            Self::Moved { next, .. } => Some(next),
            Self::Teleported { .. } => Some(start),
            Self::DeadEnd | Self::TargetAtStart => None,
        }
    }
}

/// One walk's control/position state, engine-agnostic. Engines keep one
/// per in-flight query (a few words; the CPU engine stores the fields in
/// its SoA lanes) and hand it to [`WalkProgram::step_attempt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkState {
    /// Current vertex `a_t`.
    pub cur: VertexId,
    /// Previously traversed vertex within the current restart segment
    /// (`None` right after a start or teleport — second-order rules reset
    /// across teleports).
    pub prev: Option<VertexId>,
    /// Step budget consumed so far (moves + teleports), bounded by the
    /// query's budget.
    pub taken: u32,
    /// Step index within the current restart segment — the `t` that
    /// [`StepContext`] carries, so MetaPath's relation sequence restarts
    /// with the walker.
    pub seg: u32,
}

impl WalkState {
    /// Fresh state at a query's start vertex.
    #[inline]
    pub fn start(start: VertexId) -> Self {
        Self {
            cur: start,
            prev: None,
            taken: 0,
            seg: 0,
        }
    }

    /// Teleport back to `start`, consuming one unit of budget and
    /// resetting the segment (prev, step index).
    #[inline]
    fn teleport(&mut self, start: VertexId) {
        self.cur = start;
        self.prev = None;
        self.seg = 0;
        self.taken += 1;
    }
}

/// A composable walk definition: the control-flow half of a workload (the
/// weighting half stays a [`WalkApp`]). Cheap to clone (the target set is
/// shared behind an [`Arc`]); carried by [`crate::QuerySet`] so every
/// engine session executes the same program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkProgram {
    /// Restart threshold out of [`RESTART_ONE`]; 0 = never restart.
    restart_threshold: u64,
    /// Default per-query step budget (individual queries may override via
    /// [`Query::length`]).
    max_steps: u32,
    /// Halt-on-arrival target set, indexed by vertex id.
    targets: Option<Arc<NeighborBitset>>,
    dead_end: DeadEndPolicy,
}

impl WalkProgram {
    /// A fixed-length program of `len` steps — exactly the pre-program
    /// behavior: no restart draw, no targets, dead ends truncate.
    ///
    /// # Panics
    ///
    /// Panics when `len == 0` (the [`Query::length`] contract).
    pub fn fixed(len: u32) -> Self {
        assert!(len >= 1, "a walk program needs a step budget of at least 1");
        Self {
            restart_threshold: 0,
            max_steps: len,
            targets: None,
            dead_end: DeadEndPolicy::Truncate,
        }
    }

    /// Personalized PageRank: restart probability `alpha ∈ (0, 1]` per
    /// step, hard cap of `max` steps. α is quantized to 32 fractional
    /// bits (resolution ~2.3e-10); the emitted paths record teleports as
    /// reappearances of the start vertex.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]` or `max == 0`.
    pub fn ppr(alpha: f64, max: u32) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "restart probability must be in (0, 1], got {alpha}"
        );
        let mut p = Self::fixed(max);
        // Quantized threshold, clamped to ≥ 1 so arbitrarily small but
        // positive α still restarts with probability 2^-32, never 0.
        p.restart_threshold = ((alpha * RESTART_ONE as f64).round() as u64).clamp(1, RESTART_ONE);
        p
    }

    /// Halt the walk the moment it arrives on a vertex of `targets`
    /// (indexed by vertex id; build one with
    /// [`NeighborBitset::from_members`]). A query that *starts* on a
    /// target emits its start-only path without taking a step.
    pub fn with_targets(mut self, targets: Arc<NeighborBitset>) -> Self {
        self.targets = Some(targets);
        self
    }

    /// Set the dead-end policy (default [`DeadEndPolicy::Truncate`]).
    pub fn with_dead_end(mut self, policy: DeadEndPolicy) -> Self {
        self.dead_end = policy;
        self
    }

    /// The restart probability α this program draws with (0 when it never
    /// restarts).
    pub fn restart_prob(&self) -> f64 {
        self.restart_threshold as f64 / RESTART_ONE as f64
    }

    /// The default per-query step budget.
    #[inline]
    pub fn max_steps(&self) -> u32 {
        self.max_steps
    }

    /// The target set, if any.
    pub fn targets(&self) -> Option<&Arc<NeighborBitset>> {
        self.targets.as_ref()
    }

    /// The dead-end policy.
    #[inline]
    pub fn dead_end(&self) -> DeadEndPolicy {
        self.dead_end
    }

    /// True for programs with no control flow beyond the step budget —
    /// the ones guaranteed bit-identical to the pre-program engines.
    pub fn is_fixed_length(&self) -> bool {
        self.restart_threshold == 0
            && self.targets.is_none()
            && self.dead_end == DeadEndPolicy::Truncate
    }

    /// Whether `v` is a target vertex.
    #[inline]
    fn hits_target(&self, v: VertexId) -> bool {
        match &self.targets {
            Some(t) => (v as usize) < t.len() && t.get(v as usize),
            None => false,
        }
    }

    /// Evaluate the control rule at `cur`. `draw` is invoked exactly once
    /// iff the program can restart — the RNG stream contract above.
    #[inline]
    pub fn control(&self, cur: VertexId, draw: impl FnOnce() -> u32) -> Control {
        if self.hits_target(cur) {
            return Control::Halt;
        }
        if self.restart_threshold > 0 && (draw() as u64) < self.restart_threshold {
            return Control::Restart;
        }
        Control::Continue
    }

    /// Walk-finished test after an arrival on `st.cur`.
    #[inline]
    fn arrival_done(&self, budget: u32, st: &WalkState) -> bool {
        st.taken >= budget || self.hits_target(st.cur)
    }

    /// Execute one step **attempt** of `query`: the per-step state machine
    /// every engine shares — control decision (restart draw iff α > 0),
    /// then the fused weight-calculation + sampling pass, then the
    /// dead-end policy. Mutates `st` in place; zero heap allocations.
    ///
    /// Callers must not invoke this once the walk is done (`st.taken`
    /// reached the budget, or a previous outcome reported `done`/finish).
    #[inline]
    pub fn step_attempt(
        &self,
        g: &Graph,
        app: &dyn WalkApp,
        stepper: &mut HotStepper,
        query: &Query,
        st: &mut WalkState,
    ) -> StepOutcome {
        debug_assert!(st.taken < query.length, "step attempt past the budget");
        match self.control(st.cur, || stepper.control_draw()) {
            Control::Halt => return StepOutcome::TargetAtStart,
            Control::Restart => {
                st.teleport(query.start);
                return StepOutcome::Teleported {
                    done: self.arrival_done(query.length, st),
                    after_dead_end: false,
                };
            }
            Control::Continue => {}
        }
        let ctx = StepContext {
            step: st.seg,
            cur: st.cur,
            prev: st.prev,
        };
        match stepper.step(g, app, ctx) {
            Some(next) => {
                st.prev = Some(st.cur);
                st.cur = next;
                st.seg += 1;
                st.taken += 1;
                StepOutcome::Moved {
                    next,
                    done: self.arrival_done(query.length, st),
                }
            }
            None => match self.dead_end {
                DeadEndPolicy::Truncate => StepOutcome::DeadEnd,
                DeadEndPolicy::Restart => {
                    st.teleport(query.start);
                    StepOutcome::Teleported {
                        done: self.arrival_done(query.length, st),
                        after_dead_end: true,
                    }
                }
            },
        }
    }

    /// Parse a program string — the CLI `--program` / jobspec format:
    ///
    /// ```text
    /// fixed:len=80
    /// ppr:alpha=0.15,max=80
    /// ppr:alpha=0.2,max=64,deadend=restart
    /// ```
    ///
    /// Unknown names/keys, duplicate keys, α outside `(0, 1]` and zero
    /// budgets are rejected with actionable messages. Target sets cannot
    /// be expressed in a string; attach them with
    /// [`WalkProgram::with_targets`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let (name, rest) = match text.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (text, None),
        };
        let mut alpha: Option<f64> = None;
        let mut max: Option<u32> = None;
        let mut len: Option<u32> = None;
        let mut deadend: Option<DeadEndPolicy> = None;
        for pair in rest.into_iter().flat_map(|r| r.split(',')) {
            let (key, value) = pair.split_once('=').ok_or_else(|| {
                format!("program {name:?}: expected key=value, got {pair:?} (e.g. \"ppr:alpha=0.15,max=80\")")
            })?;
            let dup = |set: bool| {
                if set {
                    Err(format!("program {name:?}: duplicate key {key:?}"))
                } else {
                    Ok(())
                }
            };
            match key {
                "alpha" => {
                    dup(alpha.is_some())?;
                    let a: f64 = value.parse().map_err(|_| {
                        format!("program {name:?}: alpha must be a number, got {value:?}")
                    })?;
                    if !(a > 0.0 && a <= 1.0) {
                        return Err(format!(
                            "program {name:?}: alpha must be in (0, 1], got {value}"
                        ));
                    }
                    alpha = Some(a);
                }
                "max" | "len" => {
                    let slot = if key == "max" { &mut max } else { &mut len };
                    dup(slot.is_some())?;
                    let n: u32 = value.parse().map_err(|_| {
                        format!("program {name:?}: {key} must be a positive integer, got {value:?}")
                    })?;
                    if n == 0 {
                        return Err(format!(
                            "program {name:?}: {key}=0 is rejected — a walk needs at least one step"
                        ));
                    }
                    *slot = Some(n);
                }
                "deadend" => {
                    dup(deadend.is_some())?;
                    deadend = Some(match value {
                        "truncate" => DeadEndPolicy::Truncate,
                        "restart" => DeadEndPolicy::Restart,
                        other => {
                            return Err(format!(
                                "program {name:?}: deadend must be \"truncate\" or \"restart\", got {other:?}"
                            ))
                        }
                    });
                }
                "targets" => {
                    return Err(format!(
                        "program {name:?}: target sets cannot be expressed in a program string; \
                         attach them via WalkProgram::with_targets"
                    ))
                }
                other => {
                    return Err(format!(
                    "program {name:?}: unknown key {other:?} (expected alpha, max, len, deadend)"
                ))
                }
            }
        }
        let mut program = match name {
            "fixed" => {
                if alpha.is_some() {
                    return Err("program \"fixed\": alpha is only valid for ppr".into());
                }
                let budget = match (len, max) {
                    (Some(l), None) | (None, Some(l)) => l,
                    (None, None) => {
                        return Err("program \"fixed\": needs len=N (e.g. \"fixed:len=80\")".into())
                    }
                    (Some(_), Some(_)) => {
                        return Err("program \"fixed\": give either len or max, not both".into())
                    }
                };
                Self::fixed(budget)
            }
            "ppr" => {
                if len.is_some() {
                    return Err("program \"ppr\": use max=N, not len".into());
                }
                let a = alpha
                    .ok_or("program \"ppr\": needs alpha=A (e.g. \"ppr:alpha=0.15,max=80\")")?;
                let m =
                    max.ok_or("program \"ppr\": needs max=N (e.g. \"ppr:alpha=0.15,max=80\")")?;
                Self::ppr(a, m)
            }
            other => {
                return Err(format!(
                    "unknown program {other:?} (expected \"fixed\" or \"ppr\")"
                ))
            }
        };
        if let Some(policy) = deadend {
            program = program.with_dead_end(policy);
        }
        Ok(program)
    }
}

/// Shortest decimal whose 32-bit quantization reproduces `threshold` —
/// so `ppr(0.2, ..)` displays as `alpha=0.2`, not the 17-digit expansion
/// of `threshold / 2^32`.
fn shortest_alpha(threshold: u64) -> String {
    let alpha = threshold as f64 / RESTART_ONE as f64;
    for prec in 1..=17 {
        let s = format!("{alpha:.prec$}");
        if let Ok(a) = s.parse::<f64>() {
            if ((a * RESTART_ONE as f64).round() as u64).clamp(1, RESTART_ONE) == threshold {
                return s;
            }
        }
    }
    format!("{alpha}")
}

/// Canonical program string: `parse(p.to_string()) == p` for every
/// program without a target set (target sets append a `+targets(n)`
/// suffix for labels and are not parseable — see [`WalkProgram::parse`]).
impl fmt::Display for WalkProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.restart_threshold == 0 {
            write!(f, "fixed:len={}", self.max_steps)?;
        } else {
            write!(
                f,
                "ppr:alpha={},max={}",
                shortest_alpha(self.restart_threshold),
                self.max_steps
            )?;
        }
        if self.dead_end == DeadEndPolicy::Restart {
            write!(f, ",deadend=restart")?;
        }
        if let Some(t) = &self.targets {
            write!(f, "+targets({})", t.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Uniform;
    use crate::reference::SamplerKind;
    use lightrw_graph::GraphBuilder;

    fn q(start: VertexId, budget: u32) -> Query {
        Query {
            id: 0,
            start,
            length: budget,
        }
    }

    #[test]
    fn fixed_program_is_fixed_length() {
        let p = WalkProgram::fixed(5);
        assert!(p.is_fixed_length());
        assert_eq!(p.restart_prob(), 0.0);
        assert_eq!(p.max_steps(), 5);
        assert_eq!(p.dead_end(), DeadEndPolicy::Truncate);
        assert!(p.targets().is_none());
    }

    #[test]
    fn ppr_threshold_quantization() {
        assert_eq!(WalkProgram::ppr(1.0, 3).restart_threshold, RESTART_ONE);
        assert_eq!(
            WalkProgram::ppr(0.5, 3).restart_threshold,
            RESTART_ONE / 2,
            "α = 0.5 is exact in 32 fractional bits"
        );
        // Tiny but positive α clamps to the smallest non-zero threshold.
        assert_eq!(WalkProgram::ppr(1e-30, 3).restart_threshold, 1);
        assert!(!WalkProgram::ppr(0.15, 3).is_fixed_length());
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn ppr_rejects_alpha_above_one() {
        WalkProgram::ppr(1.5, 3);
    }

    #[test]
    #[should_panic(expected = "step budget")]
    fn fixed_rejects_zero_budget() {
        WalkProgram::fixed(0);
    }

    #[test]
    fn control_draw_only_taken_when_restartable() {
        let fixed = WalkProgram::fixed(5);
        // A fixed program must never invoke the draw closure.
        assert_eq!(
            fixed.control(0, || panic!("fixed programs draw nothing")),
            Control::Continue
        );
        let always = WalkProgram::ppr(1.0, 5);
        assert_eq!(always.control(0, || u32::MAX), Control::Restart);
        let never = WalkProgram::ppr(1e-30, 5); // threshold 1
        assert_eq!(never.control(0, || 1), Control::Continue);
        assert_eq!(never.control(0, || 0), Control::Restart);
    }

    #[test]
    fn targets_halt_on_arrival_and_at_start() {
        let targets = Arc::new(NeighborBitset::from_members(4, [2usize]));
        let p = WalkProgram::fixed(10).with_targets(targets);
        assert_eq!(p.control(2, || 0), Control::Halt);
        assert_eq!(p.control(1, || 0), Control::Continue);
        // Out-of-range vertices are simply not targets.
        assert!(!p.hits_target(100));
    }

    #[test]
    fn step_attempt_walks_a_path_graph() {
        // 0 -> 1 -> 2, dead end at 2.
        let g = GraphBuilder::directed().edges([(0, 1), (1, 2)]).build();
        let p = WalkProgram::fixed(10);
        let mut stepper = HotStepper::new(&Uniform, SamplerKind::InverseTransform, 1);
        let query = q(0, 10);
        let mut st = WalkState::start(0);
        assert_eq!(
            p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st),
            StepOutcome::Moved {
                next: 1,
                done: false
            }
        );
        assert_eq!((st.cur, st.prev, st.taken, st.seg), (1, Some(0), 1, 1));
        assert_eq!(
            p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st),
            StepOutcome::Moved {
                next: 2,
                done: false
            }
        );
        assert_eq!(
            p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st),
            StepOutcome::DeadEnd
        );
    }

    #[test]
    fn dead_end_restart_teleports_and_consumes_budget() {
        let g = GraphBuilder::directed().edges([(0, 1)]).build();
        let p = WalkProgram::fixed(3).with_dead_end(DeadEndPolicy::Restart);
        let mut stepper = HotStepper::new(&Uniform, SamplerKind::InverseTransform, 1);
        let query = q(0, 3);
        let mut st = WalkState::start(0);
        // 0 -> 1 (move), 1 is a dead end -> teleport to 0, 0 -> 1 again:
        // budget 3 exhausted.
        let o1 = p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st);
        assert_eq!(
            o1,
            StepOutcome::Moved {
                next: 1,
                done: false
            }
        );
        let o2 = p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st);
        assert_eq!(
            o2,
            StepOutcome::Teleported {
                done: false,
                after_dead_end: true
            }
        );
        assert_eq!(o2.appended(query.start), Some(0));
        assert_eq!((st.cur, st.prev, st.taken, st.seg), (0, None, 2, 0));
        let o3 = p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st);
        assert_eq!(
            o3,
            StepOutcome::Moved {
                next: 1,
                done: true
            }
        );
        assert_eq!(st.taken, 3);
    }

    #[test]
    fn restart_draw_resets_the_segment() {
        // A 2-cycle so sampling never dead-ends; α = 1 teleports on every
        // attempt.
        let g = GraphBuilder::directed().edges([(0, 1), (1, 0)]).build();
        let p = WalkProgram::ppr(1.0, 2);
        let mut stepper = HotStepper::new(&Uniform, SamplerKind::InverseTransform, 7);
        let query = q(0, 2);
        let mut st = WalkState::start(0);
        let o = p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st);
        assert_eq!(
            o,
            StepOutcome::Teleported {
                done: false,
                after_dead_end: false
            }
        );
        assert_eq!((st.cur, st.prev, st.taken, st.seg), (0, None, 1, 0));
        let o = p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st);
        assert_eq!(
            o,
            StepOutcome::Teleported {
                done: true,
                after_dead_end: false
            }
        );
        assert_eq!(st.taken, 2);
    }

    #[test]
    fn target_at_start_finishes_without_stepping() {
        let g = GraphBuilder::directed().edges([(0, 1)]).build();
        let targets = Arc::new(NeighborBitset::from_members(2, [0usize]));
        let p = WalkProgram::fixed(5).with_targets(targets);
        let mut stepper = HotStepper::new(&Uniform, SamplerKind::InverseTransform, 1);
        let query = q(0, 5);
        let mut st = WalkState::start(0);
        assert_eq!(
            p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st),
            StepOutcome::TargetAtStart
        );
        assert_eq!(st.taken, 0);
    }

    #[test]
    fn target_on_arrival_sets_done() {
        let g = GraphBuilder::directed().edges([(0, 1), (1, 0)]).build();
        let targets = Arc::new(NeighborBitset::from_members(2, [1usize]));
        let p = WalkProgram::fixed(50).with_targets(targets);
        let mut stepper = HotStepper::new(&Uniform, SamplerKind::InverseTransform, 1);
        let query = q(0, 50);
        let mut st = WalkState::start(0);
        assert_eq!(
            p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st),
            StepOutcome::Moved {
                next: 1,
                done: true
            }
        );
    }

    #[test]
    fn every_program_terminates_within_budget_attempts() {
        // Brute-force the termination bound on a graph with a dead end, a
        // cycle, and a target, across the program space.
        let g = GraphBuilder::directed()
            .num_vertices(4)
            .edges([(0, 1), (1, 2), (2, 0), (0, 3)])
            .build();
        let targets = Arc::new(NeighborBitset::from_members(4, [2usize]));
        let programs = [
            WalkProgram::fixed(7),
            WalkProgram::ppr(0.3, 7),
            WalkProgram::ppr(1.0, 7),
            WalkProgram::fixed(7).with_dead_end(DeadEndPolicy::Restart),
            WalkProgram::ppr(0.3, 7).with_dead_end(DeadEndPolicy::Restart),
            WalkProgram::fixed(7).with_targets(Arc::clone(&targets)),
            WalkProgram::ppr(0.5, 7).with_targets(targets),
        ];
        for (pi, p) in programs.iter().enumerate() {
            for seed in 0..20 {
                let mut stepper = HotStepper::new(&Uniform, SamplerKind::SequentialWrs, seed);
                let query = q(0, 7);
                let mut st = WalkState::start(0);
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    assert!(attempts <= 8, "program {pi} seed {seed} ran away");
                    match p.step_attempt(&g, &Uniform, &mut stepper, &query, &mut st) {
                        StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                            assert!(st.taken <= 7);
                            if done {
                                break;
                            }
                        }
                        StepOutcome::DeadEnd | StepOutcome::TargetAtStart => break,
                    }
                }
            }
        }
    }

    #[test]
    fn parser_roundtrips_canonical_forms() {
        for text in [
            "fixed:len=80",
            "fixed:len=1,deadend=restart",
            "ppr:alpha=0.15,max=80",
            "ppr:alpha=1,max=5",
            "ppr:alpha=0.2,max=64,deadend=restart",
        ] {
            let p = WalkProgram::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let shown = p.to_string();
            let back = WalkProgram::parse(&shown).unwrap_or_else(|e| panic!("{shown}: {e}"));
            assert_eq!(p, back, "{text} -> {shown}");
        }
        // `max` is accepted as an alias for `len` on fixed programs.
        assert_eq!(
            WalkProgram::parse("fixed:max=9").unwrap(),
            WalkProgram::fixed(9)
        );
    }

    #[test]
    fn parser_rejects_malformed_programs_with_actionable_errors() {
        for (text, needle) in [
            ("pagerank:alpha=0.1", "unknown program"),
            ("ppr:alpha=0.15,max=80,burst=4", "unknown key"),
            ("ppr:alpha=0,max=80", "(0, 1]"),
            ("ppr:alpha=1.5,max=80", "(0, 1]"),
            ("ppr:alpha=-0.1,max=80", "(0, 1]"),
            ("ppr:alpha=nope,max=80", "must be a number"),
            ("ppr:alpha=0.5,max=0", "at least one step"),
            ("ppr:alpha=0.5", "needs max"),
            ("ppr:max=80", "needs alpha"),
            ("ppr:alpha=0.5,max=80,len=3", "not len"),
            ("fixed", "needs len"),
            ("fixed:len=0", "at least one step"),
            ("fixed:len=3,len=4", "duplicate key"),
            ("fixed:len=3,max=4", "not both"),
            ("fixed:alpha=0.5,len=3", "only valid for ppr"),
            ("fixed:len", "key=value"),
            ("ppr:alpha=0.5,max=80,deadend=panic", "truncate"),
            ("fixed:len=3,targets=x", "with_targets"),
        ] {
            let err = WalkProgram::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn display_labels_target_sets() {
        let p = WalkProgram::ppr(0.5, 8)
            .with_targets(Arc::new(NeighborBitset::from_members(16, [3usize])));
        assert_eq!(p.to_string(), "ppr:alpha=0.5,max=8+targets(16)");
    }
}
