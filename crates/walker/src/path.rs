//! Compact storage and validation of walk outputs.
//!
//! A workload of |V| queries × 80 steps produces a lot of path data; we
//! store all paths in one CSR-like (offsets, vertices) pair instead of a
//! `Vec<Vec<_>>`, mirroring how the accelerator streams results back over
//! PCIe as one contiguous buffer.

use crate::app::{StepContext, WalkApp};
use lightrw_graph::{Graph, VertexId};

/// All result paths of a query set, indexed by query id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalkResults {
    offsets: Vec<u64>,
    verts: Vec<VertexId>,
}

impl WalkResults {
    /// Empty result set; paths are appended in query-id order.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            verts: Vec::new(),
        }
    }

    /// Pre-size for `queries` paths of about `expected_len` vertices.
    ///
    /// Paths can be built incrementally — push vertices as an engine
    /// samples them, then seal the path — which is exactly how the
    /// streaming sessions of DESIGN.md §6 collect their output:
    ///
    /// ```
    /// use lightrw_walker::WalkResults;
    ///
    /// let mut r = WalkResults::with_capacity(2, 3);
    /// assert!(r.is_empty());
    ///
    /// r.push_vertex(4); // a walk starting at vertex 4...
    /// r.push_vertex(7); // ...steps to 7...
    /// r.end_path();     // ...and dead-ends: the 2-vertex path is sealed.
    /// r.push_vertex(9);
    /// r.end_path();     // a walk that dead-ended at its start
    ///
    /// assert!(!r.is_empty());
    /// assert_eq!(r.len(), 2);
    /// assert_eq!(r.path(0), &[4, 7]);
    /// let lens: Vec<usize> = r.iter().map(|p| p.len()).collect();
    /// assert_eq!(lens, vec![2, 1]);
    /// assert_eq!(r.total_steps(), 1);
    /// ```
    pub fn with_capacity(queries: usize, expected_len: usize) -> Self {
        let mut offsets = Vec::with_capacity(queries + 1);
        offsets.push(0);
        Self {
            offsets,
            verts: Vec::with_capacity(queries * expected_len),
        }
    }

    /// Append the next query's path.
    pub fn push_path(&mut self, path: &[VertexId]) {
        self.verts.extend_from_slice(path);
        self.offsets.push(self.verts.len() as u64);
    }

    /// Begin a path in place: push vertices with [`WalkResults::push_vertex`],
    /// then seal with [`WalkResults::end_path`].
    pub fn push_vertex(&mut self, v: VertexId) {
        self.verts.push(v);
    }

    /// Seal the in-progress path.
    pub fn end_path(&mut self) {
        self.offsets.push(self.verts.len() as u64);
    }

    /// Number of stored paths.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no paths are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The path of query `id`.
    pub fn path(&self, id: usize) -> &[VertexId] {
        &self.verts[self.offsets[id] as usize..self.offsets[id + 1] as usize]
    }

    /// Iterate all paths.
    ///
    /// ```
    /// use lightrw_walker::WalkResults;
    ///
    /// let mut r = WalkResults::new();
    /// r.push_path(&[0, 1]);
    /// r.push_path(&[2]);
    /// // `&WalkResults` also implements `IntoIterator`, so `for` loops
    /// // work directly — the sinks of DESIGN.md §6 rely on both forms.
    /// let mut verts = 0;
    /// for p in &r {
    ///     verts += p.len();
    /// }
    /// assert_eq!(verts, 3);
    /// assert_eq!(r.iter().count(), 2);
    /// ```
    pub fn iter(&self) -> PathsIter<'_> {
        PathsIter {
            results: self,
            next: 0,
        }
    }

    /// Total steps actually taken (excludes each path's starting vertex) —
    /// the numerator of the steps/second throughput metric.
    pub fn total_steps(&self) -> u64 {
        self.verts.len() as u64 - self.len() as u64
    }

    /// Result buffer size in bytes (what travels back over PCIe).
    pub fn result_bytes(&self) -> u64 {
        (self.verts.len() * std::mem::size_of::<VertexId>()) as u64
    }
}

/// Iterator over a result set's paths (see [`WalkResults::iter`]).
#[derive(Debug, Clone)]
pub struct PathsIter<'a> {
    results: &'a WalkResults,
    next: usize,
}

impl<'a> Iterator for PathsIter<'a> {
    type Item = &'a [VertexId];

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.results.len() {
            return None;
        }
        let p = self.results.path(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.results.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PathsIter<'_> {}

impl<'a> IntoIterator for &'a WalkResults {
    type Item = &'a [VertexId];
    type IntoIter = PathsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Why a path failed validation — see [`validate_path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathViolation {
    /// The path is empty (every query emits at least its start vertex).
    Empty,
    /// Consecutive vertices are not connected in the graph.
    NotAnEdge {
        step: u32,
        from: VertexId,
        to: VertexId,
    },
    /// The edge exists but its dynamic weight was zero at that step, so it
    /// could never have been sampled.
    ZeroWeightStep {
        step: u32,
        from: VertexId,
        to: VertexId,
    },
}

/// Check that `path` is a valid realization of `app` on `g`: every hop is
/// a real edge whose dynamic weight at that step was non-zero. This is the
/// correctness oracle every engine's output is run through in tests.
pub fn validate_path(g: &Graph, app: &dyn WalkApp, path: &[VertexId]) -> Result<(), PathViolation> {
    if path.is_empty() {
        return Err(PathViolation::Empty);
    }
    let mut prev: Option<VertexId> = None;
    for (i, w) in path.windows(2).enumerate() {
        let (from, to) = (w[0], w[1]);
        let adj = g.neighbors(from);
        let pos = match adj.binary_search(&to) {
            Ok(p) => p,
            Err(_) => {
                return Err(PathViolation::NotAnEdge {
                    step: i as u32,
                    from,
                    to,
                })
            }
        };
        let w_static = g.neighbor_weights(from)[pos];
        let relation = g.neighbor_relations(from).get(pos).copied().unwrap_or(0);
        let prev_is_neighbor = prev.map(|p| g.has_edge(p, to)).unwrap_or(false);
        let ctx = StepContext {
            step: i as u32,
            cur: from,
            prev,
        };
        if app.weight(ctx, to, w_static, relation, prev_is_neighbor) == 0 {
            return Err(PathViolation::ZeroWeightStep {
                step: i as u32,
                from,
                to,
            });
        }
        prev = Some(from);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{MetaPath, Uniform};
    use lightrw_graph::GraphBuilder;

    #[test]
    fn push_and_read_paths() {
        let mut r = WalkResults::new();
        r.push_path(&[1, 2, 3]);
        r.push_path(&[4]);
        r.push_path(&[5, 6]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.path(0), &[1, 2, 3]);
        assert_eq!(r.path(1), &[4]);
        assert_eq!(r.path(2), &[5, 6]);
        assert_eq!(r.total_steps(), 3); // 2 + 0 + 1
        assert_eq!(r.result_bytes(), 6 * 4);
    }

    #[test]
    fn incremental_path_building() {
        let mut r = WalkResults::new();
        r.push_vertex(7);
        r.push_vertex(8);
        r.end_path();
        r.push_vertex(9);
        r.end_path();
        assert_eq!(r.len(), 2);
        assert_eq!(r.path(0), &[7, 8]);
        assert_eq!(r.path(1), &[9]);
    }

    #[test]
    fn iter_visits_all_paths() {
        let mut r = WalkResults::with_capacity(2, 2);
        r.push_path(&[0, 1]);
        r.push_path(&[2, 3]);
        let v: Vec<Vec<u32>> = r.iter().map(|p| p.to_vec()).collect();
        assert_eq!(v, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn validate_accepts_real_walk() {
        let g = GraphBuilder::undirected().edges([(0, 1), (1, 2)]).build();
        assert_eq!(validate_path(&g, &Uniform, &[0, 1, 2, 1, 0]), Ok(()));
    }

    #[test]
    fn validate_rejects_non_edge() {
        let g = GraphBuilder::undirected().edges([(0, 1), (1, 2)]).build();
        assert_eq!(
            validate_path(&g, &Uniform, &[0, 2]),
            Err(PathViolation::NotAnEdge {
                step: 0,
                from: 0,
                to: 2
            })
        );
    }

    #[test]
    fn validate_rejects_zero_weight_hop() {
        // Edge (0,1) has relation 1 but the MetaPath expects relation 0 at
        // step 0 → the hop could never be sampled.
        let g = GraphBuilder::undirected().labeled_edge(0, 1, 1, 1).build();
        let mp = MetaPath::new(vec![0]);
        assert_eq!(
            validate_path(&g, &mp, &[0, 1]),
            Err(PathViolation::ZeroWeightStep {
                step: 0,
                from: 0,
                to: 1
            })
        );
    }

    #[test]
    fn validate_rejects_empty() {
        let g = GraphBuilder::undirected().edge(0, 1).build();
        assert_eq!(validate_path(&g, &Uniform, &[]), Err(PathViolation::Empty));
    }

    #[test]
    fn single_vertex_path_is_valid() {
        let g = GraphBuilder::undirected().edge(0, 1).build();
        assert_eq!(validate_path(&g, &Uniform, &[1]), Ok(()));
    }
}
