//! Sorted-adjacency intersection for second-order walks.
//!
//! Node2Vec's Eq. 2b needs `(a_{t-1}, b) ∈ E` for every candidate neighbor
//! `b ∈ N(a_t)`. Because CSR adjacency lists are sorted, a single
//! merge-join over `N(a_t)` and `N(a_{t-1})` answers all candidates in
//! `O(|N(a_t)| + |N(a_{t-1})|)` — this is also how the accelerator's
//! Weight Updater consumes the two neighbor streams, and why Node2Vec
//! issues extra `row_index`/`col_index` traffic in the memory model.

use lightrw_graph::{Graph, VertexId};

/// Fill `mask[i] = (prev, N(cur)[i]) ∈ E` by merge-joining the two sorted
/// adjacency lists. `mask` is resized to `deg(cur)`.
pub fn common_neighbor_mask(g: &Graph, cur: VertexId, prev: VertexId, mask: &mut Vec<bool>) {
    let cand = g.neighbors(cur);
    let prev_adj = g.neighbors(prev);
    mask.clear();
    mask.resize(cand.len(), false);
    let mut j = 0usize;
    for (i, &b) in cand.iter().enumerate() {
        while j < prev_adj.len() && prev_adj[j] < b {
            j += 1;
        }
        if j < prev_adj.len() && prev_adj[j] == b {
            mask[i] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::GraphBuilder;

    fn fixture() -> Graph {
        // 0-1, 0-2, 0-3, 1-2, 3-4 undirected.
        GraphBuilder::undirected()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (3, 4)])
            .build()
    }

    #[test]
    fn mask_matches_binary_search() {
        let g = fixture();
        let mut mask = Vec::new();
        for cur in 0..5u32 {
            for prev in 0..5u32 {
                common_neighbor_mask(&g, cur, prev, &mut mask);
                let cand = g.neighbors(cur);
                assert_eq!(mask.len(), cand.len());
                for (i, &b) in cand.iter().enumerate() {
                    assert_eq!(mask[i], g.has_edge(prev, b), "cur={cur} prev={prev} b={b}");
                }
            }
        }
    }

    #[test]
    fn empty_candidate_list() {
        let g = GraphBuilder::directed().num_vertices(3).edge(0, 1).build();
        let mut mask = vec![true; 4];
        common_neighbor_mask(&g, 2, 0, &mut mask);
        assert!(mask.is_empty());
    }

    #[test]
    fn prev_with_no_neighbors() {
        let g = GraphBuilder::directed().num_vertices(3).edge(0, 1).build();
        let mut mask = Vec::new();
        common_neighbor_mask(&g, 0, 2, &mut mask);
        assert_eq!(mask, vec![false]);
    }

    proptest::proptest! {
        #[test]
        fn merge_join_equals_has_edge(seed in 0u64..50) {
            let g = lightrw_graph::generators::rmat(7, 4, seed);
            let mut mask = Vec::new();
            // Sample a handful of (cur, prev) pairs per case.
            for cur in (0..g.num_vertices() as u32).step_by(17) {
                let prev = (cur * 31 + 7) % g.num_vertices() as u32;
                common_neighbor_mask(&g, cur, prev, &mut mask);
                for (i, &b) in g.neighbors(cur).iter().enumerate() {
                    proptest::prop_assert_eq!(mask[i], g.has_edge(prev, b));
                }
            }
        }
    }
}
