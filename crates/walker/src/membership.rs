//! Sorted-adjacency intersection for second-order walks.
//!
//! Node2Vec's Eq. 2b needs `(a_{t-1}, b) ∈ E` for every candidate neighbor
//! `b ∈ N(a_t)`. Because CSR adjacency lists are sorted, a single
//! merge-join over `N(a_t)` and `N(a_{t-1})` answers all candidates in
//! `O(|N(a_t)| + |N(a_{t-1})|)` — this is also how the accelerator's
//! Weight Updater consumes the two neighbor streams, and why Node2Vec
//! issues extra `row_index`/`col_index` traffic in the memory model.

use lightrw_graph::{Graph, VertexId};

/// Fill `mask[i] = (prev, N(cur)[i]) ∈ E` by merge-joining the two sorted
/// adjacency lists. `mask` is resized to `deg(cur)`.
///
/// This is the simple byte-per-candidate variant kept as the test oracle;
/// the engines' hot path uses [`NeighborBitset`] +
/// [`common_neighbor_bitset`], which packs the mask 64 candidates per word
/// and switches to galloping probes on lopsided degree pairs.
pub fn common_neighbor_mask(g: &Graph, cur: VertexId, prev: VertexId, mask: &mut Vec<bool>) {
    let cand = g.neighbors(cur);
    let prev_adj = g.neighbors(prev);
    mask.clear();
    mask.resize(cand.len(), false);
    let mut j = 0usize;
    for (i, &b) in cand.iter().enumerate() {
        while j < prev_adj.len() && prev_adj[j] < b {
            j += 1;
        }
        if j < prev_adj.len() && prev_adj[j] == b {
            mask[i] = true;
        }
    }
}

/// Word-packed candidate mask: one bit per element of `N(cur)`, reused
/// across steps so the second-order hot path does no per-step allocation
/// once the word buffer has grown to the largest degree seen.
///
/// Doubles as the target-set representation of
/// [`crate::program::WalkProgram`]: a bitset over vertex ids built with
/// [`NeighborBitset::from_members`], probed once per step by the control
/// rule (equality compares the held bits, so two sets with the same
/// members are equal whatever buffer capacity each grew to).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NeighborBitset {
    words: Vec<u64>,
    len: usize,
}

impl NeighborBitset {
    /// Empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitset of `len` bits with exactly the `members` set — the
    /// vertex-set constructor walk programs use for target termination.
    ///
    /// # Panics
    ///
    /// Panics when a member index is `>= len`.
    pub fn from_members(len: usize, members: impl IntoIterator<Item = usize>) -> Self {
        let mut bits = Self::new();
        bits.clear_resize(len);
        for m in members {
            assert!(m < len, "bitset member {m} out of range 0..{len}");
            bits.set(m);
        }
        bits
    }

    /// Pre-size for candidate sets up to `bits` (worker setup).
    pub fn reserve(&mut self, bits: usize) {
        self.words
            .reserve(bits.div_ceil(64).saturating_sub(self.words.len()));
    }

    /// Reset to `len` cleared bits.
    pub fn clear_resize(&mut self, len: usize) {
        self.len = len;
        let words = len.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }
}

/// When one adjacency list is this many times longer than the other, probe
/// the longer list by binary search instead of merge-joining — the
/// galloping cutover for hub/leaf degree pairs.
const GALLOP_RATIO: usize = 8;

/// Fill `bits[i] = (prev, N(cur)[i]) ∈ E`; the bitset is resized to
/// `deg(cur)`. Chooses merge-join or galloping by degree ratio; all
/// strategies produce identical bits (see the proptest below).
pub fn common_neighbor_bitset(g: &Graph, cur: VertexId, prev: VertexId, bits: &mut NeighborBitset) {
    common_neighbor_bitset_slices(g.neighbors(cur), g.neighbors(prev), bits);
}

/// Slice-level core of [`common_neighbor_bitset`]: intersect a candidate
/// list against an explicit sorted adjacency row. Sharded execution uses
/// this directly when `prev` lives on another shard — the migrated walker
/// carries prev's row as hand-off payload (DESIGN.md §11), so the mask is
/// bit-identical to local execution even though this shard's CSR has no
/// row for `prev`.
pub fn common_neighbor_bitset_slices(cand: &[u32], prev_adj: &[u32], bits: &mut NeighborBitset) {
    bits.clear_resize(cand.len());
    if cand.is_empty() || prev_adj.is_empty() {
        return;
    }
    if prev_adj.len() > GALLOP_RATIO * cand.len() {
        // Few candidates, huge prev list: probe prev's adjacency.
        for (i, &b) in cand.iter().enumerate() {
            if prev_adj.binary_search(&b).is_ok() {
                bits.set(i);
            }
        }
    } else if cand.len() > GALLOP_RATIO * prev_adj.len() {
        // Huge candidate list, few prev neighbors: locate each prev
        // neighbor inside the candidates, narrowing the window as we go.
        let mut lo = 0usize;
        for &p in prev_adj {
            match cand[lo..].binary_search(&p) {
                Ok(off) => {
                    bits.set(lo + off);
                    lo += off + 1;
                }
                Err(off) => lo += off,
            }
            if lo >= cand.len() {
                break;
            }
        }
    } else {
        // Comparable sizes: linear merge-join, one pass over both lists.
        let mut j = 0usize;
        for (i, &b) in cand.iter().enumerate() {
            while j < prev_adj.len() && prev_adj[j] < b {
                j += 1;
            }
            if j == prev_adj.len() {
                break;
            }
            if prev_adj[j] == b {
                bits.set(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::GraphBuilder;

    fn fixture() -> Graph {
        // 0-1, 0-2, 0-3, 1-2, 3-4 undirected.
        GraphBuilder::undirected()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (3, 4)])
            .build()
    }

    #[test]
    fn mask_matches_binary_search() {
        let g = fixture();
        let mut mask = Vec::new();
        for cur in 0..5u32 {
            for prev in 0..5u32 {
                common_neighbor_mask(&g, cur, prev, &mut mask);
                let cand = g.neighbors(cur);
                assert_eq!(mask.len(), cand.len());
                for (i, &b) in cand.iter().enumerate() {
                    assert_eq!(mask[i], g.has_edge(prev, b), "cur={cur} prev={prev} b={b}");
                }
            }
        }
    }

    #[test]
    fn empty_candidate_list() {
        let g = GraphBuilder::directed().num_vertices(3).edge(0, 1).build();
        let mut mask = vec![true; 4];
        common_neighbor_mask(&g, 2, 0, &mut mask);
        assert!(mask.is_empty());
    }

    #[test]
    fn prev_with_no_neighbors() {
        let g = GraphBuilder::directed().num_vertices(3).edge(0, 1).build();
        let mut mask = Vec::new();
        common_neighbor_mask(&g, 0, 2, &mut mask);
        assert_eq!(mask, vec![false]);
    }

    #[test]
    fn bitset_basics() {
        let mut b = NeighborBitset::new();
        b.clear_resize(130); // spans three words
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        for i in 0..130 {
            assert_eq!(b.get(i), matches!(i, 0 | 63 | 64 | 129), "bit {i}");
        }
        // Reuse clears old bits.
        b.clear_resize(10);
        assert!((0..10).all(|i| !b.get(i)));
    }

    #[test]
    fn bitset_gallops_into_hub_from_leaf() {
        // Star graph: vertex 0 is a hub, leaves have degree 1 — both
        // galloping branches fire and must match the oracle.
        let g = lightrw_graph::generators::star(600);
        let mut bits = NeighborBitset::new();
        let mut mask = Vec::new();
        for (cur, prev) in [(1u32, 0u32), (0, 1), (0, 0), (1, 2)] {
            common_neighbor_bitset(&g, cur, prev, &mut bits);
            common_neighbor_mask(&g, cur, prev, &mut mask);
            assert_eq!(bits.len(), mask.len());
            for (i, &m) in mask.iter().enumerate() {
                assert_eq!(bits.get(i), m, "cur={cur} prev={prev} i={i}");
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn bitset_equals_bool_mask(seed in 0u64..40) {
            let g = lightrw_graph::generators::rmat(7, 6, seed);
            let mut bits = NeighborBitset::new();
            let mut mask = Vec::new();
            for cur in (0..g.num_vertices() as u32).step_by(13) {
                let prev = (cur * 29 + 3) % g.num_vertices() as u32;
                common_neighbor_bitset(&g, cur, prev, &mut bits);
                common_neighbor_mask(&g, cur, prev, &mut mask);
                proptest::prop_assert_eq!(bits.len(), mask.len());
                for (i, &m) in mask.iter().enumerate() {
                    proptest::prop_assert_eq!(bits.get(i), m);
                }
            }
        }

        #[test]
        fn merge_join_equals_has_edge(seed in 0u64..50) {
            let g = lightrw_graph::generators::rmat(7, 4, seed);
            let mut mask = Vec::new();
            // Sample a handful of (cur, prev) pairs per case.
            for cur in (0..g.num_vertices() as u32).step_by(17) {
                let prev = (cur * 31 + 7) % g.num_vertices() as u32;
                common_neighbor_mask(&g, cur, prev, &mut mask);
                for (i, &b) in g.neighbors(cur).iter().enumerate() {
                    proptest::prop_assert_eq!(mask[i], g.has_edge(prev, b));
                }
            }
        }
    }
}
