//! The engine-agnostic streaming execution layer: sessions and sinks.
//!
//! The paper's Query Controller keeps many walks in flight and emits
//! finished paths incrementally; this module is the host-side mirror of
//! that contract (DESIGN.md §6). A [`WalkEngine`] turns a [`QuerySet`]
//! into a [`WalkSession`]; the session executes in bounded batches
//! ([`WalkSession::advance`]) and pushes each completed path **exactly
//! once** into a [`WalkSink`], in query-id order. [`WalkResults`] is just
//! the default collecting sink — downstream consumers (SGNS training,
//! serving layers, the CLI) can process paths as they finish instead of
//! waiting for a fully materialized result set.
//!
//! All three engines implement the trait: the sequential
//! [`crate::ReferenceEngine`] (here), the ThunderRW-like CPU engine
//! (`lightrw-baseline`) and the accelerator model (`lightrw-hwsim`).
//! Batching never changes a sampled walk: a session consumes the RNG in
//! exactly the order the engine's monolithic `run` does, whatever
//! `max_steps` schedule drives it (`tests/engine_agreement.rs` pins this).
//!
//! ```
//! use lightrw_graph::GraphBuilder;
//! use lightrw_walker::engine::{WalkEngine, WalkEngineExt};
//! use lightrw_walker::{QuerySet, ReferenceEngine, SamplerKind, Uniform, WalkResults};
//!
//! let g = GraphBuilder::directed()
//!     .num_vertices(3)
//!     .edges(vec![(0, 1), (1, 2), (2, 0)])
//!     .build();
//! let engine = ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 1);
//! let queries = QuerySet::from_starts(vec![0, 1], 4);
//!
//! // Streaming: advance in 3-step batches, collecting into the default sink.
//! let mut results = WalkResults::new();
//! let mut session = engine.start_session(&queries);
//! while !session.finished() {
//!     let batch = session.advance(3, &mut results);
//!     assert!(batch.steps <= 3);
//! }
//! assert_eq!(results, engine.run(&queries)); // batching is invisible
//! ```

use crate::hotpath::HotStepper;
use crate::path::WalkResults;
use crate::program::{StepOutcome, WalkProgram, WalkState};
use crate::query::{Query, QuerySet};
use crate::reference::ReferenceEngine;
use lightrw_graph::VertexId;

/// A consumer of completed walk paths.
///
/// Sessions call [`WalkSink::emit`] once per finished path, in ascending
/// `query_id` order (ids are dense, starting at 0 within a session's
/// [`QuerySet`]). A path is final when emitted: it either reached its
/// requested length or dead-ended early (see [`Query::length`]), or the
/// session was cancelled with the walk still in flight.
pub trait WalkSink {
    /// Receive the completed path of query `query_id`.
    fn emit(&mut self, query_id: u32, path: &[VertexId]);
}

/// [`WalkResults`] is the default collecting sink: paths are appended in
/// emission order, which sessions guarantee is query-id order, so
/// `results.path(id)` indexing stays correct.
impl WalkSink for WalkResults {
    fn emit(&mut self, _query_id: u32, path: &[VertexId]) {
        self.push_path(path);
    }
}

/// Any `FnMut(u32, &[VertexId])` closure is a sink.
impl<F: FnMut(u32, &[VertexId])> WalkSink for F {
    fn emit(&mut self, query_id: u32, path: &[VertexId]) {
        self(query_id, path)
    }
}

/// A sink that counts without storing — used to verify the
/// one-emission-per-path guarantee and to size downstream buffers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Paths emitted.
    pub paths: usize,
    /// Steps across emitted paths (vertices minus one per path).
    pub steps: u64,
    /// Result bytes the emitted paths would occupy (the PCIe download
    /// accounting of `WalkResults::result_bytes`).
    pub bytes: u64,
}

impl WalkSink for CountingSink {
    fn emit(&mut self, _query_id: u32, path: &[VertexId]) {
        self.paths += 1;
        // Saturate rather than trust every emitter: in-repo sessions
        // always emit the start vertex, but the trait is a public seam.
        self.steps += (path.len() as u64).saturating_sub(1);
        self.bytes += std::mem::size_of_val(path) as u64;
    }
}

/// Progress of one [`WalkSession::advance`] or [`WalkSession::cancel`]
/// call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchProgress {
    /// Walk steps executed by this batch (successful samples; dead-end
    /// probes consume a visit but no step).
    pub steps: u64,
    /// Paths completed and emitted by this batch.
    pub paths_completed: usize,
    /// True when the session has emitted every path.
    pub finished: bool,
}

/// An in-flight execution of one [`QuerySet`] on one engine.
///
/// The batching contract (DESIGN.md §6):
///
/// - [`WalkSession::advance`] executes at most `max_steps` step attempts
///   *per internal worker lane* (the reference engine has one lane; the
///   CPU engine one per worker thread; the accelerator model counts
///   event-heap pops), then returns. `max_steps = 0` is clamped to 1 so
///   every call makes progress.
/// - Each completed path is emitted into the sink **exactly once**, in
///   query-id order; a path completed out of order is buffered until its
///   predecessors finish.
/// - [`WalkSession::cancel`] finalizes every unfinished walk at its
///   current position and emits it, preserving the one-emission
///   guarantee; the session is finished afterwards. This holds for the
///   **empty batch** too: cancelling before the first `advance` emits one
///   start-vertex-only path per query, with zero steps and (for modelled
///   engines) zero model time — identically on every backend
///   (`tests/engine_agreement.rs` pins the cross-engine equality).
/// - Batch boundaries never change sampled walks: the RNG draw order is
///   identical to the engine's monolithic `run` for every `max_steps`
///   schedule.
pub trait WalkSession {
    /// Execute up to `max_steps` step attempts per worker lane, emitting
    /// completed paths into `sink`.
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress;

    /// Terminate every in-flight walk where it stands and emit the
    /// partial paths (each still exactly once). Finished and idempotent
    /// afterwards.
    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress;

    /// True once every path has been emitted (by completion or
    /// cancellation).
    fn finished(&self) -> bool;

    /// Cumulative steps executed so far.
    fn steps_done(&self) -> u64;

    /// Cumulative paths emitted so far.
    fn paths_completed(&self) -> usize;

    /// Simulated seconds consumed so far, for engines with a timing model
    /// (the accelerator simulator); `None` for wall-clock engines.
    fn model_seconds(&self) -> Option<f64> {
        None
    }

    /// A short engine-specific diagnostic for operators (e.g. the sim's
    /// row-cache hit ratio, the CPU engine's worker count); `None` when
    /// the backend has nothing beyond the generic progress counters.
    fn diagnostics(&self) -> Option<String> {
        None
    }
}

/// An engine that executes walk queries in batched streaming sessions.
///
/// Object-safe on purpose: consumers (`lightrw_cli`, the cluster layer,
/// SGNS training) dispatch over `&dyn WalkEngine` and never know which
/// backend runs the walks.
pub trait WalkEngine {
    /// Engine label for reports and CLI output.
    fn label(&self) -> String;

    /// Begin executing `queries`. Sessions are independent: two sessions
    /// of one engine may interleave arbitrarily (all mutable walk state
    /// is per-session).
    fn start_session<'s>(&'s self, queries: &QuerySet) -> Box<dyn WalkSession + 's>;

    /// How many graph images this engine's host pushes over one PCIe
    /// link when deployed on a board — 1 for software engines; the
    /// multi-instance accelerator keeps one replica per DRAM channel
    /// (paper §6.1.5). Used by the cluster layer's upload model.
    fn graph_images(&self) -> u64 {
        1
    }
}

/// Convenience drivers over any [`WalkEngine`] (blanket-implemented, also
/// for `dyn WalkEngine`).
pub trait WalkEngineExt: WalkEngine {
    /// Run `queries` to completion, collecting paths in query-id order.
    fn run_collected(&self, queries: &QuerySet) -> WalkResults {
        let mut results = WalkResults::with_capacity(
            queries.len(),
            queries
                .queries()
                .first()
                .map_or(1, |q| q.length as usize + 1),
        );
        self.stream_into(queries, u64::MAX, &mut results);
        results
    }

    /// Run `queries` to completion in `max_steps` batches, emitting into
    /// `sink`; returns (total steps, simulated seconds if modelled).
    fn stream_into(
        &self,
        queries: &QuerySet,
        max_steps: u64,
        sink: &mut dyn WalkSink,
    ) -> (u64, Option<f64>) {
        let mut session = self.start_session(queries);
        while !session.finished() {
            session.advance(max_steps, sink);
        }
        (session.steps_done(), session.model_seconds())
    }
}

impl<E: WalkEngine + ?Sized> WalkEngineExt for E {}

/// Drive a set of sessions as interleaved bounded batches — the
/// multi-tenant multiplexing loop shared by the cluster layer, the CLI
/// driver and the mixed-engine bench. Each turn gives every unfinished
/// session one `advance(max_steps)` into its paired sink;
/// `observe(index, elapsed_seconds, progress)` runs after each advance
/// so callers can account per-session wall clock and batch counts.
/// Returns once every session is finished.
pub fn multiplex_sessions<'s>(
    sessions: &mut [Box<dyn WalkSession + 's>],
    sinks: &mut [&mut dyn WalkSink],
    max_steps: u64,
    mut observe: impl FnMut(usize, f64, BatchProgress),
) {
    assert_eq!(sessions.len(), sinks.len(), "one sink per session required");
    loop {
        let mut any = false;
        for (idx, (session, sink)) in sessions.iter_mut().zip(sinks.iter_mut()).enumerate() {
            if session.finished() {
                continue;
            }
            any = true;
            let t = std::time::Instant::now();
            let progress = session.advance(max_steps, &mut **sink);
            observe(idx, t.elapsed().as_secs_f64(), progress);
        }
        if !any {
            break;
        }
    }
}

/// Exactly-once, id-ordered emission bookkeeping for sessions whose
/// walkers finish out of order (interleaved worker lanes, event heaps).
///
/// The emitter owns only the watermark: the next query id to emit. Each
/// [`InOrderEmitter::drain`] call repeatedly asks the session for the path
/// of that id (`take_ready` returns `None` while it is still walking,
/// `Some(path)` exactly once when done — sessions `std::mem::take` the
/// buffer, which is what makes double emission structurally impossible)
/// and pushes it into the sink. Because the watermark only moves forward,
/// any interleaving of lane progress, batch boundaries and cancellation
/// yields each path exactly once, in ascending id order — the
/// [`WalkSink`] contract (DESIGN.md §6).
#[derive(Debug, Clone, Copy)]
pub struct InOrderEmitter {
    next: usize,
    total: usize,
}

impl InOrderEmitter {
    /// An emitter over query ids `0..total`.
    pub fn new(total: usize) -> Self {
        Self { next: 0, total }
    }

    /// Paths emitted so far (the watermark).
    pub fn emitted(&self) -> usize {
        self.next
    }

    /// True once every path has been emitted.
    pub fn finished(&self) -> bool {
        self.next >= self.total
    }

    /// Emit every ready path at the watermark: while `take_ready(id)`
    /// yields the finished path of the next id, hand it to `sink` and
    /// advance. Returns how many paths were emitted by this call.
    pub fn drain(
        &mut self,
        sink: &mut dyn WalkSink,
        mut take_ready: impl FnMut(usize) -> Option<Vec<VertexId>>,
    ) -> usize {
        let mut emitted = 0;
        while self.next < self.total {
            let Some(path) = take_ready(self.next) else {
                break;
            };
            sink.emit(self.next as u32, &path);
            self.next += 1;
            emitted += 1;
        }
        emitted
    }
}

// --- Reference engine session -------------------------------------------

/// Streaming session of the sequential [`ReferenceEngine`]: one query in
/// flight at a time, paths emitted the moment they complete — the fully
/// incremental end of the session spectrum (a single reusable path
/// buffer, no corpus materialization).
struct ReferenceSession<'s> {
    engine: &'s ReferenceEngine<'s>,
    stepper: HotStepper,
    program: WalkProgram,
    queries: Vec<Query>,
    /// Index of the in-flight query.
    qi: usize,
    /// The in-flight query's partial path (starts at its start vertex).
    path: Vec<VertexId>,
    /// The in-flight query's program state.
    st: WalkState,
    steps_done: u64,
}

impl<'s> ReferenceSession<'s> {
    fn new(engine: &'s ReferenceEngine<'s>, queries: &QuerySet) -> Self {
        let mut stepper = HotStepper::new(engine.app(), engine.sampler(), engine.seed());
        stepper.reserve(engine.graph().max_degree() as usize);
        let program = queries.program().clone();
        let queries = queries.queries().to_vec();
        let mut path = Vec::new();
        let mut st = WalkState::start(0);
        if let Some(q) = queries.first() {
            path.reserve(q.length as usize + 1);
            path.push(q.start);
            st = WalkState::start(q.start);
        }
        Self {
            engine,
            stepper,
            program,
            queries,
            qi: 0,
            path,
            st,
            steps_done: 0,
        }
    }

    /// Seal the in-flight query's path, emit it, and arm the next query.
    /// Emits the session-local index (dense from 0), not `Query::id` —
    /// the sink contract all engines share, which differs only for
    /// partitioned query sets (partitions keep their original ids).
    fn finish_current(&mut self, sink: &mut dyn WalkSink) {
        sink.emit(self.qi as u32, &self.path);
        self.qi += 1;
        self.path.clear();
        if let Some(q) = self.queries.get(self.qi) {
            self.path.push(q.start);
            self.st = WalkState::start(q.start);
        }
    }
}

impl WalkSession for ReferenceSession<'_> {
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let budget = max_steps.max(1);
        let mut progress = BatchProgress::default();
        let mut attempts = 0u64;
        while attempts < budget && self.qi < self.queries.len() {
            let q = self.queries[self.qi];
            attempts += 1;
            let outcome = self.program.step_attempt(
                self.engine.graph(),
                self.engine.app(),
                &mut self.stepper,
                &q,
                &mut self.st,
            );
            let done = match outcome {
                StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                    let v = outcome.appended(q.start).expect("advancing outcome");
                    self.path.push(v);
                    self.steps_done += 1;
                    progress.steps += 1;
                    done
                }
                StepOutcome::DeadEnd | StepOutcome::TargetAtStart => true,
            };
            if done {
                self.finish_current(sink);
                progress.paths_completed += 1;
            }
        }
        progress.finished = self.finished();
        progress
    }

    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress {
        let mut progress = BatchProgress::default();
        while self.qi < self.queries.len() {
            self.finish_current(sink);
            progress.paths_completed += 1;
        }
        progress.finished = true;
        progress
    }

    fn finished(&self) -> bool {
        self.qi >= self.queries.len()
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn paths_completed(&self) -> usize {
        self.qi
    }
}

impl WalkEngine for ReferenceEngine<'_> {
    fn label(&self) -> String {
        format!("reference({})", self.sampler().name())
    }

    fn start_session<'s>(&'s self, queries: &QuerySet) -> Box<dyn WalkSession + 's> {
        Box::new(ReferenceSession::new(self, queries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{MetaPath, Node2Vec, StaticWeighted, Uniform, WalkApp};
    use crate::reference::SamplerKind;
    use lightrw_graph::{generators, GraphBuilder};
    use lightrw_rng::{Rng, SplitMix64};

    const KINDS: [SamplerKind; 5] = [
        SamplerKind::InverseTransform,
        SamplerKind::Alias,
        SamplerKind::SequentialWrs,
        SamplerKind::ParallelWrs { k: 4 },
        SamplerKind::ParallelWrs { k: 16 },
    ];

    #[test]
    fn randomized_batches_match_monolithic_run_for_all_apps_and_kinds() {
        let g = generators::rmat_dataset(8, 17);
        let mp = MetaPath::new(vec![0, 1, 0]);
        let nv = Node2Vec::paper_params();
        let apps: [&dyn WalkApp; 4] = [&Uniform, &StaticWeighted, &mp, &nv];
        let qs = QuerySet::per_nonisolated_vertex(&g, 7, 3);
        let mut batch_rng = SplitMix64::new(99);
        for app in apps {
            for kind in KINDS {
                let engine = ReferenceEngine::new(&g, app, kind, 11);
                let whole = engine.run(&qs);
                let mut batched = WalkResults::new();
                let mut session = engine.start_session(&qs);
                while !session.finished() {
                    session.advance(1 + batch_rng.gen_range(13), &mut batched);
                }
                assert_eq!(whole, batched, "{} {:?}", app.name(), kind);
            }
        }
    }

    #[test]
    fn run_collected_equals_run() {
        let g = generators::rmat_dataset(7, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 2);
        let engine = ReferenceEngine::new(&g, &Uniform, SamplerKind::Alias, 4);
        assert_eq!(engine.run(&qs), engine.run_collected(&qs));
        // Through the object too.
        let dynamic: &dyn WalkEngine = &engine;
        assert_eq!(engine.run(&qs), dynamic.run_collected(&qs));
        assert!(dynamic.label().starts_with("reference("));
    }

    #[test]
    fn each_path_emitted_exactly_once_in_id_order() {
        let g = generators::rmat_dataset(7, 9);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 6);
        let engine = ReferenceEngine::new(&g, &StaticWeighted, SamplerKind::InverseTransform, 2);
        let mut session = engine.start_session(&qs);
        let mut seen = Vec::new();
        let mut sink = |id: u32, _path: &[VertexId]| seen.push(id);
        while !session.finished() {
            session.advance(5, &mut sink);
        }
        let expect: Vec<u32> = (0..qs.len() as u32).collect();
        assert_eq!(seen, expect);
        assert_eq!(session.paths_completed(), qs.len());
    }

    #[test]
    fn counting_sink_matches_results_accounting() {
        let g = generators::rmat_dataset(7, 4);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 1);
        let engine = ReferenceEngine::new(&g, &Uniform, SamplerKind::SequentialWrs, 8);
        let results = engine.run_collected(&qs);
        let mut counter = CountingSink::default();
        engine.stream_into(&qs, 16, &mut counter);
        assert_eq!(counter.paths, results.len());
        assert_eq!(counter.steps, results.total_steps());
        assert_eq!(counter.bytes, results.result_bytes());
    }

    #[test]
    fn cancel_emits_partial_paths_once_and_finishes() {
        // 3-cycle: walks never dead-end, so cancellation is the only way
        // to stop early.
        let g = GraphBuilder::directed()
            .num_vertices(3)
            .edges(vec![(0, 1), (1, 2), (2, 0)])
            .build();
        let qs = QuerySet::from_starts(vec![0, 1, 2], 50);
        let engine = ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 1);
        let mut session = engine.start_session(&qs);
        let mut results = WalkResults::new();
        session.advance(10, &mut results); // 10 steps into query 0
        assert!(!session.finished());
        let progress = session.cancel(&mut results);
        assert!(progress.finished);
        assert!(session.finished());
        assert_eq!(results.len(), 3, "every query emitted exactly once");
        assert_eq!(results.path(0).len(), 11, "partial path kept its steps");
        assert_eq!(results.path(1), &[1], "undispatched query = start only");
        // Idempotent: cancelling again emits nothing.
        let again = session.cancel(&mut results);
        assert_eq!(again.paths_completed, 0);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn cancel_before_first_advance_emits_start_only_paths() {
        // Empty-batch cancel (DESIGN.md §6): nothing has stepped, so the
        // partial flush is one start-vertex path per query, exactly once.
        let g = generators::rmat_dataset(7, 6);
        let qs = QuerySet::per_nonisolated_vertex(&g, 12, 5);
        let engine = ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 8);
        let mut session = engine.start_session(&qs);
        let mut results = WalkResults::new();
        let progress = session.cancel(&mut results);
        assert!(progress.finished);
        assert_eq!(progress.steps, 0);
        assert_eq!(progress.paths_completed, qs.len());
        assert_eq!(results.len(), qs.len());
        for (q, p) in qs.queries().iter().zip(results.iter()) {
            assert_eq!(p, &[q.start]);
        }
        assert_eq!(session.steps_done(), 0);
    }

    #[test]
    fn sessions_are_reentrant_on_one_engine() {
        let g = generators::rmat_dataset(7, 8);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 4);
        let engine = ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 3);
        let mut a = WalkResults::new();
        let mut b = WalkResults::new();
        let mut sa = engine.start_session(&qs);
        let mut sb = engine.start_session(&qs);
        // Interleave the two sessions; both must match the monolithic run.
        while !sa.finished() || !sb.finished() {
            sa.advance(3, &mut a);
            sb.advance(7, &mut b);
        }
        let whole = engine.run(&qs);
        assert_eq!(a, whole);
        assert_eq!(b, whole);
    }

    #[test]
    fn zero_max_steps_still_progresses() {
        let g = GraphBuilder::directed().edge(0, 1).build();
        let qs = QuerySet::from_starts(vec![0], 1);
        let engine = ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 1);
        let mut session = engine.start_session(&qs);
        let mut results = WalkResults::new();
        let progress = session.advance(0, &mut results);
        assert_eq!(progress.steps, 1, "max_steps=0 clamps to one attempt");
        assert!(progress.finished);
    }
}
