//! Walk-outcome analytics.
//!
//! Besides engine-health metrics (dead-end rate, coverage), this module
//! empirically checks the theory behind the degree-aware cache (paper
//! §5.1): the probability of a vertex being traversed follows a
//! stationary distribution with `Pr[v] = Ω(N(v))` — visit frequency grows
//! with degree. [`degree_visit_correlation`] measures exactly that on real
//! walk output, which is what justifies degree-based replacement.

use crate::path::WalkResults;
use lightrw_graph::{Graph, VertexId};

/// Aggregate statistics over a result set.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkStats {
    /// Number of walks.
    pub walks: usize,
    /// Steps actually taken.
    pub steps: u64,
    /// Fraction of walks that ended before their requested length
    /// (dead ends: no neighbor or all dynamic weights zero).
    pub dead_end_rate: f64,
    /// Distinct vertices visited / total vertices.
    pub coverage: f64,
    /// Mean path length (vertices per walk).
    pub mean_length: f64,
}

/// Compute [`WalkStats`] for walks of requested length `requested`.
pub fn walk_stats(g: &Graph, results: &WalkResults, requested: u32) -> WalkStats {
    let mut visited = vec![false; g.num_vertices()];
    let mut dead = 0usize;
    let mut total_len = 0u64;
    for p in results.iter() {
        total_len += p.len() as u64;
        if (p.len() as u32) < requested + 1 {
            dead += 1;
        }
        for &v in p {
            visited[v as usize] = true;
        }
    }
    let walks = results.len();
    WalkStats {
        walks,
        steps: results.total_steps(),
        dead_end_rate: if walks == 0 {
            0.0
        } else {
            dead as f64 / walks as f64
        },
        coverage: visited.iter().filter(|&&b| b).count() as f64 / g.num_vertices().max(1) as f64,
        mean_length: if walks == 0 {
            0.0
        } else {
            total_len as f64 / walks as f64
        },
    }
}

/// Per-vertex visit counts over a result set.
pub fn visit_counts(g: &Graph, results: &WalkResults) -> Vec<u64> {
    let mut counts = vec![0u64; g.num_vertices()];
    for p in results.iter() {
        for &v in p {
            counts[v as usize] += 1;
        }
    }
    counts
}

/// Pearson correlation between vertex degree and visit count — the
/// empirical check of the paper's Eq. 9–11 analysis. Strongly positive on
/// any graph with degree spread.
pub fn degree_visit_correlation(g: &Graph, results: &WalkResults) -> f64 {
    let counts = visit_counts(g, results);
    let degrees: Vec<f64> = (0..g.num_vertices() as VertexId)
        .map(|v| g.degree(v) as f64)
        .collect();
    let visits: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    lightrw_rng::stats::pearson(&degrees, &visits)
}

/// Share of all visits landing on the `top` highest-degree vertices — the
/// quantity a degree-aware cache of `top` entries can theoretically serve.
pub fn top_degree_visit_share(g: &Graph, results: &WalkResults, top: usize) -> f64 {
    let counts = visit_counts(g, results);
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let hot: u64 = order.iter().take(top).map(|&v| counts[v as usize]).sum();
    hot as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{StaticWeighted, Uniform};
    use crate::query::QuerySet;
    use crate::reference::{ReferenceEngine, SamplerKind};
    use lightrw_graph::{generators, GraphBuilder};

    fn run_uniform(g: &Graph, len: u32) -> WalkResults {
        let qs = QuerySet::per_nonisolated_vertex(g, len, 3);
        ReferenceEngine::new(g, &Uniform, SamplerKind::SequentialWrs, 7).run(&qs)
    }

    #[test]
    fn stats_on_complete_graph_have_no_dead_ends() {
        let g = generators::complete(12);
        let res = run_uniform(&g, 10);
        let s = walk_stats(&g, &res, 10);
        assert_eq!(s.walks, 12);
        assert_eq!(s.dead_end_rate, 0.0);
        assert_eq!(s.mean_length, 11.0);
        assert_eq!(s.coverage, 1.0);
        assert_eq!(s.steps, 120);
    }

    #[test]
    fn dead_ends_detected_on_dag() {
        // Directed path: every walk longer than the remaining suffix dead-ends.
        let g = GraphBuilder::directed().edges([(0, 1), (1, 2)]).build();
        let qs = QuerySet::from_starts(vec![0, 1], 5);
        let res = ReferenceEngine::new(&g, &Uniform, SamplerKind::SequentialWrs, 1).run(&qs);
        let s = walk_stats(&g, &res, 5);
        assert_eq!(s.dead_end_rate, 1.0);
    }

    #[test]
    fn visits_correlate_with_degree_on_skewed_graphs() {
        // The §5.1 claim: stationary visit frequency grows with degree.
        let g = generators::rmat_dataset(11, 5);
        let res = run_uniform(&g, 20);
        let r = degree_visit_correlation(&g, &res);
        assert!(r > 0.5, "degree-visit correlation only {r:.3}");
    }

    #[test]
    fn static_weighted_walks_also_favor_hubs() {
        let g = generators::rmat_dataset(10, 9);
        let qs = QuerySet::per_nonisolated_vertex(&g, 20, 5);
        let res = ReferenceEngine::new(&g, &StaticWeighted, SamplerKind::ParallelWrs { k: 8 }, 2)
            .run(&qs);
        let r = degree_visit_correlation(&g, &res);
        assert!(r > 0.5, "correlation {r:.3}");
    }

    #[test]
    fn top_degree_vertices_capture_visit_mass() {
        // A cache-sized set of hub vertices must absorb far more than its
        // population share of visits — the DAC's raison d'être.
        let g = generators::rmat_dataset(12, 4);
        let res = run_uniform(&g, 10);
        let top = g.num_vertices() / 16;
        let share = top_degree_visit_share(&g, &res, top);
        assert!(
            share > 3.0 * (top as f64 / g.num_vertices() as f64),
            "top-{top} share {share:.3} not concentrated"
        );
    }

    #[test]
    fn no_visits_is_zero_share() {
        let g = generators::ring(8, 1);
        let empty = WalkResults::new();
        assert_eq!(top_degree_visit_share(&g, &empty, 4), 0.0);
        let s = walk_stats(&g, &empty, 5);
        assert_eq!(s.walks, 0);
        assert_eq!(s.mean_length, 0.0);
    }
}
