//! The reference GDRW engine: the correctness oracle.
//!
//! A direct, single-threaded transcription of Algorithm 2.1 (table-based
//! samplers) / Algorithm 3.1 (reservoir samplers), generic over the
//! sampling method. Both the CPU baseline (`lightrw-baseline`) and the
//! accelerator model (`lightrw-hwsim`) are tested for distributional
//! agreement against this engine.

use crate::app::{WalkApp, FX_FRAC_BITS};
use crate::hotpath::HotStepper;
use crate::path::WalkResults;
use crate::program::{StepOutcome, WalkState};
use crate::query::QuerySet;
use lightrw_graph::Graph;
use lightrw_rng::{Rng, SplitMix64, StreamBank};
use lightrw_sampling::{reservoir, AliasScratch, ParallelWrs};

/// Which weighted sampling method the engine uses per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Inverse transformation sampling (ThunderRW's configuration).
    InverseTransform,
    /// Alias-method sampling.
    Alias,
    /// Sequential weighted reservoir sampling (integer acceptance test).
    SequentialWrs,
    /// The paper's parallel WRS with `k` lanes.
    ParallelWrs {
        /// Degree of parallelism.
        k: usize,
    },
    /// KnightKing-style envelope rejection sampling (related work, see
    /// PAPERS.md): second-order steps whose app advertises
    /// [`crate::app::WeightProfile::SecondOrderEnvelope`] propose from the
    /// static prefix cache and accept against the envelope — expected O(1)
    /// weight evaluations per step instead of O(degree). Everywhere else
    /// this kind behaves draw-for-draw like
    /// [`SamplerKind::InverseTransform`]. Explicit opt-in: its RNG stream
    /// is *not* draw-compatible with any other kind on enveloped steps, so
    /// walks differ bit-wise (while agreeing in distribution — the
    /// conformance suite checks exactly that).
    Rejection,
    /// A-ExpJ: Efraimidis–Espirakis reservoir sampling with exponential
    /// jumps (`lightrw_sampling::a_expj`). On prefix-cached static steps
    /// the jump is a binary search over the cumulative weights —
    /// expected O(log degree) per draw with no table build, the
    /// huge-adjacency-row fast path for out-of-core graphs
    /// (DESIGN.md §10). Like
    /// [`SamplerKind::Rejection`], an explicit opt-in: its RNG stream is
    /// not draw-compatible with any other kind (the conformance suite
    /// validates it distributionally).
    AExpJ,
}

impl SamplerKind {
    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            Self::InverseTransform => "inverse-transform".to_string(),
            Self::Alias => "alias".to_string(),
            Self::SequentialWrs => "sequential-wrs".to_string(),
            Self::ParallelWrs { k } => format!("parallel-wrs(k={k})"),
            Self::Rejection => "rejection".to_string(),
            Self::AExpJ => "a-expj".to_string(),
        }
    }
}

enum SamplerState {
    Table(SplitMix64, SamplerKind),
    Sequential(StreamBank),
    Parallel(ParallelWrs),
}

/// A serialized sampler stream position — the RNG half of a shard
/// hand-off record (DESIGN.md §11).
///
/// `seed` names the stream (decorrelator lanes and table scratch are
/// pure functions of it); `state`/`rows` pin the position inside it.
/// Table kinds carry the raw SplitMix64 Weyl state in `state` (`rows`
/// unused); bank kinds carry the shared MCG state plus the row counter.
/// [`AnySampler::import_stream`] restores the exact stream on any
/// sampler of the same [`SamplerKind`], reseeding first if the receiving
/// sampler was built from a different seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerStream {
    /// The construction seed of the stream.
    pub seed: u64,
    /// Raw generator state (SplitMix64 Weyl counter or shared MCG state).
    pub state: u64,
    /// Rows generated (bank kinds only; 0 for table kinds).
    pub rows: u64,
}

/// A ready-to-use weighted sampler of any [`SamplerKind`]: builds per-step
/// tables for the table-based kinds (into reusable scratch, so the
/// steady-state walk loop allocates nothing), streams for the reservoir
/// kinds. Shared by all three engines via [`HotStepper`].
///
/// Beyond the generic [`AnySampler::select_weighted_with`], two fast
/// entry points exist for the hot-path profiles (DESIGN.md §5):
/// [`AnySampler::select_uniform`] and [`AnySampler::select_prefix`]. Both
/// consume the RNG *identically* to the generic path on the weights they
/// stand in for, so engines may switch entry points per step without
/// changing a single sampled walk.
pub struct AnySampler {
    state: SamplerState,
    kind: SamplerKind,
    seed: u64,
    /// Inverse-transform cumulative scratch, reused across steps.
    cum: Vec<u64>,
    /// Vose alias build scratch, reused across steps.
    alias: AliasScratch,
}

impl AnySampler {
    /// Instantiate a sampler of the given kind.
    pub fn new(kind: SamplerKind, seed: u64) -> Self {
        Self {
            state: Self::build_state(kind, seed),
            kind,
            seed,
            cum: Vec::new(),
            alias: AliasScratch::new(),
        }
    }

    fn build_state(kind: SamplerKind, seed: u64) -> SamplerState {
        match kind {
            SamplerKind::InverseTransform
            | SamplerKind::Alias
            | SamplerKind::Rejection
            | SamplerKind::AExpJ => SamplerState::Table(SplitMix64::new(seed), kind),
            SamplerKind::SequentialWrs => SamplerState::Sequential(StreamBank::new(seed, 1)),
            SamplerKind::ParallelWrs { k } => SamplerState::Parallel(ParallelWrs::new(seed, k)),
        }
    }

    /// Capture this sampler's stream position for hand-off serialization
    /// (DESIGN.md §11). The capture is a plain-data triple; restoring it
    /// with [`AnySampler::import_stream`] on any sampler of the same kind
    /// resumes the stream exactly.
    pub fn export_stream(&self) -> SamplerStream {
        let (state, rows) = match &self.state {
            SamplerState::Table(rng, _) => (rng.state(), 0),
            SamplerState::Sequential(bank) => bank.stream_state(),
            SamplerState::Parallel(wrs) => wrs.stream_state(),
        };
        SamplerStream {
            seed: self.seed,
            state,
            rows,
        }
    }

    /// Resume a stream captured by [`AnySampler::export_stream`]. If the
    /// capture came from a different construction seed, the sampler is
    /// reseeded first (bank kinds rebuild their seed-derived decorrelator
    /// lanes), then the raw position is installed — so a walker's stream
    /// continues bit-exactly on whichever shard's sampler it lands on.
    pub fn import_stream(&mut self, stream: &SamplerStream) {
        if stream.seed != self.seed {
            // Rebuild the generator state only; table/alias scratch is
            // seed-independent and keeps its capacity.
            self.state = Self::build_state(self.kind, stream.seed);
            self.seed = stream.seed;
        }
        match &mut self.state {
            SamplerState::Table(rng, _) => *rng = SplitMix64::new(stream.state),
            SamplerState::Sequential(bank) => bank.restore_stream(stream.state, stream.rows),
            SamplerState::Parallel(wrs) => wrs.restore_stream(stream.state, stream.rows),
        }
    }

    /// Pre-size the table scratch for candidate sets up to `n` — worker
    /// setup, so the step loop never grows a buffer.
    pub fn reserve(&mut self, n: usize) {
        match &self.state {
            SamplerState::Table(_, SamplerKind::InverseTransform | SamplerKind::Rejection) => {
                self.cum.reserve(n)
            }
            SamplerState::Table(_, SamplerKind::Alias) => self.alias.reserve(n),
            _ => {}
        }
    }

    /// Draw an index with probability proportional to `weights[i]`;
    /// `None` when all weights are zero (dead end).
    pub fn select_index(&mut self, weights: &[u32]) -> Option<usize> {
        self.select_weighted_with(weights.len(), |i| weights[i])
    }

    /// Streaming selection: weights are produced lane by lane from `w(i)`
    /// — the fused weight-calculation + sampling pass of Alg. 4.1 — so no
    /// caller ever materializes a weight vector. Reservoir kinds consume
    /// the stream directly; table kinds accumulate into internal scratch.
    /// Draw-for-draw identical to [`AnySampler::select_index`] on the same
    /// weights.
    pub fn select_weighted_with(&mut self, len: usize, w: impl Fn(usize) -> u32) -> Option<usize> {
        let Self {
            state, cum, alias, ..
        } = self;
        match state {
            SamplerState::Table(rng, SamplerKind::InverseTransform | SamplerKind::Rejection) => {
                cum.clear();
                let mut acc = 0u64;
                for i in 0..len {
                    acc += w(i) as u64;
                    cum.push(acc);
                }
                if acc == 0 {
                    return None;
                }
                let r = rng.gen_range(acc);
                Some(cum.partition_point(|&c| c <= r))
            }
            SamplerState::Table(rng, SamplerKind::Alias) => {
                if !alias.rebuild(len, w) {
                    return None;
                }
                Some(alias.sample(rng))
            }
            SamplerState::Table(rng, SamplerKind::AExpJ) => {
                lightrw_sampling::a_expj::select_index_with(rng, len, w)
            }
            SamplerState::Table(..) => unreachable!("table state built for table kinds only"),
            SamplerState::Sequential(bank) => reservoir::select_integer((0..len).map(w), bank),
            SamplerState::Parallel(wrs) => wrs.select_index_with(len, w),
        }
    }

    /// Degree-indexed uniform fast path: all `len` candidates share the
    /// same `weight`. For the table kinds this is O(1)/O(log 1) instead of
    /// an O(len) table build; reservoir kinds delegate to the stream (they
    /// must draw per lane regardless). RNG consumption is identical to
    /// [`AnySampler::select_weighted_with`] with a constant closure, which
    /// for the alias kind requires `weight` to be a power of two (the Vose
    /// scaling is then exactly 1.0 per slot) — other weights fall back to
    /// the generic path. Engines pass `FX_ONE`.
    pub fn select_uniform(&mut self, len: usize, weight: u32) -> Option<usize> {
        match &mut self.state {
            SamplerState::Table(rng, SamplerKind::InverseTransform | SamplerKind::Rejection) => {
                if len == 0 || weight == 0 {
                    return None; // parity: generic path draws nothing on zero total
                }
                let r = rng.gen_range(len as u64 * weight as u64);
                return Some((r / weight as u64) as usize);
            }
            SamplerState::Table(rng, SamplerKind::AExpJ) => {
                // Implicit-binary-search jumps: O(log len), bit-identical
                // to the generic stream on constant weights.
                return lightrw_sampling::a_expj::select_uniform(rng, len, weight);
            }
            SamplerState::Table(rng, SamplerKind::Alias) if weight.is_power_of_two() && len > 0 => {
                // Equal power-of-two weights scale to exactly 1.0 per Vose
                // slot, so the column draw decides and the coin always
                // accepts; the coin flip is still drawn for RNG parity.
                let slot = rng.gen_index(len);
                let _ = rng.next_f64();
                return Some(slot);
            }
            _ => {}
        }
        self.select_weighted_with(len, |_| weight)
    }

    /// Prefix-cache fast path: select over the *static* weights whose
    /// per-vertex inclusive cumulative sums are `cumulative` (from
    /// `Graph::static_prefix` / `Graph::relation_prefix`), with each
    /// weight promoted by `FX_FRAC_BITS` as `StaticWeighted`/`MetaPath`
    /// do. Inverse transform becomes a single binary search; other kinds
    /// stream the adjacent differences. RNG-identical to the generic path
    /// over the promoted weights (the cache is only built when no
    /// promotion can wrap — `MAX_PREFIX_STATIC_WEIGHT`).
    pub fn select_prefix(&mut self, cumulative: &[u64]) -> Option<usize> {
        let total = match cumulative.last() {
            Some(&t) => t,
            None => return None,
        };
        if let SamplerState::Table(rng, SamplerKind::InverseTransform | SamplerKind::Rejection) =
            &mut self.state
        {
            if total == 0 {
                return None;
            }
            let r = rng.gen_range(total << FX_FRAC_BITS);
            return Some(cumulative.partition_point(|&c| (c << FX_FRAC_BITS) <= r));
        }
        if let SamplerState::Table(rng, SamplerKind::AExpJ) = &mut self.state {
            // Exponential jumps by binary search over the cumulative
            // array: expected O(log degree) RNG draws and comparisons,
            // never an O(degree) pass — the huge-row path A-ExpJ exists
            // for. Bit-identical to the streaming fallback below.
            return lightrw_sampling::a_expj::select_prefix(rng, cumulative, FX_FRAC_BITS);
        }
        self.select_weighted_with(cumulative.len(), |i| {
            let prev = if i == 0 { 0 } else { cumulative[i - 1] };
            ((cumulative[i] - prev) as u32) << FX_FRAC_BITS
        })
    }

    /// Second-order envelope entry point (DESIGN.md §9): draw an index
    /// with probability proportional to `weight_of(i)`, where `cumulative`
    /// is the candidate row's inclusive static prefix (from
    /// `Graph::static_prefix`) and the app guarantees the
    /// [`crate::app::WeightProfile::SecondOrderEnvelope`] bound
    /// `weight_of(i) ≤ static_i · max_weight`.
    ///
    /// [`SamplerKind::Rejection`] runs the bounded accept/reject loop
    /// (expected O(1) `weight_of` evaluations; two draws per round — see
    /// `lightrw_sampling::rejection`), finishing a statistically
    /// negligible exhausted step with one exact streaming pass. Every
    /// other kind ignores the envelope and evaluates all candidates,
    /// draw-for-draw identical to [`AnySampler::select_weighted_with`].
    pub fn select_envelope(
        &mut self,
        cumulative: &[u64],
        max_weight: u32,
        weight_of: impl Fn(usize) -> u32,
    ) -> Option<usize> {
        use lightrw_sampling::rejection::{self, RejectionOutcome};
        if let SamplerState::Table(rng, SamplerKind::Rejection) = &mut self.state {
            match rejection::select_from_prefix(
                rng,
                cumulative,
                max_weight,
                rejection::MAX_REJECTION_ROUNDS,
                &weight_of,
            ) {
                RejectionOutcome::Accepted(i) => return Some(i),
                RejectionOutcome::DeadEnd => return None,
                // Pathological acceptance rate (e.g. every dynamic weight
                // zero): finish exactly, keeping the step unbiased and the
                // per-step draw count bounded.
                RejectionOutcome::Exhausted => {}
            }
        }
        self.select_weighted_with(cumulative.len(), weight_of)
    }

    /// Draw one 32-bit uniform from this sampler's own stream — the walk
    /// program *control draw* (DESIGN.md §8). Each kind taps the stream it
    /// already owns (table kinds: the scalar RNG; reservoir kinds: lane 0
    /// of the bank, one row like any sampling cycle), so the draw is
    /// deterministic per seed and interleaves with the sampling draws in a
    /// fixed, documented order. Programs that cannot restart never call
    /// this, which is what keeps fixed-length walks bit-identical to the
    /// pre-program engines.
    #[inline]
    pub fn control_draw(&mut self) -> u32 {
        match &mut self.state {
            SamplerState::Table(rng, _) => rng.next_u32(),
            SamplerState::Sequential(bank) => bank.next_u32_lane(0),
            SamplerState::Parallel(wrs) => wrs.control_draw(),
        }
    }

    /// Bytes of intermediate table state the kind materializes per step for
    /// `n` candidates (0 for the streaming reservoir kinds) — the paper's
    /// Inefficiency 1 accounting, used by the Table 1 profiling proxy.
    pub fn table_bytes(kind: SamplerKind, n: usize) -> u64 {
        match kind {
            SamplerKind::InverseTransform => 8 * n as u64,
            SamplerKind::Alias => 12 * n as u64, // prob f64/f32 + alias u32
            // Rejection's fast path materializes nothing (the prefix cache
            // is shared graph state, not per-step scratch); its exact
            // fallback is too rare to charge.
            SamplerKind::SequentialWrs
            | SamplerKind::ParallelWrs { .. }
            | SamplerKind::Rejection
            | SamplerKind::AExpJ => 0,
        }
    }
}

/// Sequential reference engine over any sampler.
pub struct ReferenceEngine<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    sampler: SamplerKind,
    seed: u64,
}

impl<'g> ReferenceEngine<'g> {
    /// Create an engine for `app` on `graph` using `sampler`.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, sampler: SamplerKind, seed: u64) -> Self {
        Self {
            graph,
            app,
            sampler,
            seed,
        }
    }

    /// The graph this engine walks.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The application whose weight function drives the walks.
    pub fn app(&self) -> &'g dyn WalkApp {
        self.app
    }

    /// The configured sampler kind.
    pub fn sampler(&self) -> SamplerKind {
        self.sampler
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Execute all queries sequentially, returning their paths in query-id
    /// order. Each step attempt runs the query set's
    /// [`crate::program::WalkProgram`] state machine — control decision
    /// (restart draw, target halt), then one fused weight-calculation +
    /// sampling pass through [`HotStepper`] — so fixed-length programs
    /// reproduce Algorithm 2.1 exactly (dead ends truncate, as in its
    /// `is_end`) and richer programs share the identical hot path.
    pub fn run(&self, queries: &QuerySet) -> WalkResults {
        let mut results = WalkResults::with_capacity(
            queries.len(),
            queries
                .queries()
                .first()
                .map_or(1, |q| q.length as usize + 1),
        );
        let mut stepper = HotStepper::new(self.app, self.sampler, self.seed);
        stepper.reserve(self.graph.max_degree() as usize);
        let program = queries.program();

        for q in queries.queries() {
            let mut st = WalkState::start(q.start);
            results.push_vertex(q.start);
            while st.taken < q.length {
                match program.step_attempt(self.graph, self.app, &mut stepper, q, &mut st) {
                    StepOutcome::Moved { next, done } => {
                        results.push_vertex(next);
                        if done {
                            break;
                        }
                    }
                    StepOutcome::Teleported { done, .. } => {
                        results.push_vertex(q.start);
                        if done {
                            break;
                        }
                    }
                    StepOutcome::DeadEnd | StepOutcome::TargetAtStart => break,
                }
            }
            results.end_path();
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{MetaPath, Node2Vec, Uniform};
    use crate::path::validate_path;
    use lightrw_graph::{generators, GraphBuilder};
    use lightrw_rng::stats::{chi_square_counts, chi_square_crit_999};

    const ALL_SAMPLERS: [SamplerKind; 7] = [
        SamplerKind::InverseTransform,
        SamplerKind::Alias,
        SamplerKind::SequentialWrs,
        SamplerKind::ParallelWrs { k: 4 },
        SamplerKind::ParallelWrs { k: 16 },
        SamplerKind::Rejection,
        SamplerKind::AExpJ,
    ];

    #[test]
    fn uniform_walk_paths_are_valid_for_all_samplers() {
        let g = generators::rmat_dataset(8, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 10, 7);
        for sk in ALL_SAMPLERS {
            let eng = ReferenceEngine::new(&g, &Uniform, sk, 99);
            let res = eng.run(&qs);
            assert_eq!(res.len(), qs.len(), "{}", sk.name());
            for p in res.iter() {
                validate_path(&g, &Uniform, p)
                    .unwrap_or_else(|e| panic!("{}: invalid path {:?}: {:?}", sk.name(), p, e));
            }
        }
    }

    #[test]
    fn metapath_paths_follow_relations() {
        let g = generators::rmat_dataset(8, 5);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 3);
        let eng = ReferenceEngine::new(&g, &mp, SamplerKind::ParallelWrs { k: 8 }, 5);
        let res = eng.run(&qs);
        let mut advanced = 0usize;
        for p in res.iter() {
            validate_path(&g, &mp, p).expect("invalid metapath walk");
            if p.len() > 1 {
                advanced += 1;
            }
        }
        // With 4 relation labels, plenty of walks must advance at least one step.
        assert!(advanced > res.len() / 10, "only {advanced} walks advanced");
    }

    #[test]
    fn node2vec_paths_are_valid() {
        let g = generators::rmat_dataset(8, 6);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::n_queries(&g, 64, 20, 4);
        for sk in [
            SamplerKind::InverseTransform,
            SamplerKind::ParallelWrs { k: 8 },
        ] {
            let eng = ReferenceEngine::new(&g, &nv, sk, 13);
            let res = eng.run(&qs);
            for p in res.iter() {
                validate_path(&g, &nv, p).expect("invalid node2vec walk");
            }
        }
    }

    #[test]
    fn dead_end_terminates_early() {
        // Directed path 0 -> 1 -> 2 with no outgoing edge from 2.
        let g = GraphBuilder::directed().edges([(0, 1), (1, 2)]).build();
        let qs = QuerySet::from_starts(vec![0], 10);
        let eng = ReferenceEngine::new(&g, &Uniform, SamplerKind::SequentialWrs, 1);
        let res = eng.run(&qs);
        assert_eq!(res.path(0), &[0, 1, 2]);
    }

    #[test]
    fn impossible_relation_stops_at_start() {
        let g = GraphBuilder::undirected().labeled_edge(0, 1, 1, 2).build();
        let mp = MetaPath::new(vec![7]); // relation 7 never occurs
        let qs = QuerySet::from_starts(vec![0], 5);
        let eng = ReferenceEngine::new(&g, &mp, SamplerKind::InverseTransform, 1);
        let res = eng.run(&qs);
        assert_eq!(res.path(0), &[0]);
    }

    #[test]
    fn all_samplers_agree_on_single_step_distribution() {
        // Vertex 0 with weighted neighbors 1..=4 (weights 1,2,3,4): run
        // many single-step walks and compare against the exact
        // distribution for every sampler.
        let g = GraphBuilder::directed()
            .weighted_edges([(0, 1, 1), (0, 2, 2), (0, 3, 3), (0, 4, 4)])
            .num_vertices(5)
            .build();
        let n = 40_000;
        let qs = QuerySet::from_starts(vec![0; n], 1);
        for sk in ALL_SAMPLERS {
            let eng = ReferenceEngine::new(&g, &crate::app::StaticWeighted, sk, 21);
            let res = eng.run(&qs);
            let mut counts = [0u64; 4];
            for p in res.iter() {
                assert_eq!(p.len(), 2);
                counts[(p[1] - 1) as usize] += 1;
            }
            let chi2 = chi_square_counts(&counts, &[1.0, 2.0, 3.0, 4.0]);
            let crit = chi_square_crit_999(3) * 1.2;
            assert!(chi2 < crit, "{}: chi2={chi2:.1}", sk.name());
        }
    }

    #[test]
    fn node2vec_second_step_distribution_is_correct() {
        // prev=0, cur=1; N(1) = {0, 2, 3}; 2 is a common neighbor of 0,
        // 3 is not. With unit static weights, p=2, q=0.5:
        //   w(back to 0)   = 1/p = 0.5
        //   w(common 2)    = 1
        //   w(far 3)       = 1/q = 2
        // Force the first hop 0→1 by making 1 the only neighbor of 0... but
        // 0-2 must exist for 2 to be a common neighbor. Give edge (0,1)
        // weight 1000 and (0,2) weight 1 so nearly all walks go 0→1 first.
        let g = GraphBuilder::undirected()
            .weighted_edge(0, 1, 1000)
            .weighted_edge(1, 2, 1)
            .weighted_edge(1, 3, 1)
            .weighted_edge(0, 2, 1)
            .build();
        // Static weights would bias the second step, so use unit-weight
        // Node2Vec semantics: rebuild with all weights 1 but keep the shape,
        // and instead start walks at 1 with a forced prev via two-step walks
        // from 0. Simpler: sample two-step walks from 0 and condition on
        // path[1] == 1.
        let g = {
            let mut b = GraphBuilder::undirected();
            for (u, v, w) in [(0u32, 1u32, 50u32), (1, 2, 1), (1, 3, 1), (0, 2, 1)] {
                b = b.weighted_edge(u, v, w);
            }
            let _ = g;
            b.build()
        };
        let nv = Node2Vec::paper_params();
        let n = 60_000;
        let qs = QuerySet::from_starts(vec![0; n], 2);
        // ParallelWrs streams every candidate; Rejection proposes from the
        // prefix cache and accepts against the p/q envelope. Both must
        // match the closed-form law (the rejection kind is validated by
        // conformance, not bit-equality — DESIGN.md §9).
        for sk in [SamplerKind::ParallelWrs { k: 4 }, SamplerKind::Rejection] {
            let eng = ReferenceEngine::new(&g, &nv, sk, 31);
            let res = eng.run(&qs);
            let mut counts = [0u64; 3]; // second hop to 0, 2, 3
            for p in res.iter() {
                if p.len() == 3 && p[1] == 1 {
                    match p[2] {
                        0 => counts[0] += 1,
                        2 => counts[1] += 1,
                        3 => counts[2] += 1,
                        other => panic!("impossible second hop {other}"),
                    }
                }
            }
            // Second step from cur=1, prev=0 over neighbors {0,2,3} with
            // static weights {50,1,1}: w = {50/p, 1 (common), 1/q} =
            // {25, 1, 2}.
            let expected = [25.0, 1.0, 2.0];
            let total: u64 = counts.iter().sum();
            assert!(total > n as u64 / 2, "conditioning kept too few walks");
            let chi2 = chi_square_counts(&counts, &expected);
            let crit = chi_square_crit_999(2) * 1.2;
            assert!(
                chi2 < crit,
                "{}: chi2={chi2:.1} counts={counts:?}",
                sk.name()
            );
        }
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let g = generators::rmat_dataset(7, 2);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 2);
        let nv = Node2Vec::paper_params();
        let a = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 8 }, 5).run(&qs);
        let b = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 8 }, 5).run(&qs);
        let c = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 8 }, 6).run(&qs);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
