//! The reference GDRW engine: the correctness oracle.
//!
//! A direct, single-threaded transcription of Algorithm 2.1 (table-based
//! samplers) / Algorithm 3.1 (reservoir samplers), generic over the
//! sampling method. Both the CPU baseline (`lightrw-baseline`) and the
//! accelerator model (`lightrw-hwsim`) are tested for distributional
//! agreement against this engine.

use crate::app::{StepContext, WalkApp};
use crate::membership::common_neighbor_mask;
use crate::path::WalkResults;
use crate::query::QuerySet;
use lightrw_graph::{Graph, VertexId};
use lightrw_rng::{SplitMix64, StreamBank};
use lightrw_sampling::{reservoir, AliasTable, IndexSampler, InverseTransformTable, ParallelWrs};

/// Which weighted sampling method the engine uses per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Inverse transformation sampling (ThunderRW's configuration).
    InverseTransform,
    /// Alias-method sampling.
    Alias,
    /// Sequential weighted reservoir sampling (integer acceptance test).
    SequentialWrs,
    /// The paper's parallel WRS with `k` lanes.
    ParallelWrs {
        /// Degree of parallelism.
        k: usize,
    },
}

impl SamplerKind {
    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            Self::InverseTransform => "inverse-transform".to_string(),
            Self::Alias => "alias".to_string(),
            Self::SequentialWrs => "sequential-wrs".to_string(),
            Self::ParallelWrs { k } => format!("parallel-wrs(k={k})"),
        }
    }
}

enum SamplerState {
    Table(SplitMix64, SamplerKind),
    Sequential(StreamBank),
    Parallel(ParallelWrs),
}

/// A ready-to-use weighted sampler of any [`SamplerKind`]: builds per-step
/// tables for the table-based kinds, streams for the reservoir kinds.
/// Shared by the reference engine and the CPU baseline.
pub struct AnySampler {
    state: SamplerState,
}

impl AnySampler {
    /// Instantiate a sampler of the given kind.
    pub fn new(kind: SamplerKind, seed: u64) -> Self {
        let state = match kind {
            SamplerKind::InverseTransform | SamplerKind::Alias => {
                SamplerState::Table(SplitMix64::new(seed), kind)
            }
            SamplerKind::SequentialWrs => SamplerState::Sequential(StreamBank::new(seed, 1)),
            SamplerKind::ParallelWrs { k } => SamplerState::Parallel(ParallelWrs::new(seed, k)),
        };
        Self { state }
    }

    /// Draw an index with probability proportional to `weights[i]`;
    /// `None` when all weights are zero (dead end).
    pub fn select_index(&mut self, weights: &[u32]) -> Option<usize> {
        match &mut self.state {
            SamplerState::Table(rng, SamplerKind::InverseTransform) => {
                InverseTransformTable::build(weights).map(|t| t.sample(rng))
            }
            SamplerState::Table(rng, SamplerKind::Alias) => {
                AliasTable::build(weights).map(|t| t.sample(rng))
            }
            SamplerState::Table(..) => unreachable!("table state built for table kinds only"),
            SamplerState::Sequential(bank) => {
                reservoir::select_integer(weights.iter().copied(), bank)
            }
            SamplerState::Parallel(wrs) => wrs.select_index(weights),
        }
    }

    /// Bytes of intermediate table state the kind materializes per step for
    /// `n` candidates (0 for the streaming reservoir kinds) — the paper's
    /// Inefficiency 1 accounting, used by the Table 1 profiling proxy.
    pub fn table_bytes(kind: SamplerKind, n: usize) -> u64 {
        match kind {
            SamplerKind::InverseTransform => 8 * n as u64,
            SamplerKind::Alias => 12 * n as u64, // prob f64/f32 + alias u32
            SamplerKind::SequentialWrs | SamplerKind::ParallelWrs { .. } => 0,
        }
    }
}

/// Sequential reference engine over any sampler.
pub struct ReferenceEngine<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    sampler: SamplerKind,
    seed: u64,
}

impl<'g> ReferenceEngine<'g> {
    /// Create an engine for `app` on `graph` using `sampler`.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, sampler: SamplerKind, seed: u64) -> Self {
        Self {
            graph,
            app,
            sampler,
            seed,
        }
    }

    /// Execute all queries sequentially, returning their paths in query-id
    /// order. Walks that reach a dead end (all candidate weights zero, or
    /// no neighbors) terminate early with a shorter path, as in
    /// Algorithm 2.1's `is_end`.
    pub fn run(&self, queries: &QuerySet) -> WalkResults {
        let mut results = WalkResults::with_capacity(
            queries.len(),
            queries
                .queries()
                .first()
                .map_or(1, |q| q.length as usize + 1),
        );
        let mut state = AnySampler::new(self.sampler, self.seed);
        let mut weights: Vec<u32> = Vec::new();
        let mut mask: Vec<bool> = Vec::new();

        for q in queries.queries() {
            let mut cur = q.start;
            let mut prev: Option<VertexId> = None;
            results.push_vertex(cur);
            for step in 0..q.length {
                match self.step(cur, prev, step, &mut state, &mut weights, &mut mask) {
                    Some(next) => {
                        results.push_vertex(next);
                        prev = Some(cur);
                        cur = next;
                    }
                    None => break, // dead end
                }
            }
            results.end_path();
        }
        results
    }

    /// One step of Algorithm 3.1: weight_calculation fused with
    /// weighted_sampling.
    fn step(
        &self,
        cur: VertexId,
        prev: Option<VertexId>,
        step: u32,
        state: &mut AnySampler,
        weights: &mut Vec<u32>,
        mask: &mut Vec<bool>,
    ) -> Option<VertexId> {
        let g = self.graph;
        let neighbors = g.neighbors(cur);
        if neighbors.is_empty() {
            return None;
        }
        // Second-order membership (Node2Vec only).
        let need_mask = self.app.second_order() && prev.is_some();
        if need_mask {
            common_neighbor_mask(g, cur, prev.unwrap(), mask);
        }
        let ctx = StepContext { step, cur, prev };
        let statics = g.neighbor_weights(cur);
        let relations = g.neighbor_relations(cur);
        weights.clear();
        weights.reserve(neighbors.len());
        for (i, &nbr) in neighbors.iter().enumerate() {
            let relation = relations.get(i).copied().unwrap_or(0);
            let pin = need_mask && mask[i];
            weights.push(self.app.weight(ctx, nbr, statics[i], relation, pin));
        }
        state.select_index(weights).map(|i| neighbors[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{MetaPath, Node2Vec, Uniform};
    use crate::path::validate_path;
    use lightrw_graph::{generators, GraphBuilder};
    use lightrw_rng::stats::{chi_square_counts, chi_square_crit_999};

    const ALL_SAMPLERS: [SamplerKind; 5] = [
        SamplerKind::InverseTransform,
        SamplerKind::Alias,
        SamplerKind::SequentialWrs,
        SamplerKind::ParallelWrs { k: 4 },
        SamplerKind::ParallelWrs { k: 16 },
    ];

    #[test]
    fn uniform_walk_paths_are_valid_for_all_samplers() {
        let g = generators::rmat_dataset(8, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 10, 7);
        for sk in ALL_SAMPLERS {
            let eng = ReferenceEngine::new(&g, &Uniform, sk, 99);
            let res = eng.run(&qs);
            assert_eq!(res.len(), qs.len(), "{}", sk.name());
            for p in res.iter() {
                validate_path(&g, &Uniform, p)
                    .unwrap_or_else(|e| panic!("{}: invalid path {:?}: {:?}", sk.name(), p, e));
            }
        }
    }

    #[test]
    fn metapath_paths_follow_relations() {
        let g = generators::rmat_dataset(8, 5);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 3);
        let eng = ReferenceEngine::new(&g, &mp, SamplerKind::ParallelWrs { k: 8 }, 5);
        let res = eng.run(&qs);
        let mut advanced = 0usize;
        for p in res.iter() {
            validate_path(&g, &mp, p).expect("invalid metapath walk");
            if p.len() > 1 {
                advanced += 1;
            }
        }
        // With 4 relation labels, plenty of walks must advance at least one step.
        assert!(advanced > res.len() / 10, "only {advanced} walks advanced");
    }

    #[test]
    fn node2vec_paths_are_valid() {
        let g = generators::rmat_dataset(8, 6);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::n_queries(&g, 64, 20, 4);
        for sk in [
            SamplerKind::InverseTransform,
            SamplerKind::ParallelWrs { k: 8 },
        ] {
            let eng = ReferenceEngine::new(&g, &nv, sk, 13);
            let res = eng.run(&qs);
            for p in res.iter() {
                validate_path(&g, &nv, p).expect("invalid node2vec walk");
            }
        }
    }

    #[test]
    fn dead_end_terminates_early() {
        // Directed path 0 -> 1 -> 2 with no outgoing edge from 2.
        let g = GraphBuilder::directed().edges([(0, 1), (1, 2)]).build();
        let qs = QuerySet::from_starts(vec![0], 10);
        let eng = ReferenceEngine::new(&g, &Uniform, SamplerKind::SequentialWrs, 1);
        let res = eng.run(&qs);
        assert_eq!(res.path(0), &[0, 1, 2]);
    }

    #[test]
    fn impossible_relation_stops_at_start() {
        let g = GraphBuilder::undirected().labeled_edge(0, 1, 1, 2).build();
        let mp = MetaPath::new(vec![7]); // relation 7 never occurs
        let qs = QuerySet::from_starts(vec![0], 5);
        let eng = ReferenceEngine::new(&g, &mp, SamplerKind::InverseTransform, 1);
        let res = eng.run(&qs);
        assert_eq!(res.path(0), &[0]);
    }

    #[test]
    fn all_samplers_agree_on_single_step_distribution() {
        // Vertex 0 with weighted neighbors 1..=4 (weights 1,2,3,4): run
        // many single-step walks and compare against the exact
        // distribution for every sampler.
        let g = GraphBuilder::directed()
            .weighted_edges([(0, 1, 1), (0, 2, 2), (0, 3, 3), (0, 4, 4)])
            .num_vertices(5)
            .build();
        let n = 40_000;
        let qs = QuerySet::from_starts(vec![0; n], 1);
        for sk in ALL_SAMPLERS {
            let eng = ReferenceEngine::new(&g, &crate::app::StaticWeighted, sk, 21);
            let res = eng.run(&qs);
            let mut counts = [0u64; 4];
            for p in res.iter() {
                assert_eq!(p.len(), 2);
                counts[(p[1] - 1) as usize] += 1;
            }
            let chi2 = chi_square_counts(&counts, &[1.0, 2.0, 3.0, 4.0]);
            let crit = chi_square_crit_999(3) * 1.2;
            assert!(chi2 < crit, "{}: chi2={chi2:.1}", sk.name());
        }
    }

    #[test]
    fn node2vec_second_step_distribution_is_correct() {
        // prev=0, cur=1; N(1) = {0, 2, 3}; 2 is a common neighbor of 0,
        // 3 is not. With unit static weights, p=2, q=0.5:
        //   w(back to 0)   = 1/p = 0.5
        //   w(common 2)    = 1
        //   w(far 3)       = 1/q = 2
        // Force the first hop 0→1 by making 1 the only neighbor of 0... but
        // 0-2 must exist for 2 to be a common neighbor. Give edge (0,1)
        // weight 1000 and (0,2) weight 1 so nearly all walks go 0→1 first.
        let g = GraphBuilder::undirected()
            .weighted_edge(0, 1, 1000)
            .weighted_edge(1, 2, 1)
            .weighted_edge(1, 3, 1)
            .weighted_edge(0, 2, 1)
            .build();
        // Static weights would bias the second step, so use unit-weight
        // Node2Vec semantics: rebuild with all weights 1 but keep the shape,
        // and instead start walks at 1 with a forced prev via two-step walks
        // from 0. Simpler: sample two-step walks from 0 and condition on
        // path[1] == 1.
        let g = {
            let mut b = GraphBuilder::undirected();
            for (u, v, w) in [(0u32, 1u32, 50u32), (1, 2, 1), (1, 3, 1), (0, 2, 1)] {
                b = b.weighted_edge(u, v, w);
            }
            let _ = g;
            b.build()
        };
        let nv = Node2Vec::paper_params();
        let n = 60_000;
        let qs = QuerySet::from_starts(vec![0; n], 2);
        let eng = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 4 }, 31);
        let res = eng.run(&qs);
        let mut counts = [0u64; 3]; // second hop to 0, 2, 3
        for p in res.iter() {
            if p.len() == 3 && p[1] == 1 {
                match p[2] {
                    0 => counts[0] += 1,
                    2 => counts[1] += 1,
                    3 => counts[2] += 1,
                    other => panic!("impossible second hop {other}"),
                }
            }
        }
        // Second step from cur=1, prev=0 over neighbors {0,2,3} with static
        // weights {50,1,1}: w = {50/p, 1 (common), 1/q} = {25, 1, 2}.
        let expected = [25.0, 1.0, 2.0];
        let total: u64 = counts.iter().sum();
        assert!(total > n as u64 / 2, "conditioning kept too few walks");
        let chi2 = chi_square_counts(&counts, &expected);
        let crit = chi_square_crit_999(2) * 1.2;
        assert!(chi2 < crit, "chi2={chi2:.1} counts={counts:?}");
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let g = generators::rmat_dataset(7, 2);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 2);
        let nv = Node2Vec::paper_params();
        let a = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 8 }, 5).run(&qs);
        let b = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 8 }, 5).run(&qs);
        let c = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 8 }, 6).run(&qs);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
