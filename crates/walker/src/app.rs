//! Walk applications: the dynamic weight update functions.
//!
//! A GDRW recalibrates transition probabilities at every step with an
//! application-specific function `F` over the static edge weight and the
//! walker's state (paper §2.1). Engines call [`WalkApp::weight`] once per
//! candidate neighbor per step; the returned `u32` fixed-point weight
//! feeds whichever sampler the engine uses.

use lightrw_graph::VertexId;

/// Fractional bits of the fixed-point dynamic weight representation.
///
/// Static weights are small integers (the paper initializes them uniformly
/// at random, §6.1.4; ours are ≤ 64); 16 fractional bits leave 16 integer
/// bits of headroom and make Node2Vec's `1/p`, `1/q` scalings exact to
/// ~1.5e-5 — far below any observable sampling effect.
pub const FX_FRAC_BITS: u32 = 16;

/// Fixed-point one.
pub const FX_ONE: u32 = 1 << FX_FRAC_BITS;

/// Smallest reciprocal input `fx_recip` represents without clamping:
/// below this (≈ 1.526e-5, i.e. `FX_ONE / u32::MAX`) the multiplier
/// `FX_ONE / x` would overflow `u32` and saturates to `u32::MAX` instead.
pub const FX_RECIP_MIN_INPUT: f64 = FX_ONE as f64 / u32::MAX as f64;

/// Largest reciprocal input `fx_recip` represents without clamping:
/// above this (`2 · FX_ONE` = 131072) the multiplier `FX_ONE / x` rounds
/// below 1 and clamps to 1 — the smallest non-zero scaling, ≈ 1.526e-5 of
/// the static weight.
pub const FX_RECIP_MAX_INPUT: f64 = 2.0 * FX_ONE as f64;

/// Convert a reciprocal scaling `1/x` to a fixed-point multiplier.
///
/// # Clamp bounds
///
/// The multiplier is **clamped**, never wrapped: inputs below
/// [`FX_RECIP_MIN_INPUT`] saturate it to `u32::MAX` (the strongest
/// representable up-scaling, ≈ 65535× the static weight — and
/// [`fx_scale`] saturates again above that, so extreme `p`/`q` such as
/// `p < 1e-9` degrade gracefully to "this edge class always wins"
/// instead of overflowing); inputs above [`FX_RECIP_MAX_INPUT`] clamp it
/// to 1 (≈ 1.526e-5×, "this edge class almost never wins"). Inside
/// `[FX_RECIP_MIN_INPUT, FX_RECIP_MAX_INPUT]` the conversion is exact to
/// the 16-fractional-bit resolution. The unit tests pin both bounds.
///
/// # Panics
///
/// Panics on non-positive or non-finite `x` — those are configuration
/// errors, not extreme-but-meaningful hyperparameters.
pub fn fx_recip(x: f64) -> u32 {
    assert!(
        x > 0.0 && x.is_finite(),
        "scaling parameter must be positive"
    );
    (FX_ONE as f64 / x).round().clamp(1.0, u32::MAX as f64) as u32
}

/// Scale an *integer* static weight by a 16-frac multiplier, producing a
/// 16-frac fixed-point dynamic weight (so `fx_scale(w, FX_ONE) == w << 16`,
/// on the same scale as the unscaled `w << FX_FRAC_BITS` branches).
/// Saturates instead of overflowing.
#[inline]
pub fn fx_scale(w_static: u32, mult: u32) -> u32 {
    (w_static as u64 * mult as u64).min(u32::MAX as u64) as u32
}

/// Everything a weight update function may inspect about the current step —
/// the walker state `V_{t-1}` of the paper, reduced to what the two
/// evaluated applications actually read (step index + previous vertex).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepContext {
    /// Zero-based step index `t`.
    pub step: u32,
    /// Current vertex `a_t`.
    pub cur: VertexId,
    /// Previously traversed vertex `a_{t-1}` (None on the first step).
    pub prev: Option<VertexId>,
}

/// How an application's dynamic weights relate to the static CSR weights —
/// the hot-path hint engines use to pick a sampling strategy (DESIGN.md
/// §5). Every strategy consumes the RNG identically to the generic
/// streaming path, so the hint changes speed, never the sampled walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightProfile {
    /// Every candidate gets the same constant weight at every step
    /// (unbiased walks): engines may sample a degree-indexed uniform and
    /// skip weighting entirely.
    UniformStatic,
    /// Dynamic weight is a pure per-edge function of the static weight
    /// (optionally masked to [`WalkApp::static_relation`] at each step):
    /// engines may binary-search the graph's static-weight prefix cache.
    StaticOnly,
    /// Second-order weights bounded by a static envelope: for every input,
    /// `weight(ctx, nbr, w, rel, pin) ≤ w · max_weight` (computed in
    /// 64-bit — the bound must hold even where the app's own 32-bit
    /// weight saturates), and on the first step (`ctx.prev == None`) the
    /// weight is exactly `w << FX_FRAC_BITS`. Engines running a
    /// rejection-capable sampler may propose from the static prefix cache
    /// and accept against the envelope (expected O(1) weight evaluations
    /// per step, KnightKing-style); every other sampler treats this
    /// profile exactly as [`WeightProfile::Dynamic`], so the hint is
    /// invisible outside the explicit rejection opt-in (DESIGN.md §9).
    SecondOrderEnvelope {
        /// Fixed-point (16-frac) multiplier bounding the dynamic weight
        /// relative to the static weight. Never zero.
        max_weight: u32,
    },
    /// Weights depend on walker state (second-order rules etc.): engines
    /// must stream `F` per candidate.
    Dynamic,
}

/// The application-specific weight update function `F` (paper §2.1).
///
/// Implementations must be pure: the same inputs must give the same
/// weight, because the accelerator evaluates them in a stateless pipelined
/// Weight Updater unit.
pub trait WalkApp: Send + Sync {
    /// Application name for reports ("MetaPath", "Node2Vec", ...).
    fn name(&self) -> &'static str;

    /// Hot-path hint: how this app's weights relate to the static CSR
    /// weights. Defaults to [`WeightProfile::Dynamic`] (always correct,
    /// never fast). Apps claiming a stronger profile must uphold its
    /// contract: [`WeightProfile::UniformStatic`] promises
    /// `weight(..) == FX_ONE` for every input; [`WeightProfile::StaticOnly`]
    /// promises `weight(ctx, nbr, w, rel, _) == w << FX_FRAC_BITS` when
    /// `static_relation(ctx.step)` is `None` or matches `rel`, else 0.
    fn weight_profile(&self) -> WeightProfile {
        WeightProfile::Dynamic
    }

    /// For [`WeightProfile::StaticOnly`] apps that mask by edge relation
    /// (MetaPath): the single relation whose edges keep their static
    /// weight at step `t`. `None` means all edges count.
    fn static_relation(&self, _step: u32) -> Option<u8> {
        None
    }

    /// Whether [`WalkApp::weight`] reads `prev_is_neighbor` — i.e. whether
    /// engines must intersect `N(a_t)` with `N(a_{t-1})` before updating
    /// weights. True only for second-order walks (Node2Vec). Drives the
    /// extra `row_index`/`col_index` traffic the paper observes for
    /// Node2Vec (§6.4).
    fn second_order(&self) -> bool;

    /// Dynamic sampling weight `w^t_{a,b}` of moving to neighbor `nbr`.
    ///
    /// * `w_static` — the static edge weight `w*` from the CSR image;
    /// * `relation` — the edge label `R(a,b)` (0 when untyped);
    /// * `prev_is_neighbor` — whether `(a_{t-1}, nbr) ∈ E`; engines only
    ///   need to compute it when [`WalkApp::second_order`] is true.
    fn weight(
        &self,
        ctx: StepContext,
        nbr: VertexId,
        w_static: u32,
        relation: u8,
        prev_is_neighbor: bool,
    ) -> u32;
}

/// MetaPath random walk (paper Eq. 1): follow a fixed relation sequence;
/// an edge keeps its static weight iff its relation matches the current
/// position of the relation path, otherwise weight 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaPath {
    relation_path: Vec<u8>,
}

impl MetaPath {
    /// Create from a non-empty relation path `R = R_1, R_2, …`.
    /// Steps beyond the path length wrap around (the common "repeated
    /// metapath" convention, which lets query length exceed path length).
    pub fn new(relation_path: Vec<u8>) -> Self {
        assert!(!relation_path.is_empty(), "relation path must be non-empty");
        Self { relation_path }
    }

    /// The relation expected at step `t`.
    #[inline]
    pub fn relation_at(&self, step: u32) -> u8 {
        self.relation_path[step as usize % self.relation_path.len()]
    }

    /// Length of the relation path.
    pub fn path_len(&self) -> usize {
        self.relation_path.len()
    }
}

impl WalkApp for MetaPath {
    fn name(&self) -> &'static str {
        "MetaPath"
    }

    fn weight_profile(&self) -> WeightProfile {
        WeightProfile::StaticOnly
    }

    fn static_relation(&self, step: u32) -> Option<u8> {
        Some(self.relation_at(step))
    }

    fn second_order(&self) -> bool {
        false
    }

    #[inline]
    fn weight(
        &self,
        ctx: StepContext,
        _nbr: VertexId,
        w_static: u32,
        relation: u8,
        _prev_is_neighbor: bool,
    ) -> u32 {
        if relation == self.relation_at(ctx.step) {
            // Promote the static weight to fixed point (Eq. 1a).
            w_static << FX_FRAC_BITS
        } else {
            0 // Eq. 1b: relation mismatch — never sampled this step.
        }
    }
}

/// Node2Vec second-order walk (paper Eq. 2) with return parameter `p` and
/// in-out parameter `q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node2Vec {
    /// Fixed-point multiplier for `1/p`.
    inv_p: u32,
    /// Fixed-point multiplier for `1/q`.
    inv_q: u32,
}

impl Node2Vec {
    /// Create with hyperparameters `p` (return) and `q` (in-out). The
    /// paper's evaluation uses `p = 2, q = 0.5` (§6.1.4). Extreme values
    /// outside `[`[`FX_RECIP_MIN_INPUT`]`, `[`FX_RECIP_MAX_INPUT`]`]`
    /// clamp to the fixed-point range (see [`fx_recip`]) rather than
    /// overflowing the multiplier.
    pub fn new(p: f64, q: f64) -> Self {
        Self {
            inv_p: fx_recip(p),
            inv_q: fx_recip(q),
        }
    }

    /// The paper's evaluation configuration (`p = 2`, `q = 0.5`).
    pub fn paper_params() -> Self {
        Self::new(2.0, 0.5)
    }
}

impl WalkApp for Node2Vec {
    fn name(&self) -> &'static str {
        "Node2Vec"
    }

    fn weight_profile(&self) -> WeightProfile {
        // Every Eq. 2 branch scales the static weight by one of
        // {1/p, 1, 1/q} (saturating), so the largest of those multipliers
        // is a valid rejection envelope; at the paper's p = 2, q = 0.5 the
        // acceptance rate is at least 1/4 per round.
        WeightProfile::SecondOrderEnvelope {
            max_weight: self.inv_p.max(self.inv_q).max(FX_ONE),
        }
    }

    fn second_order(&self) -> bool {
        true
    }

    #[inline]
    fn weight(
        &self,
        ctx: StepContext,
        nbr: VertexId,
        w_static: u32,
        _relation: u8,
        prev_is_neighbor: bool,
    ) -> u32 {
        match ctx.prev {
            // First step: no previous vertex; Node2Vec degenerates to a
            // static weighted step (standard convention, matches the
            // original node2vec implementation).
            None => w_static << FX_FRAC_BITS,
            Some(prev) => {
                if nbr == prev {
                    fx_scale(w_static, self.inv_p) // Eq. 2a: return edge
                } else if prev_is_neighbor {
                    w_static << FX_FRAC_BITS // Eq. 2b: distance-1 edge
                } else {
                    fx_scale(w_static, self.inv_q) // Eq. 2c: distance-2 edge
                }
            }
        }
    }
}

/// Unbiased random walk: every neighbor weight 1 (DeepWalk-style). Used as
/// the no-dynamic-weight control in ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Uniform;

impl WalkApp for Uniform {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn weight_profile(&self) -> WeightProfile {
        WeightProfile::UniformStatic
    }

    fn second_order(&self) -> bool {
        false
    }

    #[inline]
    fn weight(&self, _: StepContext, _: VertexId, _: u32, _: u8, _: bool) -> u32 {
        FX_ONE
    }
}

/// Static biased walk: transition probability proportional to the constant
/// edge weight (no per-step recalibration) — the "static random walk"
/// class of §2.1, used as a control.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticWeighted;

impl WalkApp for StaticWeighted {
    fn name(&self) -> &'static str {
        "StaticWeighted"
    }

    fn weight_profile(&self) -> WeightProfile {
        WeightProfile::StaticOnly
    }

    fn second_order(&self) -> bool {
        false
    }

    #[inline]
    fn weight(&self, _: StepContext, _: VertexId, w_static: u32, _: u8, _: bool) -> u32 {
        w_static << FX_FRAC_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(step: u32, cur: VertexId, prev: Option<VertexId>) -> StepContext {
        StepContext { step, cur, prev }
    }

    #[test]
    fn fx_recip_known_values() {
        assert_eq!(fx_recip(1.0), FX_ONE);
        assert_eq!(fx_recip(2.0), FX_ONE / 2);
        assert_eq!(fx_recip(0.5), FX_ONE * 2);
        assert_eq!(fx_recip(4.0), FX_ONE / 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fx_recip_rejects_zero() {
        fx_recip(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fx_recip_rejects_nan() {
        fx_recip(f64::NAN);
    }

    #[test]
    fn fx_recip_clamps_at_the_documented_bounds() {
        // Below FX_RECIP_MIN_INPUT the multiplier saturates to u32::MAX
        // instead of overflowing — extreme p/q stay well-defined.
        assert_eq!(fx_recip(FX_RECIP_MIN_INPUT), u32::MAX);
        assert_eq!(fx_recip(1e-9), u32::MAX);
        assert_eq!(fx_recip(f64::MIN_POSITIVE), u32::MAX);
        // Above FX_RECIP_MAX_INPUT the multiplier clamps to 1 (the
        // smallest non-zero scaling), never to 0.
        assert_eq!(fx_recip(FX_RECIP_MAX_INPUT), 1);
        assert_eq!(fx_recip(1e12), 1);
        assert_eq!(fx_recip(f64::MAX), 1);
        // Just inside the bounds the conversion is exact, not clamped.
        assert_eq!(fx_recip(FX_ONE as f64), 1);
        assert_eq!(
            fx_recip(2.0 / u32::MAX as f64 * FX_ONE as f64),
            u32::MAX / 2 + 1
        );
    }

    #[test]
    fn extreme_node2vec_params_saturate_not_overflow() {
        // p < 1e-9: the 1/p multiplier saturates; combined with fx_scale's
        // own saturation the return edge weight pins at u32::MAX instead
        // of wrapping to a tiny value.
        let nv = Node2Vec::new(1e-12, 1e12);
        let w = nv.weight(ctx(1, 5, Some(3)), 3, 8, 0, true); // return edge
        assert_eq!(w, u32::MAX, "saturated, not wrapped");
        let far = nv.weight(ctx(1, 5, Some(3)), 7, 8, 0, false); // 1/q edge
        assert_eq!(far, 8, "clamped multiplier 1 scales w into the frac bits");
        assert_eq!(fx_scale(u32::MAX, u32::MAX), u32::MAX);
    }

    #[test]
    fn fx_scale_is_multiplicative() {
        assert_eq!(fx_scale(10, FX_ONE), 10 << FX_FRAC_BITS);
        assert_eq!(fx_scale(10, FX_ONE / 2), 5 << FX_FRAC_BITS);
        assert_eq!(fx_scale(10, FX_ONE * 2), 20 << FX_FRAC_BITS);
        assert_eq!(fx_scale(3, FX_ONE / 2), (3 << FX_FRAC_BITS) / 2);
        assert_eq!(fx_scale(u32::MAX, FX_ONE * 2), u32::MAX); // saturation
    }

    #[test]
    fn metapath_matches_relation_sequence() {
        let mp = MetaPath::new(vec![0, 1, 2]);
        // Step 0 expects relation 0.
        assert_eq!(
            mp.weight(ctx(0, 0, None), 1, 5, 0, false),
            5 << FX_FRAC_BITS
        );
        assert_eq!(mp.weight(ctx(0, 0, None), 1, 5, 1, false), 0);
        // Step 1 expects relation 1.
        assert_eq!(
            mp.weight(ctx(1, 0, None), 1, 5, 1, false),
            5 << FX_FRAC_BITS
        );
        // Wraps after the path ends: step 3 expects relation 0 again.
        assert_eq!(
            mp.weight(ctx(3, 0, None), 1, 5, 0, false),
            5 << FX_FRAC_BITS
        );
        assert!(!mp.second_order());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn metapath_rejects_empty_path() {
        MetaPath::new(vec![]);
    }

    #[test]
    fn node2vec_return_edge_scaled_by_inv_p() {
        let nv = Node2Vec::new(2.0, 0.5);
        // Neighbor == prev → w/p = w/2.
        let w = nv.weight(ctx(1, 5, Some(3)), 3, 8, 0, true);
        assert_eq!(w, (8 << FX_FRAC_BITS) / 2);
    }

    #[test]
    fn node2vec_common_neighbor_keeps_weight() {
        let nv = Node2Vec::new(2.0, 0.5);
        let w = nv.weight(ctx(1, 5, Some(3)), 7, 8, 0, true);
        assert_eq!(w, 8 << FX_FRAC_BITS);
    }

    #[test]
    fn node2vec_far_neighbor_scaled_by_inv_q() {
        let nv = Node2Vec::new(2.0, 0.5);
        // 1/q = 2 → w*2.
        let w = nv.weight(ctx(1, 5, Some(3)), 7, 8, 0, false);
        assert_eq!(w, (8 << FX_FRAC_BITS) * 2);
    }

    #[test]
    fn node2vec_first_step_is_static() {
        let nv = Node2Vec::new(2.0, 0.5);
        assert_eq!(
            nv.weight(ctx(0, 5, None), 7, 8, 0, false),
            8 << FX_FRAC_BITS
        );
        assert!(nv.second_order());
    }

    #[test]
    fn node2vec_paper_params() {
        assert_eq!(Node2Vec::paper_params(), Node2Vec::new(2.0, 0.5));
    }

    #[test]
    fn weight_profiles_match_contracts() {
        assert_eq!(Uniform.weight_profile(), WeightProfile::UniformStatic);
        assert_eq!(StaticWeighted.weight_profile(), WeightProfile::StaticOnly);
        // Node2Vec(p=2, q=0.5) is enveloped by its largest multiplier,
        // 1/q = 2 in fixed point.
        assert_eq!(
            Node2Vec::paper_params().weight_profile(),
            WeightProfile::SecondOrderEnvelope {
                max_weight: 2 * FX_ONE
            }
        );
        let mp = MetaPath::new(vec![2, 5]);
        assert_eq!(mp.weight_profile(), WeightProfile::StaticOnly);
        // static_relation follows the (wrapping) relation path.
        assert_eq!(mp.static_relation(0), Some(2));
        assert_eq!(mp.static_relation(1), Some(5));
        assert_eq!(mp.static_relation(2), Some(2));
        assert_eq!(StaticWeighted.static_relation(7), None);
    }

    #[test]
    fn node2vec_envelope_bounds_every_branch() {
        // The SecondOrderEnvelope contract: every Eq. 2 branch stays under
        // the 64-bit envelope `w_static · max_weight`, and the first step
        // is exactly the static promotion — including at extreme p/q where
        // the 32-bit weight itself saturates.
        for (p, q) in [(2.0, 0.5), (0.5, 2.0), (1.0, 1.0), (1e-12, 1e12)] {
            let nv = Node2Vec::new(p, q);
            let WeightProfile::SecondOrderEnvelope { max_weight } = nv.weight_profile() else {
                panic!("Node2Vec must advertise a rejection envelope");
            };
            assert!(max_weight >= FX_ONE);
            for w_static in [0u32, 1, 3, 64] {
                let env = w_static as u64 * max_weight as u64;
                for (nbr, pin) in [(3u32, true), (7, true), (7, false)] {
                    let w = nv.weight(ctx(1, 5, Some(3)), nbr, w_static, 0, pin);
                    assert!(
                        (w as u64) <= env,
                        "p={p} q={q} w*={w_static} nbr={nbr}: {w} > {env}"
                    );
                }
                assert_eq!(
                    nv.weight(ctx(0, 5, None), 7, w_static, 0, false),
                    w_static << FX_FRAC_BITS
                );
            }
        }
    }

    #[test]
    fn uniform_ignores_everything() {
        let u = Uniform;
        assert_eq!(u.weight(ctx(3, 1, Some(0)), 9, 55, 3, true), FX_ONE);
        assert_eq!(u.weight(ctx(0, 0, None), 0, 0, 0, false), FX_ONE);
    }

    #[test]
    fn static_weighted_passes_through() {
        let s = StaticWeighted;
        assert_eq!(
            s.weight(ctx(2, 1, Some(0)), 9, 7, 3, true),
            7 << FX_FRAC_BITS
        );
    }
}
