//! Random walk queries and workload construction.
//!
//! The paper's workload (§6.1.4): one query per vertex with non-zero
//! degree, each with a unique starting vertex, shuffled; query length 5
//! for MetaPath and 80 for Node2Vec. Since the program redesign
//! (DESIGN.md §8) a [`QuerySet`] also carries the
//! [`WalkProgram`] its queries execute — the fixed-length constructors
//! attach [`WalkProgram::fixed`], which reproduces the pre-program
//! behavior bit for bit.

use crate::program::WalkProgram;
use lightrw_graph::{Graph, VertexId};
use lightrw_rng::{Rng, SplitMix64};

/// One random walk query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Stable query id (index into the result set).
    pub id: u32,
    /// Starting vertex.
    pub start: VertexId,
    /// This query's **step budget**, always ≥ 1 (enforced at [`QuerySet`]
    /// construction). Under a fixed-length program this is exactly the
    /// requested number of steps; under a restarting or target-terminated
    /// program it is the hard cap on steps-plus-teleports. Defaults to
    /// the set's [`WalkProgram::max_steps`]; override per query with
    /// [`QuerySet::set_budget`].
    ///
    /// # Early-termination contract
    ///
    /// The result path has `length + 1` vertices unless the program halts
    /// the walk first:
    ///
    /// - a **dead end** — a current vertex with no out-edges, or one
    ///   where every candidate's dynamic weight is zero (e.g. a MetaPath
    ///   step whose relation no incident edge carries) — truncates the
    ///   walk under [`crate::program::DeadEndPolicy::Truncate`] (teleports
    ///   instead under `Restart`);
    /// - arriving on a **target vertex** of the program's target set
    ///   halts immediately (a query *starting* on a target emits its
    ///   start-only path).
    ///
    /// A halted walk keeps the vertices sampled so far — at minimum the
    /// starting vertex — and engines count only the steps (moves and
    /// teleports) actually taken. Zero-budget queries are rejected up
    /// front rather than silently producing 1-vertex paths, so a 1-vertex
    /// path always *means* "halted at the start".
    pub length: u32,
}

/// A set of queries plus the [`WalkProgram`] they execute and the
/// workload metadata the harnesses report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySet {
    queries: Vec<Query>,
    program: WalkProgram,
}

impl QuerySet {
    /// The paper's standard workload: one query per non-isolated vertex,
    /// shuffled deterministically by `seed` (ThunderRW's query shuffling,
    /// §6.1.4).
    pub fn per_nonisolated_vertex(g: &Graph, length: u32, seed: u64) -> Self {
        let mut starts = g.non_isolated_vertices();
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut starts);
        Self::from_starts(starts, length)
    }

    /// A capped workload: `n` queries with distinct starting vertices drawn
    /// from the non-isolated set (cycling if `n` exceeds it) — used by the
    /// query-count sensitivity sweep (Fig. 16).
    pub fn n_queries(g: &Graph, n: usize, length: u32, seed: u64) -> Self {
        let mut starts = g.non_isolated_vertices();
        assert!(!starts.is_empty(), "graph has no non-isolated vertices");
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut starts);
        let starts: Vec<VertexId> = (0..n).map(|i| starts[i % starts.len()]).collect();
        Self::from_starts(starts, length)
    }

    /// Build directly from explicit starting vertices, executing a
    /// fixed-length program of `length` steps.
    ///
    /// # Panics
    ///
    /// Panics when `length == 0`: a zero-step query has no sampling work
    /// and would emit a degenerate 1-vertex path indistinguishable from a
    /// genuine dead end (see [`Query::length`]). All `QuerySet`
    /// constructors funnel through here (or through
    /// [`QuerySet::with_program`], whose program enforces the same bound),
    /// so the invariant holds set-wide.
    pub fn from_starts(starts: Vec<VertexId>, length: u32) -> Self {
        assert!(
            length >= 1,
            "zero-length walk queries are rejected: a query must request at \
             least one step (see the Query::length contract)"
        );
        Self::build(starts, WalkProgram::fixed(length))
    }

    /// Build from explicit starting vertices executing `program`; every
    /// query's step budget defaults to the program's
    /// [`WalkProgram::max_steps`].
    pub fn from_starts_with_program(starts: Vec<VertexId>, program: WalkProgram) -> Self {
        Self::build(starts, program)
    }

    fn build(starts: Vec<VertexId>, program: WalkProgram) -> Self {
        let length = program.max_steps();
        let queries = starts
            .into_iter()
            .enumerate()
            .map(|(id, start)| Query {
                id: id as u32,
                start,
                length,
            })
            .collect();
        Self { queries, program }
    }

    /// Replace the set's program, resetting every query's step budget to
    /// the new program's default (override individual queries afterwards
    /// with [`QuerySet::set_budget`]).
    pub fn with_program(mut self, program: WalkProgram) -> Self {
        let length = program.max_steps();
        for q in &mut self.queries {
            q.length = length;
        }
        self.program = program;
        self
    }

    /// The program every query in this set executes.
    #[inline]
    pub fn program(&self) -> &WalkProgram {
        &self.program
    }

    /// Override one query's step budget (a per-query cap below or above
    /// the program default — e.g. a tighter PPR cap for a latency-bound
    /// tenant).
    ///
    /// # Panics
    ///
    /// Panics when `budget == 0` (the [`Query::length`] contract) or `id`
    /// is out of range.
    pub fn set_budget(&mut self, id: usize, budget: u32) {
        assert!(budget >= 1, "zero-budget walk queries are rejected");
        self.queries[id].length = budget;
    }

    /// The queries in execution order.
    #[inline]
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total requested step budget (the denominator of the paper's
    /// steps/second throughput metric, Figs. 16–17). For fixed-length
    /// programs this is exact; for restarting or target-terminated
    /// programs it is the upper bound the serving layer admits quota
    /// against.
    pub fn total_steps(&self) -> u64 {
        self.queries.iter().map(|q| q.length as u64).sum()
    }

    /// Split round-robin across `n` partitions — how the multi-instance
    /// deployment distributes queries evenly over accelerator instances
    /// (§6.1.5). Every partition carries the set's program.
    pub fn partition(&self, n: usize) -> Vec<QuerySet> {
        assert!(n >= 1);
        let mut parts: Vec<Vec<Query>> = vec![Vec::new(); n];
        for (i, q) in self.queries.iter().enumerate() {
            parts[i % n].push(*q);
        }
        parts
            .into_iter()
            .map(|queries| QuerySet {
                queries,
                program: self.program.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::{generators, GraphBuilder};

    #[test]
    fn per_vertex_workload_covers_every_nonisolated_vertex() {
        let g = generators::rmat(8, 4, 1);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 42);
        assert_eq!(qs.len(), g.non_isolated_vertices().len());
        let mut starts: Vec<u32> = qs.queries().iter().map(|q| q.start).collect();
        starts.sort_unstable();
        assert_eq!(starts, g.non_isolated_vertices());
        assert_eq!(qs.total_steps(), 5 * qs.len() as u64);
    }

    #[test]
    fn shuffle_is_deterministic_and_seed_sensitive() {
        let g = generators::rmat(8, 4, 1);
        let a = QuerySet::per_nonisolated_vertex(&g, 5, 42);
        let b = QuerySet::per_nonisolated_vertex(&g, 5, 42);
        let c = QuerySet::per_nonisolated_vertex(&g, 5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn isolated_vertices_excluded() {
        let g = GraphBuilder::directed().num_vertices(10).edge(0, 1).build();
        let qs = QuerySet::per_nonisolated_vertex(&g, 3, 1);
        assert_eq!(qs.len(), 1);
        assert_eq!(qs.queries()[0].start, 0);
    }

    #[test]
    fn n_queries_cycles_when_oversubscribed() {
        let g = GraphBuilder::directed().edges([(0, 1), (1, 0)]).build();
        let qs = QuerySet::n_queries(&g, 5, 2, 9);
        assert_eq!(qs.len(), 5);
        for q in qs.queries() {
            assert!(q.start <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero-length walk queries are rejected")]
    fn zero_length_queries_are_rejected() {
        let _ = QuerySet::from_starts(vec![0, 1], 0);
    }

    #[test]
    #[should_panic(expected = "zero-length walk queries are rejected")]
    fn zero_length_rejection_covers_derived_constructors() {
        let g = GraphBuilder::directed().edge(0, 1).build();
        let _ = QuerySet::per_nonisolated_vertex(&g, 0, 1);
    }

    #[test]
    fn ids_are_sequential() {
        let qs = QuerySet::from_starts(vec![3, 1, 2], 4);
        let ids: Vec<u32> = qs.queries().iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn fixed_constructors_attach_a_fixed_program() {
        let qs = QuerySet::from_starts(vec![0, 1], 9);
        assert_eq!(qs.program(), &WalkProgram::fixed(9));
        assert!(qs.program().is_fixed_length());
    }

    #[test]
    fn with_program_resets_budgets_to_the_program_default() {
        let qs = QuerySet::from_starts(vec![0, 1, 2], 5).with_program(WalkProgram::ppr(0.25, 40));
        assert_eq!(qs.program().max_steps(), 40);
        assert!(qs.queries().iter().all(|q| q.length == 40));
        assert_eq!(qs.total_steps(), 3 * 40);
    }

    #[test]
    fn per_query_budget_overrides() {
        let mut qs = QuerySet::from_starts_with_program(vec![0, 1], WalkProgram::ppr(0.5, 10));
        qs.set_budget(1, 3);
        assert_eq!(qs.queries()[0].length, 10);
        assert_eq!(qs.queries()[1].length, 3);
        assert_eq!(qs.total_steps(), 13);
    }

    #[test]
    #[should_panic(expected = "zero-budget")]
    fn zero_budget_override_is_rejected() {
        let mut qs = QuerySet::from_starts(vec![0], 5);
        qs.set_budget(0, 0);
    }

    #[test]
    fn partitions_inherit_the_program() {
        let qs = QuerySet::from_starts((0..6).collect(), 4).with_program(WalkProgram::ppr(0.1, 8));
        for part in qs.partition(3) {
            assert_eq!(part.program(), qs.program());
        }
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        let qs = QuerySet::from_starts((0..10).collect(), 4);
        let parts = qs.partition(4);
        assert_eq!(parts.len(), 4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let mut all: Vec<u32> = parts
            .iter()
            .flat_map(|p| p.queries().iter().map(|q| q.start))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
