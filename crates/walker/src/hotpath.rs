//! The fused per-step hot path shared by every engine.
//!
//! Algorithm 4.1's point is that weight calculation and weighted sampling
//! are one streaming pass with O(1) state, not two phases with an O(d)
//! intermediate buffer. [`HotStepper`] is that pass in software: it owns
//! the sampler (and its reusable table scratch) plus the word-packed
//! common-neighbor bitset, picks the cheapest sampling strategy for the
//! app's [`WeightProfile`], and performs zero heap allocations per step in
//! steady state. See DESIGN.md §5 for the conventions and the
//! RNG-identity contract that makes strategy choice invisible in the
//! sampled walks.

use crate::app::{StepContext, WalkApp, WeightProfile, FX_ONE};
use crate::membership::{common_neighbor_bitset, common_neighbor_bitset_slices, NeighborBitset};
use crate::reference::{AnySampler, SamplerKind, SamplerStream};
use lightrw_graph::{Graph, NeighborView, VertexId};

/// One engine worker's sampling state: sampler + scratch, reused across
/// every step the worker executes.
pub struct HotStepper {
    sampler: AnySampler,
    mask: NeighborBitset,
    kind: SamplerKind,
    profile: WeightProfile,
    second_order: bool,
    /// When armed, second-order membership probes use this sorted row as
    /// `N(prev)` instead of the graph's — the hand-off payload of a walker
    /// whose previous vertex lives on another shard (DESIGN.md §11).
    prev_row: Vec<u32>,
    prev_row_armed: bool,
}

impl HotStepper {
    /// Create a stepper for `app` with the given sampler kind and seed.
    /// The weight profile is latched here; `app` must be the same object
    /// (or at least profile-identical) on every [`HotStepper::step`] call.
    pub fn new(app: &dyn WalkApp, kind: SamplerKind, seed: u64) -> Self {
        Self {
            sampler: AnySampler::new(kind, seed),
            mask: NeighborBitset::new(),
            kind,
            profile: app.weight_profile(),
            second_order: app.second_order(),
            prev_row: Vec::new(),
            prev_row_armed: false,
        }
    }

    /// Capture the sampler's RNG-stream position for hand-off
    /// serialization — see [`AnySampler::export_stream`].
    #[inline]
    pub fn export_stream(&self) -> SamplerStream {
        self.sampler.export_stream()
    }

    /// Resume a captured RNG stream on this stepper's sampler — see
    /// [`AnySampler::import_stream`]. Scratch (tables, bitset words) is
    /// untouched; only the stream position moves.
    #[inline]
    pub fn import_stream(&mut self, stream: &SamplerStream) {
        self.sampler.import_stream(stream);
    }

    /// Arm the prev-row override for the next step: membership probes for
    /// `ctx.prev` consult this sorted adjacency row instead of the graph.
    /// Sharded engines arm it for the first step a migrated second-order
    /// walker takes on its new shard (where `prev`'s row is absent) and
    /// [`HotStepper::clear_prev_row`] it right after.
    pub fn arm_prev_row(&mut self, row: &[u32]) {
        self.prev_row.clear();
        self.prev_row.extend_from_slice(row);
        self.prev_row_armed = true;
    }

    /// Disarm the prev-row override installed by
    /// [`HotStepper::arm_prev_row`].
    #[inline]
    pub fn clear_prev_row(&mut self) {
        self.prev_row_armed = false;
    }

    /// Pre-size all scratch for vertices of degree up to `max_degree`
    /// (worker setup — keeps the step loop allocation-free from the first
    /// step).
    pub fn reserve(&mut self, max_degree: usize) {
        self.sampler.reserve(max_degree);
        self.mask.reserve(max_degree);
    }

    /// Draw one 32-bit control uniform from the sampler's stream — used by
    /// [`crate::program::WalkProgram`] for restart decisions. See
    /// [`AnySampler::control_draw`] for the stream contract; fixed-length
    /// programs never call this.
    #[inline]
    pub fn control_draw(&mut self) -> u32 {
        self.sampler.control_draw()
    }

    /// Execute one fused weight-calculation + sampling step from
    /// `ctx.cur`: returns the sampled next vertex, or `None` on a dead end
    /// (no out-edges, or every candidate weight zero).
    pub fn step(&mut self, g: &Graph, app: &dyn WalkApp, ctx: StepContext) -> Option<VertexId> {
        let view = g.neighbor_view(ctx.cur);
        if view.is_empty() {
            return None;
        }
        let idx = if let (true, Some(prev)) = (self.second_order, ctx.prev) {
            let envelope = match (self.kind, self.profile) {
                // Rejection fast path (DESIGN.md §9): only with the
                // explicit opt-in sampler, an app-advertised envelope, and
                // the prefix cache to propose from.
                (SamplerKind::Rejection, WeightProfile::SecondOrderEnvelope { max_weight }) => {
                    g.static_prefix(ctx.cur).map(|cum| (cum, max_weight))
                }
                _ => None,
            };
            if let Some((cum, max_weight)) = envelope {
                // Propose ∝ static weight via the prefix cache, accept
                // against the envelope. Membership is probed per *proposed*
                // candidate (one `has_edge` binary search each, expected
                // O(1) proposals) instead of building the full
                // common-neighbor bitset over both adjacency lists.
                let Self {
                    sampler,
                    prev_row,
                    prev_row_armed,
                    ..
                } = self;
                let ovr: Option<&[u32]> = prev_row_armed.then_some(prev_row.as_slice());
                sampler.select_envelope(cum, max_weight, |i| {
                    let nbr = view.targets[i];
                    let pin = match ovr {
                        Some(row) => row.binary_search(&nbr).is_ok(),
                        None => g.has_edge(prev, nbr),
                    };
                    app.weight(ctx, nbr, view.weights[i], view.relation(i), pin)
                })
            } else {
                // Second-order rule (Node2Vec): build the packed membership
                // mask, then stream F lane by lane into the sampler.
                if self.prev_row_armed {
                    common_neighbor_bitset_slices(view.targets, &self.prev_row, &mut self.mask);
                } else {
                    common_neighbor_bitset(g, ctx.cur, prev, &mut self.mask);
                }
                let Self { sampler, mask, .. } = self;
                sampler.select_weighted_with(view.len(), |i| {
                    app.weight(
                        ctx,
                        view.targets[i],
                        view.weights[i],
                        view.relation(i),
                        mask.get(i),
                    )
                })
            }
        } else {
            match self.profile {
                WeightProfile::UniformStatic => self.sampler.select_uniform(view.len(), FX_ONE),
                WeightProfile::StaticOnly => {
                    let prefix = match app.static_relation(ctx.step) {
                        None => g.static_prefix(ctx.cur),
                        Some(rel) => g.relation_prefix(ctx.cur, rel),
                    };
                    match prefix {
                        Some(cum) => self.sampler.select_prefix(cum),
                        // No cache (or uncached relation): stream F.
                        None => self.generic(view, app, ctx),
                    }
                }
                // First-order step of an enveloped second-order app: the
                // profile contract fixes the weight to the plain static
                // promotion, so the prefix fast path applies and stays
                // RNG-identical to streaming.
                WeightProfile::SecondOrderEnvelope { .. } => match g.static_prefix(ctx.cur) {
                    Some(cum) => self.sampler.select_prefix(cum),
                    None => self.generic(view, app, ctx),
                },
                WeightProfile::Dynamic => self.generic(view, app, ctx),
            }
        };
        idx.map(|i| view.targets[i])
    }

    /// The generic streaming pass: one `F` evaluation per candidate, fed
    /// straight into the sampler. `prev_is_neighbor` is false here — this
    /// branch only runs for first-order steps (second-order steps with a
    /// previous vertex take the masked branch above).
    fn generic(
        &mut self,
        view: NeighborView<'_>,
        app: &dyn WalkApp,
        ctx: StepContext,
    ) -> Option<usize> {
        self.sampler.select_weighted_with(view.len(), |i| {
            app.weight(
                ctx,
                view.targets[i],
                view.weights[i],
                view.relation(i),
                false,
            )
        })
    }
}

/// Software-prefetch the head of `v`'s CSR adjacency into cache.
///
/// The step-centric lane driver calls this during a walker's **Gather**
/// phase for the *following* walker in the ring (prefetch distance 1): by
/// the time the ring returns to that walker, its `col_index`/`weights`
/// lines have had one full Move+Update of latency to arrive — ThunderRW's
/// interleaving trick for hiding DRAM latency on CPUs. Resolving the view
/// here also touches the two `row_index` entries, which is the useful part
/// on architectures without an explicit prefetch instruction.
#[inline]
pub fn prefetch_row(g: &Graph, v: VertexId) {
    let view = g.neighbor_view(v);
    #[cfg(target_arch = "x86_64")]
    if !view.targets.is_empty() {
        // SAFETY: prefetch has no memory effects; any address is allowed.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(view.targets.as_ptr().cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(view.weights.as_ptr().cast::<i8>(), _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = view;
}

/// The multi-walker lane driver: a persistent round-robin ring over the
/// walkers one worker owns, visiting each active walker once per sweep
/// (step-centric interleaving) and retiring walkers in place.
///
/// The ring is pure scheduling state — walker data stays wherever the
/// engine keeps it (SoA arrays in the CPU lanes); slots index into those
/// arrays. The visit order is exactly the classic cursor + `swap_remove`
/// sweep the engines used walker-at-a-time, so a driver upgrade never
/// changes which walker steps next — the bit-identity regression in
/// tests/engine_agreement.rs pins this.
#[derive(Debug, Clone)]
pub struct WalkerRing {
    /// Slots of walkers still walking.
    active: Vec<usize>,
    /// Position within the current sweep over `active`.
    cursor: usize,
}

impl WalkerRing {
    /// A ring over walker slots `0..n`, all active.
    pub fn full(n: usize) -> Self {
        Self {
            active: (0..n).collect(),
            cursor: 0,
        }
    }

    /// Number of walkers still active.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether every walker has retired.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// The slots still active, in ring order (cancel paths flush these).
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Begin a visit: wrap the sweep cursor and return the current
    /// walker's slot, or `None` when the ring has drained.
    #[inline]
    pub fn current(&mut self) -> Option<usize> {
        if self.active.is_empty() {
            return None;
        }
        if self.cursor >= self.active.len() {
            self.cursor = 0; // new sweep
        }
        Some(self.active[self.cursor])
    }

    /// The slot the ring will visit after the current one — the Gather
    /// phase's prefetch target. A hint only: when the current walker
    /// retires, `swap_remove` visits a different slot next, and a
    /// mispredicted prefetch costs nothing.
    #[inline]
    pub fn upcoming(&self) -> Option<usize> {
        if self.active.len() < 2 {
            return None;
        }
        let next = if self.cursor + 1 >= self.active.len() {
            0
        } else {
            self.cursor + 1
        };
        Some(self.active[next])
    }

    /// End a visit keeping the current walker: advance to the next slot.
    #[inline]
    pub fn keep(&mut self) {
        self.cursor += 1;
    }

    /// End a visit retiring the current walker from the ring.
    #[inline]
    pub fn retire(&mut self) {
        self.active.swap_remove(self.cursor);
    }

    /// Retire every remaining walker (cancellation).
    pub fn clear(&mut self) {
        self.active.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{MetaPath, Node2Vec, StaticWeighted, Uniform};
    use lightrw_graph::generators;

    const KINDS: [SamplerKind; 5] = [
        SamplerKind::InverseTransform,
        SamplerKind::Alias,
        SamplerKind::SequentialWrs,
        SamplerKind::ParallelWrs { k: 8 },
        SamplerKind::AExpJ,
    ];

    /// Delegating wrapper that hides an app's profile, forcing the generic
    /// streaming path.
    struct ForceDynamic<'a>(&'a dyn WalkApp);

    impl WalkApp for ForceDynamic<'_> {
        fn name(&self) -> &'static str {
            "ForceDynamic"
        }
        fn second_order(&self) -> bool {
            self.0.second_order()
        }
        fn weight(&self, ctx: StepContext, nbr: VertexId, w: u32, rel: u8, pin: bool) -> u32 {
            self.0.weight(ctx, nbr, w, rel, pin)
        }
    }

    #[test]
    fn fast_paths_sample_identically_to_generic_streaming() {
        // The RNG-identity contract, exercised at the single-step level:
        // for every app × sampler kind, the profile-driven stepper and the
        // forced-generic stepper must pick the same neighbor at every
        // step, with and without the prefix cache.
        let g = generators::rmat_dataset(8, 21);
        let mut bare = g.clone();
        bare.drop_prefix_cache();
        let mp = MetaPath::new(vec![0, 1, 0]);
        let nv = Node2Vec::paper_params();
        let apps: [&dyn WalkApp; 4] = [&Uniform, &StaticWeighted, &mp, &nv];
        for app in apps {
            for kind in KINDS {
                let forced = ForceDynamic(app);
                let mut fast = HotStepper::new(app, kind, 5);
                let mut slow = HotStepper::new(&forced, kind, 5);
                let mut nocache = HotStepper::new(app, kind, 5);
                for v in 0..g.num_vertices() as VertexId {
                    let mut ctx = StepContext {
                        step: v % 7,
                        cur: v,
                        prev: None,
                    };
                    for _ in 0..3 {
                        let a = fast.step(&g, app, ctx);
                        let b = slow.step(&g, &forced, ctx);
                        let c = nocache.step(&bare, app, ctx);
                        assert_eq!(a, b, "{} {:?} fast≠generic", app.name(), kind);
                        assert_eq!(a, c, "{} {:?} cached≠uncached", app.name(), kind);
                        match a {
                            Some(next) => {
                                ctx.prev = Some(ctx.cur);
                                ctx.cur = next;
                                ctx.step += 1;
                            }
                            None => break,
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dead_ends_are_reported() {
        let g = lightrw_graph::GraphBuilder::directed().edge(0, 1).build();
        let mut s = HotStepper::new(&Uniform, SamplerKind::InverseTransform, 1);
        let ctx = |cur| StepContext {
            step: 0,
            cur,
            prev: None,
        };
        assert_eq!(s.step(&g, &Uniform, ctx(0)), Some(1));
        assert_eq!(s.step(&g, &Uniform, ctx(1)), None);
    }

    #[test]
    fn rejection_kind_matches_inverse_transform_off_the_envelope_path() {
        // Away from enveloped second-order steps the rejection kind is
        // draw-for-draw inverse transform: first-order apps must sample
        // bit-identical walks under either kind, every profile branch.
        let g = generators::rmat_dataset(8, 21);
        let mp = MetaPath::new(vec![0, 1, 0]);
        let apps: [&dyn WalkApp; 3] = [&Uniform, &StaticWeighted, &mp];
        for app in apps {
            let mut it = HotStepper::new(app, SamplerKind::InverseTransform, 5);
            let mut rj = HotStepper::new(app, SamplerKind::Rejection, 5);
            for v in 0..g.num_vertices() as VertexId {
                let mut ctx = StepContext {
                    step: v % 5,
                    cur: v,
                    prev: None,
                };
                for _ in 0..3 {
                    let a = it.step(&g, app, ctx);
                    let b = rj.step(&g, app, ctx);
                    assert_eq!(a, b, "{} rejection≠inverse-transform", app.name());
                    match a {
                        Some(next) => {
                            ctx.prev = Some(ctx.cur);
                            ctx.cur = next;
                            ctx.step += 1;
                        }
                        None => break,
                    }
                }
            }
        }
    }

    #[test]
    fn rejection_second_order_steps_stay_on_real_edges() {
        // The fast path proposes from the prefix cache and probes
        // membership per candidate; every sampled hop must still be a CSR
        // neighbor, with or without the cache (without it the stepper
        // falls back to the masked streaming branch).
        let g = generators::rmat_dataset(8, 22);
        let mut bare = g.clone();
        bare.drop_prefix_cache();
        let nv = Node2Vec::paper_params();
        for graph in [&g, &bare] {
            let mut s = HotStepper::new(&nv, SamplerKind::Rejection, 17);
            s.reserve(graph.max_degree() as usize);
            for v in 0..graph.num_vertices() as VertexId {
                let mut ctx = StepContext {
                    step: 0,
                    cur: v,
                    prev: None,
                };
                for _ in 0..4 {
                    match s.step(graph, &nv, ctx) {
                        Some(next) => {
                            assert!(
                                graph.neighbors(ctx.cur).contains(&next),
                                "sampled non-edge {} -> {next}",
                                ctx.cur
                            );
                            ctx.prev = Some(ctx.cur);
                            ctx.cur = next;
                            ctx.step += 1;
                        }
                        None => break,
                    }
                }
            }
        }
    }

    #[test]
    fn armed_prev_row_matches_graph_probe_bit_for_bit() {
        // The hand-off payload contract: arming the override with the row
        // the graph would have consulted must leave every sampled step
        // unchanged, on both the masked branch (Node2Vec with any sampler)
        // and the envelope branch (Rejection kind).
        let g = generators::rmat_dataset(8, 23);
        let nv = Node2Vec::paper_params();
        let mut all = KINDS.to_vec();
        all.push(SamplerKind::Rejection);
        for kind in all {
            let mut plain = HotStepper::new(&nv, kind, 9);
            let mut armed = HotStepper::new(&nv, kind, 9);
            for v in 0..g.num_vertices() as VertexId {
                let prev = (v * 13 + 1) % g.num_vertices() as VertexId;
                let ctx = StepContext {
                    step: 1,
                    cur: v,
                    prev: Some(prev),
                };
                let a = plain.step(&g, &nv, ctx);
                armed.arm_prev_row(g.neighbors(prev));
                let b = armed.step(&g, &nv, ctx);
                armed.clear_prev_row();
                assert_eq!(a, b, "{kind:?} cur={v} prev={prev}");
                assert_eq!(
                    plain.export_stream(),
                    armed.export_stream(),
                    "{kind:?} stream diverged"
                );
            }
        }
    }

    #[test]
    fn stream_export_import_round_trips_mid_walk() {
        // A stepper restored from a captured stream must continue exactly
        // where the donor left off — the RNG half of walker hand-off.
        let g = generators::rmat_dataset(7, 3);
        for kind in KINDS {
            let mut donor = HotStepper::new(&StaticWeighted, kind, 11);
            let ctx = |cur| StepContext {
                step: 0,
                cur,
                prev: None,
            };
            for v in 0..40u32 {
                donor.step(&g, &StaticWeighted, ctx(v % g.num_vertices() as u32));
            }
            let snap = donor.export_stream();
            let mut fresh = HotStepper::new(&StaticWeighted, kind, 999);
            fresh.import_stream(&snap);
            for v in 0..40u32 {
                let c = ctx(v % g.num_vertices() as u32);
                assert_eq!(
                    donor.step(&g, &StaticWeighted, c),
                    fresh.step(&g, &StaticWeighted, c),
                    "{kind:?} diverged after import"
                );
            }
        }
    }

    #[test]
    fn walker_ring_replays_the_cursor_sweep_order() {
        // The ring must visit walkers exactly like the classic
        // cursor + swap_remove sweep. Retire walkers on a fixed schedule
        // and compare the full visit trace against an inline oracle.
        let n = 7usize;
        let retire_after = [3u32, 1, 4, 2, 5, 1, 3]; // visits per slot
        let mut ring = WalkerRing::full(n);
        let mut visits = vec![0u32; n];
        let mut trace = Vec::new();
        while let Some(slot) = ring.current() {
            trace.push(slot);
            visits[slot] += 1;
            if visits[slot] >= retire_after[slot] {
                ring.retire();
            } else {
                ring.keep();
            }
        }
        // Oracle: the pre-refactor loop shape.
        let mut active: Vec<usize> = (0..n).collect();
        let mut cursor = 0usize;
        let mut visits = vec![0u32; n];
        let mut expect = Vec::new();
        while !active.is_empty() {
            if cursor >= active.len() {
                cursor = 0;
            }
            let slot = active[cursor];
            expect.push(slot);
            visits[slot] += 1;
            if visits[slot] >= retire_after[slot] {
                active.swap_remove(cursor);
            } else {
                cursor += 1;
            }
        }
        assert_eq!(trace, expect);
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn walker_ring_upcoming_is_the_next_visit_when_keeping() {
        let mut ring = WalkerRing::full(4);
        // While no walker retires, upcoming() always predicts the slot
        // current() returns after keep() — including the sweep wrap.
        for _ in 0..10 {
            let _ = ring.current().unwrap();
            let predicted = ring.upcoming().unwrap();
            ring.keep();
            assert_eq!(ring.current(), Some(predicted));
        }
        // Down to one walker there is nothing left to prefetch.
        let mut small = WalkerRing::full(1);
        assert_eq!(small.current(), Some(0));
        assert_eq!(small.upcoming(), None);
        small.retire();
        assert_eq!(small.current(), None);
    }

    #[test]
    fn prefetch_row_touches_any_vertex_safely() {
        let g = generators::rmat_dataset(6, 2);
        for v in 0..g.num_vertices() as VertexId {
            prefetch_row(&g, v); // includes isolated (empty-row) vertices
        }
    }
}
