//! The fused per-step hot path shared by every engine.
//!
//! Algorithm 4.1's point is that weight calculation and weighted sampling
//! are one streaming pass with O(1) state, not two phases with an O(d)
//! intermediate buffer. [`HotStepper`] is that pass in software: it owns
//! the sampler (and its reusable table scratch) plus the word-packed
//! common-neighbor bitset, picks the cheapest sampling strategy for the
//! app's [`WeightProfile`], and performs zero heap allocations per step in
//! steady state. See DESIGN.md §5 for the conventions and the
//! RNG-identity contract that makes strategy choice invisible in the
//! sampled walks.

use crate::app::{StepContext, WalkApp, WeightProfile, FX_ONE};
use crate::membership::{common_neighbor_bitset, NeighborBitset};
use crate::reference::{AnySampler, SamplerKind};
use lightrw_graph::{Graph, NeighborView, VertexId};

/// One engine worker's sampling state: sampler + scratch, reused across
/// every step the worker executes.
pub struct HotStepper {
    sampler: AnySampler,
    mask: NeighborBitset,
    profile: WeightProfile,
    second_order: bool,
}

impl HotStepper {
    /// Create a stepper for `app` with the given sampler kind and seed.
    /// The weight profile is latched here; `app` must be the same object
    /// (or at least profile-identical) on every [`HotStepper::step`] call.
    pub fn new(app: &dyn WalkApp, kind: SamplerKind, seed: u64) -> Self {
        Self {
            sampler: AnySampler::new(kind, seed),
            mask: NeighborBitset::new(),
            profile: app.weight_profile(),
            second_order: app.second_order(),
        }
    }

    /// Pre-size all scratch for vertices of degree up to `max_degree`
    /// (worker setup — keeps the step loop allocation-free from the first
    /// step).
    pub fn reserve(&mut self, max_degree: usize) {
        self.sampler.reserve(max_degree);
        self.mask.reserve(max_degree);
    }

    /// Draw one 32-bit control uniform from the sampler's stream — used by
    /// [`crate::program::WalkProgram`] for restart decisions. See
    /// [`AnySampler::control_draw`] for the stream contract; fixed-length
    /// programs never call this.
    #[inline]
    pub fn control_draw(&mut self) -> u32 {
        self.sampler.control_draw()
    }

    /// Execute one fused weight-calculation + sampling step from
    /// `ctx.cur`: returns the sampled next vertex, or `None` on a dead end
    /// (no out-edges, or every candidate weight zero).
    pub fn step(&mut self, g: &Graph, app: &dyn WalkApp, ctx: StepContext) -> Option<VertexId> {
        let view = g.neighbor_view(ctx.cur);
        if view.is_empty() {
            return None;
        }
        let idx = if let (true, Some(prev)) = (self.second_order, ctx.prev) {
            // Second-order rule (Node2Vec): build the packed membership
            // mask, then stream F lane by lane into the sampler.
            common_neighbor_bitset(g, ctx.cur, prev, &mut self.mask);
            let Self { sampler, mask, .. } = self;
            sampler.select_weighted_with(view.len(), |i| {
                app.weight(
                    ctx,
                    view.targets[i],
                    view.weights[i],
                    view.relation(i),
                    mask.get(i),
                )
            })
        } else {
            match self.profile {
                WeightProfile::UniformStatic => self.sampler.select_uniform(view.len(), FX_ONE),
                WeightProfile::StaticOnly => {
                    let prefix = match app.static_relation(ctx.step) {
                        None => g.static_prefix(ctx.cur),
                        Some(rel) => g.relation_prefix(ctx.cur, rel),
                    };
                    match prefix {
                        Some(cum) => self.sampler.select_prefix(cum),
                        // No cache (or uncached relation): stream F.
                        None => self.generic(view, app, ctx),
                    }
                }
                WeightProfile::Dynamic => self.generic(view, app, ctx),
            }
        };
        idx.map(|i| view.targets[i])
    }

    /// The generic streaming pass: one `F` evaluation per candidate, fed
    /// straight into the sampler. `prev_is_neighbor` is false here — this
    /// branch only runs for first-order steps (second-order steps with a
    /// previous vertex take the masked branch above).
    fn generic(
        &mut self,
        view: NeighborView<'_>,
        app: &dyn WalkApp,
        ctx: StepContext,
    ) -> Option<usize> {
        self.sampler.select_weighted_with(view.len(), |i| {
            app.weight(
                ctx,
                view.targets[i],
                view.weights[i],
                view.relation(i),
                false,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{MetaPath, Node2Vec, StaticWeighted, Uniform};
    use lightrw_graph::generators;

    const KINDS: [SamplerKind; 4] = [
        SamplerKind::InverseTransform,
        SamplerKind::Alias,
        SamplerKind::SequentialWrs,
        SamplerKind::ParallelWrs { k: 8 },
    ];

    /// Delegating wrapper that hides an app's profile, forcing the generic
    /// streaming path.
    struct ForceDynamic<'a>(&'a dyn WalkApp);

    impl WalkApp for ForceDynamic<'_> {
        fn name(&self) -> &'static str {
            "ForceDynamic"
        }
        fn second_order(&self) -> bool {
            self.0.second_order()
        }
        fn weight(&self, ctx: StepContext, nbr: VertexId, w: u32, rel: u8, pin: bool) -> u32 {
            self.0.weight(ctx, nbr, w, rel, pin)
        }
    }

    #[test]
    fn fast_paths_sample_identically_to_generic_streaming() {
        // The RNG-identity contract, exercised at the single-step level:
        // for every app × sampler kind, the profile-driven stepper and the
        // forced-generic stepper must pick the same neighbor at every
        // step, with and without the prefix cache.
        let g = generators::rmat_dataset(8, 21);
        let mut bare = g.clone();
        bare.drop_prefix_cache();
        let mp = MetaPath::new(vec![0, 1, 0]);
        let nv = Node2Vec::paper_params();
        let apps: [&dyn WalkApp; 4] = [&Uniform, &StaticWeighted, &mp, &nv];
        for app in apps {
            for kind in KINDS {
                let forced = ForceDynamic(app);
                let mut fast = HotStepper::new(app, kind, 5);
                let mut slow = HotStepper::new(&forced, kind, 5);
                let mut nocache = HotStepper::new(app, kind, 5);
                for v in 0..g.num_vertices() as VertexId {
                    let mut ctx = StepContext {
                        step: v % 7,
                        cur: v,
                        prev: None,
                    };
                    for _ in 0..3 {
                        let a = fast.step(&g, app, ctx);
                        let b = slow.step(&g, &forced, ctx);
                        let c = nocache.step(&bare, app, ctx);
                        assert_eq!(a, b, "{} {:?} fast≠generic", app.name(), kind);
                        assert_eq!(a, c, "{} {:?} cached≠uncached", app.name(), kind);
                        match a {
                            Some(next) => {
                                ctx.prev = Some(ctx.cur);
                                ctx.cur = next;
                                ctx.step += 1;
                            }
                            None => break,
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dead_ends_are_reported() {
        let g = lightrw_graph::GraphBuilder::directed().edge(0, 1).build();
        let mut s = HotStepper::new(&Uniform, SamplerKind::InverseTransform, 1);
        let ctx = |cur| StepContext {
            step: 0,
            cur,
            prev: None,
        };
        assert_eq!(s.step(&g, &Uniform, ctx(0)), Some(1));
        assert_eq!(s.step(&g, &Uniform, ctx(1)), None);
    }
}
