//! Multi-tenant walk serving: many concurrent jobs over a shared engine
//! pool.
//!
//! The ROADMAP's target is a server, not a batch harness: many independent
//! clients submit walk workloads at once and share the execution
//! resources. ThunderRW and the paper's Query Controller both get their
//! throughput from *interleaving* — many walks in flight on one engine —
//! and the session layer (DESIGN.md §6) exposes exactly the seam needed to
//! extend that idea across jobs: a [`crate::engine::WalkSession`] advances
//! in bounded batches, so a scheduler can multiplex any number of jobs
//! onto a pool of engines one batch at a time.
//!
//! [`WalkService`] is that scheduler (DESIGN.md §7):
//!
//! - **Jobs.** A [`JobSpec`] names a tenant, a fair-share `weight`, and an
//!   optional `deadline`; [`WalkService::submit`] pairs it with a
//!   [`QuerySet`] and a per-job sink. Each job runs as one session on one
//!   pool worker (least-loaded placement at submit time). The walk
//!   *definition* — fixed-length, PPR restarts, target termination —
//!   rides inside the query set as its
//!   [`crate::program::WalkProgram`] (DESIGN.md §8), so heterogeneous
//!   program mixes multiplex on one pool with no scheduler involvement;
//!   the per-tenant quota charges the program's step *cap*
//!   ([`QuerySet::total_steps`]), an upper bound for early-halting
//!   programs.
//! - **Weighted-fair interleaving.** Each [`WalkService::tick`] serves the
//!   next job in a deficit round-robin ring: the job's credit grows by
//!   `quantum × weight` and the session advances with the credit as its
//!   step budget; executed steps are charged back. Budgets are per engine
//!   lane, so a multi-lane backend can overshoot — the charge drives the
//!   credit negative and the job skips turns until repaid. Over any
//!   window where a set of jobs stays active, executed steps therefore
//!   converge to the ratio of their weights regardless of lane counts
//!   (fairness is defined in steps, the unit all backends share —
//!   model-clock engines and wall-clock engines multiplex on equal
//!   terms). Inside each round-robin round, jobs with a wall-clock
//!   deadline ([`JobSpec::wall_deadline_ms`]) are served earliest-deadline
//!   first — a tie-break that reorders turns within a round but never
//!   grants extra turns, so urgency and fairness compose (DESIGN.md §13).
//! - **Quotas and backpressure.** Per tenant, at most
//!   [`ServiceConfig::tenant_pending_steps`] requested-but-unfinished
//!   steps may be admitted; jobs beyond the budget wait in a FIFO queue
//!   (other tenants' jobs overtake a quota-blocked head, so one tenant's
//!   backlog never stalls another).
//! - **Cancellation.** [`WalkService::cancel`] flushes the job's partial
//!   paths through its own sink (each exactly once — the session-cancel
//!   contract) and releases its quota; other jobs are untouched. Deadlines
//!   do the same automatically when a job's clock (model seconds where the
//!   backend has a timing model, its accumulated wall service time
//!   otherwise) passes `deadline`.
//! - **Observability.** [`WalkService::stats`] snapshots per-tenant
//!   steps/s, queue depths, the queue-wait vs execution-time split, and
//!   p50/p99 completed-job latency ([`ServiceStats`]) — the payload the
//!   network front door's `GET /stats` serves (`lightrw::http`,
//!   DESIGN.md §13).
//!
//! ```
//! use lightrw_graph::GraphBuilder;
//! use lightrw_walker::service::{JobSpec, ServiceConfig, WalkService};
//! use lightrw_walker::{QuerySet, ReferenceEngine, SamplerKind, Uniform, WalkEngine};
//!
//! let g = GraphBuilder::directed()
//!     .num_vertices(3)
//!     .edges(vec![(0, 1), (1, 2), (2, 0)])
//!     .build();
//! let engine = ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 1);
//! let workers: Vec<&dyn WalkEngine> = vec![&engine];
//! let mut service = WalkService::new(workers, ServiceConfig::default());
//!
//! let a = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![0, 1], 4));
//! let b = service.submit(JobSpec::tenant(1), QuerySet::from_starts(vec![2], 4));
//! service.run_until_idle();
//!
//! assert_eq!(service.take_results(a).unwrap().len(), 2);
//! assert_eq!(service.take_results(b).unwrap().len(), 1);
//! assert_eq!(service.stats().completed_jobs, 2);
//! ```

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use crate::engine::{BatchProgress, WalkEngine, WalkSession, WalkSink};
use crate::path::WalkResults;
use crate::query::QuerySet;

/// A tenant identity: jobs with the same id share one quota and one row in
/// [`ServiceStats`].
pub type TenantId = u32;

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Deficit added per scheduler turn for a weight-1 job, in step
    /// attempts per engine lane (the [`crate::engine::WalkSession::advance`]
    /// budget unit). Larger quanta amortize batch overhead; smaller quanta
    /// tighten the fairness granularity.
    pub quantum: u64,
    /// Per-tenant admission budget: the sum of *requested* steps of a
    /// tenant's admitted-but-unfinished jobs never exceeds this. A job
    /// larger than the whole budget is still admitted once the tenant has
    /// nothing else in flight (so an oversized job degrades to serial
    /// execution instead of deadlocking).
    pub tenant_pending_steps: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            quantum: 4096,
            tenant_pending_steps: u64::MAX,
        }
    }
}

/// What a client asks for, independent of the query payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Quota/accounting identity.
    pub tenant: TenantId,
    /// Fair-share weight (≥ 1; 0 is clamped to 1). A weight-3 job receives
    /// 3× the steps of a weight-1 job while both are active.
    pub weight: u32,
    /// Optional latency budget in the job's clock (model seconds for
    /// engines with a timing model, accumulated wall service seconds
    /// otherwise). When exceeded, the job is cancelled with its partial
    /// paths flushed, and reported as [`JobStatus::Expired`].
    pub deadline: Option<f64>,
    /// Optional **wall-clock** deadline in milliseconds, measured from
    /// submission — the latency promise a network client declares (the
    /// jobspec `"deadline_ms"` field, DESIGN.md §13). Unlike
    /// [`JobSpec::deadline`] it also covers *queue* time: a job that
    /// waits out its whole budget behind the tenant quota expires
    /// without ever starting (start-only paths are still flushed, each
    /// exactly once). Wall deadlines additionally drive the scheduler's
    /// earliest-deadline tie-break inside the deficit round-robin turn
    /// order; model-clock deadlines are budget caps, not urgency
    /// signals, and never reorder turns.
    pub wall_deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A weight-1, no-deadline job for `tenant`.
    pub fn tenant(tenant: TenantId) -> Self {
        Self {
            tenant,
            weight: 1,
            deadline: None,
            wall_deadline_ms: None,
        }
    }

    /// Set the fair-share weight.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Set the deadline (model-or-wall seconds).
    pub fn deadline(mut self, seconds: f64) -> Self {
        self.deadline = Some(seconds);
        self
    }

    /// Set the wall-clock deadline, in milliseconds from submission.
    pub fn wall_deadline_ms(mut self, ms: u64) -> Self {
        self.wall_deadline_ms = Some(ms);
        self
    }
}

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(u32);

impl JobId {
    /// The id's dense submission-order index, stable for the service's
    /// lifetime. The network front door serializes it to clients.
    pub fn as_u32(&self) -> u32 {
        self.0
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Queued; not yet admitted (tenant quota or submission order).
    Waiting,
    /// Admitted; its session advances in scheduler turns.
    Running,
    /// Every path emitted at full length (or natural dead end).
    Completed,
    /// Cancelled by the client; partial paths were flushed.
    Cancelled,
    /// Deadline exceeded; partial paths were flushed.
    Expired,
}

impl JobStatus {
    /// True once the job will never emit again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Self::Completed | Self::Cancelled | Self::Expired)
    }
}

/// Where a job's paths go.
enum JobSink<'s> {
    /// Service-owned collecting sink, retrievable via
    /// [`WalkService::take_results`].
    Collect(WalkResults),
    /// Caller-provided streaming sink.
    External(Box<dyn WalkSink + 's>),
}

impl JobSink<'_> {
    fn as_sink(&mut self) -> &mut dyn WalkSink {
        match self {
            Self::Collect(results) => results,
            Self::External(sink) => &mut **sink,
        }
    }
}

/// One job's scheduler state.
struct JobEntry<'s> {
    tenant: TenantId,
    weight: u64,
    deadline: Option<f64>,
    /// Wall-clock deadline as a duration past `submitted_at`.
    wall_deadline: Option<Duration>,
    /// Query payload, kept until the session starts (and for
    /// cancel-while-waiting, which still emits one path per query).
    queries: Option<QuerySet>,
    /// Requested steps, charged against the tenant quota while admitted.
    requested_steps: u64,
    worker: usize,
    status: JobStatus,
    session: Option<Box<dyn WalkSession + 's>>,
    sink: JobSink<'s>,
    /// Deficit round-robin credit, in steps. Signed: multi-lane engines
    /// execute up to `lanes × budget` steps per `advance`, and the
    /// overshoot is *borrowed* — the credit goes negative and the job
    /// skips turns until repaid — so long-run step shares follow the
    /// weights whatever each backend's lane count is.
    credit: i64,
    /// Deficit round-robin round counter: incremented each time the job
    /// is served, so "smallest round first" serves every running job
    /// exactly once per round whatever the tie-break order inside a
    /// round. Newly admitted jobs join the ring's current round.
    round: u64,
    /// Wall seconds this job's `advance`/`cancel` calls consumed.
    service_secs: f64,
    /// The job's clock at termination (model-or-wall; see [`JobSpec`]).
    final_clock: Option<f64>,
    submitted_at: Instant,
    /// Wall seconds spent queued before admission; set at admission, or
    /// to the full latency when the job terminates without ever being
    /// admitted (cancelled/expired while waiting).
    queue_wait_s: Option<f64>,
    /// Wall seconds from admission to termination (latency minus queue
    /// wait); set at termination, 0 for never-admitted jobs.
    exec_s: Option<f64>,
    /// Wall seconds from submission to termination.
    latency_s: Option<f64>,
    steps: u64,
    paths: usize,
    results_taken: bool,
}

impl JobEntry<'_> {
    /// The job's clock: model seconds when the backend has a timing model,
    /// accumulated wall service seconds otherwise.
    fn clock(&self) -> f64 {
        self.final_clock.unwrap_or_else(|| {
            self.session
                .as_ref()
                .and_then(|s| s.model_seconds())
                .unwrap_or(self.service_secs)
        })
    }

    /// Absolute wall-clock deadline instant, if the job declared one.
    fn wall_due(&self) -> Option<Instant> {
        self.wall_deadline.map(|d| self.submitted_at + d)
    }

    /// True once the job's wall-clock deadline has passed.
    fn wall_expired(&self, now: Instant) -> bool {
        self.wall_due().is_some_and(|due| now >= due)
    }
}

/// Outcome of one scheduler turn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutcome {
    /// The job served this turn; `None` when nothing was runnable.
    pub job: Option<JobId>,
    /// The served session's batch progress (zeroed when idle).
    pub progress: BatchProgress,
}

/// Per-tenant service counters (one [`ServiceStats`] row).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Jobs ever submitted.
    pub submitted: usize,
    /// Jobs completed at full length.
    pub completed: usize,
    /// Jobs cancelled by the client.
    pub cancelled: usize,
    /// Jobs terminated by their deadline.
    pub expired: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs queued behind the quota (the backpressure depth).
    pub waiting: usize,
    /// Requested steps currently admitted (quota in use).
    pub pending_steps: u64,
    /// Steps executed across all of the tenant's jobs.
    pub steps: u64,
    /// Model-or-wall seconds consumed across the tenant's jobs.
    pub service_secs: f64,
    /// Wall seconds the tenant's jobs spent queued for admission
    /// (elapsed-so-far for jobs still waiting). With
    /// [`TenantStats::exec_secs`] this splits end-to-end latency into
    /// queuing vs compute, so a latency bench can attribute p99 growth.
    pub queue_wait_secs: f64,
    /// Wall seconds the tenant's jobs spent admitted — from admission to
    /// termination (elapsed-so-far for jobs still running).
    pub exec_secs: f64,
}

impl TenantStats {
    /// Executed steps per model-or-wall second of service time.
    pub fn steps_per_sec(&self) -> f64 {
        if self.service_secs > 0.0 {
            self.steps as f64 / self.service_secs
        } else {
            0.0
        }
    }
}

/// A point-in-time snapshot of the whole service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Per-tenant rows, ascending tenant id.
    pub tenants: Vec<TenantStats>,
    /// Scheduler turns taken so far (idle turns excluded).
    pub ticks: u64,
    /// Steps executed across all jobs.
    pub total_steps: u64,
    /// Jobs currently admitted.
    pub running_jobs: usize,
    /// Jobs queued for admission.
    pub waiting_jobs: usize,
    /// Jobs that reached [`JobStatus::Completed`].
    pub completed_jobs: usize,
    /// Median submit→terminate latency over terminated jobs, wall
    /// seconds (0 when none terminated yet).
    pub p50_latency_s: f64,
    /// 99th-percentile submit→terminate latency, wall seconds.
    pub p99_latency_s: f64,
    /// Median submit→admit queue wait over terminated jobs, wall seconds.
    pub p50_queue_wait_s: f64,
    /// 99th-percentile submit→admit queue wait, wall seconds.
    pub p99_queue_wait_s: f64,
    /// Median admit→terminate execution time over terminated jobs, wall
    /// seconds.
    pub p50_exec_s: f64,
    /// 99th-percentile admit→terminate execution time, wall seconds.
    pub p99_exec_s: f64,
}

/// Nearest-rank quantile of an ascending-sorted slice (`q` in `[0, 1]`);
/// 0 for an empty slice. Backs the [`ServiceStats`] latency percentiles;
/// public so consumers can derive other quantiles from their own latency
/// samples with the same convention.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The multi-tenant scheduler over a pool of engines. See the module docs
/// for the scheduling model.
///
/// # Job retention
///
/// Job records are kept for the service's lifetime so [`JobId`]s stay
/// valid, but heavy state is released as jobs retire: the per-session
/// engine state (SoA buffers, DRAM models) drops at termination and a
/// collecting job's paths are freed by [`WalkService::take_results`].
/// What remains per terminal job is a small constant-size accounting
/// record; a service that must bound even that should be recreated per
/// epoch (ids are not meaningful across instances anyway).
pub struct WalkService<'s> {
    workers: Vec<&'s dyn WalkEngine>,
    /// Jobs assigned per worker (running or waiting), for placement.
    worker_load: Vec<usize>,
    cfg: ServiceConfig,
    jobs: Vec<JobEntry<'s>>,
    /// Deficit round-robin ring of running jobs.
    ring: VecDeque<JobId>,
    /// Admission queue, submission order.
    waiting: VecDeque<JobId>,
    /// Requested steps currently admitted per tenant (the quota in use),
    /// maintained incrementally so admission never rescans the job list.
    pending: HashMap<TenantId, u64>,
    ticks: u64,
}

impl<'s> WalkService<'s> {
    /// Create a service over `workers`. The pool is any mix of backends —
    /// every worker is just a [`WalkEngine`].
    ///
    /// # Panics
    ///
    /// Panics on an empty pool or a zero `cfg.quantum`.
    pub fn new(workers: Vec<&'s dyn WalkEngine>, cfg: ServiceConfig) -> Self {
        assert!(!workers.is_empty(), "service needs at least one worker");
        assert!(cfg.quantum >= 1, "quantum must be at least 1 step");
        let worker_load = vec![0; workers.len()];
        Self {
            workers,
            worker_load,
            cfg,
            jobs: Vec::new(),
            ring: VecDeque::new(),
            waiting: VecDeque::new(),
            pending: HashMap::new(),
            ticks: 0,
        }
    }

    /// Number of pool workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job whose paths are collected service-side; retrieve them
    /// with [`WalkService::take_results`] once terminal.
    pub fn submit(&mut self, spec: JobSpec, queries: QuerySet) -> JobId {
        let sink = JobSink::Collect(WalkResults::with_capacity(
            queries.len(),
            queries
                .queries()
                .first()
                .map_or(1, |q| q.length as usize + 1),
        ));
        self.submit_with_sink(spec, queries, sink)
    }

    /// Submit a job that streams paths into a caller-provided sink (each
    /// path exactly once, in query-id order — the session contract).
    pub fn submit_streaming(
        &mut self,
        spec: JobSpec,
        queries: QuerySet,
        sink: Box<dyn WalkSink + 's>,
    ) -> JobId {
        self.submit_with_sink(spec, queries, JobSink::External(sink))
    }

    fn submit_with_sink(&mut self, spec: JobSpec, queries: QuerySet, sink: JobSink<'s>) -> JobId {
        // Least-loaded placement, ties to the lowest worker index.
        let worker = (0..self.workers.len())
            .min_by_key(|&w| self.worker_load[w])
            .expect("non-empty pool");
        self.worker_load[worker] += 1;
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(JobEntry {
            tenant: spec.tenant,
            weight: spec.weight.max(1) as u64,
            deadline: spec.deadline,
            wall_deadline: spec.wall_deadline_ms.map(Duration::from_millis),
            requested_steps: queries.total_steps(),
            queries: Some(queries),
            worker,
            status: JobStatus::Waiting,
            session: None,
            sink,
            credit: 0,
            round: 0,
            service_secs: 0.0,
            final_clock: None,
            submitted_at: Instant::now(),
            queue_wait_s: None,
            exec_s: None,
            latency_s: None,
            steps: 0,
            paths: 0,
            results_taken: false,
        });
        self.waiting.push_back(id);
        self.admit();
        id
    }

    /// Move every admissible waiting job into the run ring. FIFO per
    /// tenant; a quota-blocked job does not block other tenants behind it.
    /// Waiting jobs whose wall-clock deadline has already passed are not
    /// admitted: they expire in place (start-and-cancel, so they still
    /// flush one start-only path per query — the same contract as
    /// cancel-while-waiting).
    fn admit(&mut self) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.waiting.len() {
            let id = self.waiting[i];
            if self.jobs[id.0 as usize].wall_expired(now) {
                self.waiting.remove(i);
                let job = &mut self.jobs[id.0 as usize];
                let queries = job.queries.take().expect("waiting job keeps its queries");
                job.session = Some(self.workers[job.worker].start_session(&queries));
                self.terminate(id, JobStatus::Expired);
            } else {
                i += 1;
            }
        }
        // Admitted jobs join the ring's current round so they get a turn
        // this round without stealing extra turns from anyone.
        let join_round = self
            .ring
            .iter()
            .map(|&r| self.jobs[r.0 as usize].round)
            .min()
            .unwrap_or(0);
        let mut still_waiting = VecDeque::new();
        // Tenants already skipped this pass: keeps per-tenant FIFO order
        // (a tenant's later job must not overtake its blocked earlier one).
        let mut blocked_tenants = Vec::new();
        while let Some(id) = self.waiting.pop_front() {
            let tenant = self.jobs[id.0 as usize].tenant;
            if blocked_tenants.contains(&tenant) {
                still_waiting.push_back(id);
                continue;
            }
            let pending = self.pending.get(&tenant).copied().unwrap_or(0);
            let job = &mut self.jobs[id.0 as usize];
            let fits = pending.saturating_add(job.requested_steps) <= self.cfg.tenant_pending_steps
                || pending == 0; // an oversized lone job must not deadlock
            if !fits {
                blocked_tenants.push(tenant);
                still_waiting.push_back(id);
                continue;
            }
            let queries = job.queries.take().expect("waiting job keeps its queries");
            job.session = Some(self.workers[job.worker].start_session(&queries));
            job.status = JobStatus::Running;
            job.round = join_round;
            job.queue_wait_s = Some(job.submitted_at.elapsed().as_secs_f64());
            *self.pending.entry(tenant).or_insert(0) += job.requested_steps;
            self.ring.push_back(id);
        }
        self.waiting = still_waiting;
    }

    /// Pick the next turn: the ring slot with the smallest round (every
    /// running job is served exactly once per round — the deficit
    /// round-robin invariant), breaking round ties by the earliest
    /// wall-clock deadline (no-deadline jobs last), then by ring order.
    /// Deadlines therefore reorder turns *within* a round but never buy
    /// extra turns across rounds, so the weighted step shares are
    /// untouched; with no wall deadlines in the ring this reduces to
    /// plain FIFO rotation.
    fn next_turn(&self) -> Option<usize> {
        let mut best: Option<(usize, u64, Option<Instant>)> = None;
        for (i, &id) in self.ring.iter().enumerate() {
            let job = &self.jobs[id.0 as usize];
            let due = job.wall_due();
            let better = match best {
                None => true,
                Some((_, round, best_due)) => {
                    job.round < round
                        || (job.round == round
                            && match (due, best_due) {
                                (Some(a), Some(b)) => a < b,
                                (Some(_), None) => true,
                                _ => false,
                            })
                }
            };
            if better {
                best = Some((i, job.round, due));
            }
        }
        best.map(|(i, _, _)| i)
    }

    /// Serve one scheduler turn: the [`Self::next_turn`] job (smallest
    /// round, then earliest wall deadline) advances with its accumulated
    /// deficit as the step budget. Returns what ran; `job: None` means
    /// the service is idle (nothing running or admissible).
    pub fn tick(&mut self) -> TickOutcome {
        self.admit();
        let Some(turn) = self.next_turn() else {
            return TickOutcome {
                job: None,
                progress: BatchProgress::default(),
            };
        };
        let id = self.ring.remove(turn).expect("turn index is in the ring");
        self.ticks += 1;
        let job = &mut self.jobs[id.0 as usize];
        // The turn is consumed even when the credit check below skips
        // execution: rounds count turns, not executed batches.
        job.round += 1;
        let grant = self.cfg.quantum.saturating_mul(job.weight);
        job.credit = job.credit.saturating_add(grant.min(i64::MAX as u64) as i64);
        if job.credit <= 0 {
            // Still repaying an earlier multi-lane overshoot: this turn
            // only accrues credit, so lane-rich jobs cannot outrun the
            // weighted share.
            self.ring.push_back(id);
            return TickOutcome {
                job: Some(id),
                progress: BatchProgress::default(),
            };
        }
        let session = job.session.as_mut().expect("running job has a session");
        let t = Instant::now();
        let progress = session.advance(job.credit as u64, job.sink.as_sink());
        job.service_secs += t.elapsed().as_secs_f64();
        // Charge executed steps (at least one per served turn, so
        // dead-end-only batches still drain the credit). The budget is
        // per engine lane, so a multi-lane backend may overshoot; the
        // signed credit carries that debt into the following turns.
        let charge = progress.steps.max(1).min(i64::MAX as u64) as i64;
        job.credit = job.credit.saturating_sub(charge);
        job.steps += progress.steps;
        job.paths += progress.paths_completed;
        if progress.finished {
            self.finish(id, JobStatus::Completed);
        } else if job.deadline.is_some_and(|d| job.clock() > d) || job.wall_expired(Instant::now())
        {
            self.terminate(id, JobStatus::Expired);
        } else {
            self.ring.push_back(id);
        }
        TickOutcome {
            job: Some(id),
            progress,
        }
    }

    /// Drive ticks until no job is running or admissible.
    pub fn run_until_idle(&mut self) {
        while self.tick().job.is_some() {}
    }

    /// True when nothing is running and nothing waits for admission.
    pub fn is_idle(&self) -> bool {
        self.ring.is_empty() && self.waiting.is_empty()
    }

    /// Jobs currently admitted (in the run ring). O(1), unlike
    /// [`Self::stats`].
    pub fn running_len(&self) -> usize {
        self.ring.len()
    }

    /// Jobs queued for admission — the global backpressure depth the
    /// network front door sheds against (DESIGN.md §13). O(1).
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Every non-terminal job id, run ring first then admission queue.
    /// The serve loop's drain uses this to cancel in-flight work when
    /// the shutdown deadline passes.
    pub fn active_jobs(&self) -> Vec<JobId> {
        self.ring
            .iter()
            .chain(self.waiting.iter())
            .copied()
            .collect()
    }

    /// Cancel a job: its unfinished walks are finalized where they stand
    /// and flushed through its sink (each exactly once), its quota is
    /// released, and nothing else is touched. Cancelling a waiting job
    /// starts-and-cancels its session, so it still emits one start-vertex
    /// path per query — the cancel-before-first-`advance` contract every
    /// engine shares (DESIGN.md §6). Terminal jobs are left unchanged.
    pub fn cancel(&mut self, id: JobId) {
        match self.jobs[id.0 as usize].status {
            JobStatus::Waiting => {
                let job = &mut self.jobs[id.0 as usize];
                let queries = job.queries.take().expect("waiting job keeps its queries");
                job.session = Some(self.workers[job.worker].start_session(&queries));
                self.waiting.retain(|&w| w != id);
                self.terminate(id, JobStatus::Cancelled);
            }
            JobStatus::Running => {
                self.ring.retain(|&r| r != id);
                self.terminate(id, JobStatus::Cancelled);
            }
            _ => {}
        }
        // The cancel may have freed quota; admit immediately so callers
        // observe successors running right after the call.
        self.admit();
    }

    /// Flush a job's session via `cancel` and record it terminal with
    /// `status`. The caller has already detached `id` from ring/queue.
    fn terminate(&mut self, id: JobId, status: JobStatus) {
        let job = &mut self.jobs[id.0 as usize];
        let session = job.session.as_mut().expect("terminating job has a session");
        let t = Instant::now();
        let progress = session.cancel(job.sink.as_sink());
        job.service_secs += t.elapsed().as_secs_f64();
        job.paths += progress.paths_completed;
        self.finish(id, status);
    }

    /// Record a job terminal: latency (and its queue-wait/exec split),
    /// final clock, load release. Freed quota is picked up by the next
    /// `admit` — at the next tick, submit, or cancel — not here:
    /// `finish` runs *from inside* `admit` for wall-expired waiting
    /// jobs, so it must not re-enter it.
    fn finish(&mut self, id: JobId, status: JobStatus) {
        let job = &mut self.jobs[id.0 as usize];
        // Only admitted jobs hold quota; a cancelled-while-waiting job
        // reaches here straight from `Waiting` and never charged any.
        if job.status == JobStatus::Running {
            let pending = self
                .pending
                .get_mut(&job.tenant)
                .expect("running job holds tenant quota");
            *pending = pending.saturating_sub(job.requested_steps);
        }
        job.status = status;
        let latency = job.submitted_at.elapsed().as_secs_f64();
        job.latency_s = Some(latency);
        // A never-admitted job spent its whole life queued.
        let queue_wait = *job.queue_wait_s.get_or_insert(latency);
        job.exec_s = Some((latency - queue_wait).max(0.0));
        job.final_clock = Some(
            job.session
                .as_ref()
                .and_then(|s| s.model_seconds())
                .unwrap_or(job.service_secs),
        );
        // The session borrows the engine, not the service, so it could
        // stay; dropping it eagerly releases per-session state (SoA
        // buffers, DRAM models) as jobs retire.
        job.session = None;
        self.worker_load[job.worker] -= 1;
    }

    /// A job's current status.
    pub fn status(&self, id: JobId) -> JobStatus {
        self.jobs[id.0 as usize].status
    }

    /// Steps a job has executed so far.
    pub fn job_steps(&self, id: JobId) -> u64 {
        self.jobs[id.0 as usize].steps
    }

    /// Paths a job has emitted so far.
    pub fn job_paths(&self, id: JobId) -> usize {
        self.jobs[id.0 as usize].paths
    }

    /// Submit→terminate wall latency of a terminal job.
    pub fn job_latency_s(&self, id: JobId) -> Option<f64> {
        self.jobs[id.0 as usize].latency_s
    }

    /// A terminal job's `(queue_wait, exec)` wall-second split: time
    /// queued before admission vs time admitted. The two sum to
    /// [`Self::job_latency_s`]; a never-admitted job (cancelled or
    /// wall-expired while waiting) reports `(latency, 0)`.
    pub fn job_split_s(&self, id: JobId) -> Option<(f64, f64)> {
        let job = &self.jobs[id.0 as usize];
        Some((job.queue_wait_s?, job.exec_s?))
    }

    /// Model-or-wall seconds the job consumed (see [`JobSpec::deadline`]).
    pub fn job_clock_s(&self, id: JobId) -> f64 {
        self.jobs[id.0 as usize].clock()
    }

    /// Take a collecting job's results once it is terminal. `None` for
    /// streaming jobs, non-terminal jobs, or results already taken.
    pub fn take_results(&mut self, id: JobId) -> Option<WalkResults> {
        let job = &mut self.jobs[id.0 as usize];
        if !job.status.is_terminal() || job.results_taken {
            return None;
        }
        match &mut job.sink {
            // (`mem::replace` with a fresh empty set, not `mem::take`:
            // the derived `Default` has no leading offset sentinel.)
            JobSink::Collect(results) => {
                job.results_taken = true;
                Some(std::mem::replace(results, WalkResults::new()))
            }
            JobSink::External(_) => None,
        }
    }

    /// Snapshot the service: per-tenant rates and depths, global latency
    /// percentiles.
    pub fn stats(&self) -> ServiceStats {
        let mut tenants: Vec<TenantStats> = Vec::new();
        let mut index: HashMap<TenantId, usize> = HashMap::new();
        for job in &self.jobs {
            let slot = *index.entry(job.tenant).or_insert_with(|| {
                tenants.push(TenantStats {
                    tenant: job.tenant,
                    submitted: 0,
                    completed: 0,
                    cancelled: 0,
                    expired: 0,
                    running: 0,
                    waiting: 0,
                    pending_steps: 0,
                    steps: 0,
                    service_secs: 0.0,
                    queue_wait_secs: 0.0,
                    exec_secs: 0.0,
                });
                tenants.len() - 1
            });
            let row = &mut tenants[slot];
            row.submitted += 1;
            row.steps += job.steps;
            row.service_secs += job.clock();
            // The queue/exec split: recorded values for terminal jobs,
            // elapsed-so-far attribution for in-flight ones.
            match (job.queue_wait_s, job.exec_s) {
                (Some(q), Some(e)) => {
                    row.queue_wait_secs += q;
                    row.exec_secs += e;
                }
                (Some(q), None) => {
                    row.queue_wait_secs += q;
                    row.exec_secs += (job.submitted_at.elapsed().as_secs_f64() - q).max(0.0);
                }
                _ => row.queue_wait_secs += job.submitted_at.elapsed().as_secs_f64(),
            }
            match job.status {
                JobStatus::Waiting => row.waiting += 1,
                JobStatus::Running => {
                    row.running += 1;
                    row.pending_steps += job.requested_steps;
                }
                JobStatus::Completed => row.completed += 1,
                JobStatus::Cancelled => row.cancelled += 1,
                JobStatus::Expired => row.expired += 1,
            }
        }
        tenants.sort_by_key(|t| t.tenant);
        let mut latencies: Vec<f64> = self.jobs.iter().filter_map(|j| j.latency_s).collect();
        latencies.sort_by(f64::total_cmp);
        let mut waits: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.status.is_terminal())
            .filter_map(|j| j.queue_wait_s)
            .collect();
        waits.sort_by(f64::total_cmp);
        let mut execs: Vec<f64> = self.jobs.iter().filter_map(|j| j.exec_s).collect();
        execs.sort_by(f64::total_cmp);
        ServiceStats {
            ticks: self.ticks,
            total_steps: self.jobs.iter().map(|j| j.steps).sum(),
            running_jobs: self.ring.len(),
            waiting_jobs: self.waiting.len(),
            completed_jobs: self
                .jobs
                .iter()
                .filter(|j| j.status == JobStatus::Completed)
                .count(),
            p50_latency_s: quantile(&latencies, 0.50),
            p99_latency_s: quantile(&latencies, 0.99),
            p50_queue_wait_s: quantile(&waits, 0.50),
            p99_queue_wait_s: quantile(&waits, 0.99),
            p50_exec_s: quantile(&execs, 0.50),
            p99_exec_s: quantile(&execs, 0.99),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Uniform;
    use crate::reference::{ReferenceEngine, SamplerKind};
    use lightrw_graph::{generators, GraphBuilder};
    use lightrw_graph::{Graph, VertexId};

    fn ring_graph() -> Graph {
        // Every vertex has exactly one out-neighbor: walks never dead-end
        // and are deterministic, so step accounting is exact.
        GraphBuilder::directed()
            .num_vertices(4)
            .edges(vec![(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
    }

    fn reference(g: &Graph) -> ReferenceEngine<'_> {
        ReferenceEngine::new(g, &Uniform, SamplerKind::InverseTransform, 7)
    }

    #[test]
    fn jobs_complete_with_exact_results() {
        let g = generators::rmat_dataset(7, 3);
        let engine = reference(&g);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 2);
        let mut service = WalkService::new(vec![&engine], ServiceConfig::default());
        let job = service.submit(JobSpec::tenant(0), qs.clone());
        assert_eq!(service.status(job), JobStatus::Running);
        service.run_until_idle();
        assert_eq!(service.status(job), JobStatus::Completed);
        // A single job on a single worker is just a batched session, so
        // results are bit-identical to the monolithic run.
        assert_eq!(service.take_results(job).unwrap(), engine.run(&qs));
        assert_eq!(service.take_results(job), None, "results taken once");
    }

    #[test]
    fn interleaved_jobs_each_match_their_monolithic_run() {
        let g = generators::rmat_dataset(7, 5);
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 3, // force many interleavings
                ..Default::default()
            },
        );
        let qa = QuerySet::per_nonisolated_vertex(&g, 5, 1);
        let qb = QuerySet::per_nonisolated_vertex(&g, 8, 2);
        let a = service.submit(JobSpec::tenant(0), qa.clone());
        let b = service.submit(JobSpec::tenant(1), qb.clone());
        service.run_until_idle();
        assert_eq!(service.take_results(a).unwrap(), engine.run(&qa));
        assert_eq!(service.take_results(b).unwrap(), engine.run(&qb));
    }

    #[test]
    fn weighted_fairness_in_steps() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 8,
                ..Default::default()
            },
        );
        // Two long jobs; weight 3 vs 1. Stop while both still run.
        let heavy = service.submit(
            JobSpec::tenant(0).weight(3),
            QuerySet::from_starts(vec![0; 64], 1000),
        );
        let light = service.submit(
            JobSpec::tenant(1).weight(1),
            QuerySet::from_starts(vec![1; 64], 1000),
        );
        for _ in 0..200 {
            service.tick();
        }
        assert_eq!(service.status(heavy), JobStatus::Running);
        assert_eq!(service.status(light), JobStatus::Running);
        let ratio = service.job_steps(heavy) as f64 / service.job_steps(light) as f64;
        assert!(
            (2.4..3.6).contains(&ratio),
            "weighted share off: heavy/light = {ratio:.2}"
        );
    }

    #[test]
    fn tenant_quota_backpressures_without_starving_others() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 16,
                // Exactly one 10×10-step job per tenant in flight.
                tenant_pending_steps: 100,
            },
        );
        let qs = || QuerySet::from_starts(vec![0; 10], 10);
        let a1 = service.submit(JobSpec::tenant(0), qs());
        let a2 = service.submit(JobSpec::tenant(0), qs());
        let b1 = service.submit(JobSpec::tenant(1), qs());
        // Tenant 0's second job is quota-blocked; tenant 1 admits past it.
        assert_eq!(service.status(a1), JobStatus::Running);
        assert_eq!(service.status(a2), JobStatus::Waiting);
        assert_eq!(service.status(b1), JobStatus::Running);
        let depths = service.stats();
        let t0 = &depths.tenants[0];
        assert_eq!((t0.running, t0.waiting, t0.pending_steps), (1, 1, 100));
        service.run_until_idle();
        for j in [a1, a2, b1] {
            assert_eq!(service.status(j), JobStatus::Completed);
            assert_eq!(service.take_results(j).unwrap().len(), 10);
        }
    }

    #[test]
    fn oversized_job_admits_alone_instead_of_deadlocking() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 64,
                tenant_pending_steps: 5, // smaller than any job below
            },
        );
        let big = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![0], 50));
        let big2 = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![1], 50));
        assert_eq!(service.status(big), JobStatus::Running, "lone job admits");
        assert_eq!(service.status(big2), JobStatus::Waiting, "second waits");
        service.run_until_idle();
        assert_eq!(service.status(big2), JobStatus::Completed);
    }

    #[test]
    fn cancel_flushes_partials_and_leaves_other_tenants_alone() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 4,
                ..Default::default()
            },
        );
        let doomed = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![0; 4], 500));
        let safe = service.submit(JobSpec::tenant(1), QuerySet::from_starts(vec![1; 4], 20));
        for _ in 0..6 {
            service.tick();
        }
        service.cancel(doomed);
        assert_eq!(service.status(doomed), JobStatus::Cancelled);
        let partial = service.take_results(doomed).unwrap();
        assert_eq!(partial.len(), 4, "every query flushed exactly once");
        assert!(partial.total_steps() < 4 * 500, "paths are partial");
        // The other tenant's job is untouched and completes in full.
        service.run_until_idle();
        assert_eq!(service.status(safe), JobStatus::Completed);
        let full = service.take_results(safe).unwrap();
        assert_eq!(full.len(), 4);
        assert_eq!(full.total_steps(), 4 * 20);
        // Cancelling a terminal job is a no-op.
        service.cancel(doomed);
        assert_eq!(service.status(doomed), JobStatus::Cancelled);
    }

    #[test]
    fn cancel_while_waiting_emits_start_only_paths() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 8,
                tenant_pending_steps: 10,
            },
        );
        let running = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![0], 10));
        let queued = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![2, 3], 10));
        assert_eq!(service.status(queued), JobStatus::Waiting);
        service.cancel(queued);
        assert_eq!(service.status(queued), JobStatus::Cancelled);
        let flushed = service.take_results(queued).unwrap();
        assert_eq!(flushed.len(), 2, "one path per query, exactly once");
        assert_eq!(flushed.path(0), &[2], "start-only partial path");
        assert_eq!(flushed.path(1), &[3]);
        service.run_until_idle();
        assert_eq!(service.status(running), JobStatus::Completed);
    }

    #[test]
    fn deadline_expires_job_with_partial_flush() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 2,
                ..Default::default()
            },
        );
        // Wall-clock backend: any positive service time exceeds a zero
        // deadline on the first turn.
        let job = service.submit(
            JobSpec::tenant(3).deadline(0.0),
            QuerySet::from_starts(vec![0; 8], 1000),
        );
        service.run_until_idle();
        assert_eq!(service.status(job), JobStatus::Expired);
        let partial = service.take_results(job).unwrap();
        assert_eq!(partial.len(), 8, "expiry still flushes every query once");
        assert!(partial.total_steps() < 8 * 1000);
        let stats = service.stats();
        assert_eq!(stats.tenants[0].expired, 1);
    }

    #[test]
    fn earliest_wall_deadline_served_first_within_each_round() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 4,
                ..Default::default()
            },
        );
        let long = || QuerySet::from_starts(vec![0; 8], 1000);
        let relaxed = service.submit(JobSpec::tenant(0), long());
        let lax = service.submit(JobSpec::tenant(1).wall_deadline_ms(3_600_000), long());
        let urgent = service.submit(JobSpec::tenant(2).wall_deadline_ms(60_000), long());
        // Within every round: urgent (earliest deadline) first, then lax,
        // then the deadline-free job — submission order notwithstanding.
        for round in 0..3 {
            for expect in [urgent, lax, relaxed] {
                let out = service.tick();
                assert_eq!(out.job, Some(expect), "round {round}");
            }
        }
        // Exactly one turn each per round: step shares stay fair.
        let s = service.job_steps(urgent);
        assert!(service.job_steps(relaxed) == s && service.job_steps(lax) == s);
    }

    #[test]
    fn wall_deadline_expires_running_job_with_partial_flush() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 2,
                ..Default::default()
            },
        );
        let job = service.submit(
            JobSpec::tenant(0).wall_deadline_ms(5),
            QuerySet::from_starts(vec![0; 6], 1000),
        );
        assert_eq!(service.status(job), JobStatus::Running);
        // Let the deadline lapse while admitted; the first post-advance
        // check then expires the job.
        std::thread::sleep(Duration::from_millis(10));
        service.run_until_idle();
        assert_eq!(service.status(job), JobStatus::Expired);
        let partial = service.take_results(job).unwrap();
        assert_eq!(partial.len(), 6, "expiry flushes every query once");
        assert!(partial.total_steps() < 6 * 1000);
    }

    #[test]
    fn wall_deadline_expires_waiting_job_without_admission() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 8,
                tenant_pending_steps: 10,
            },
        );
        let running = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![0], 10));
        // Quota-blocked behind `running`; its budget runs out before any
        // quota frees up, so it can never be admitted.
        let doomed = service.submit(
            JobSpec::tenant(0).wall_deadline_ms(20),
            QuerySet::from_starts(vec![2, 3], 10),
        );
        assert_eq!(service.status(doomed), JobStatus::Waiting);
        std::thread::sleep(Duration::from_millis(25));
        service.tick();
        assert_eq!(service.status(doomed), JobStatus::Expired);
        let flushed = service.take_results(doomed).unwrap();
        assert_eq!(flushed.len(), 2, "one start-only path per query");
        assert_eq!(flushed.path(0), &[2]);
        let (queue_wait, exec) = service.job_split_s(doomed).unwrap();
        assert_eq!(exec, 0.0, "never admitted: no execution time");
        assert_eq!(Some(queue_wait), service.job_latency_s(doomed));
        service.run_until_idle();
        assert_eq!(service.status(running), JobStatus::Completed);
    }

    #[test]
    fn queue_wait_and_exec_split_sums_to_latency() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(
            vec![&engine],
            ServiceConfig {
                quantum: 16,
                tenant_pending_steps: 100,
            },
        );
        let qs = || QuerySet::from_starts(vec![0; 10], 10);
        let first = service.submit(JobSpec::tenant(0), qs());
        let queued = service.submit(JobSpec::tenant(0), qs());
        assert_eq!(service.status(queued), JobStatus::Waiting);
        service.run_until_idle();
        for job in [first, queued] {
            let (queue_wait, exec) = service.job_split_s(job).unwrap();
            let latency = service.job_latency_s(job).unwrap();
            assert!(queue_wait >= 0.0 && exec > 0.0);
            assert!(
                (queue_wait + exec - latency).abs() < 1e-9,
                "split must sum to latency"
            );
        }
        // The queued job waited at least as long as its predecessor's
        // whole life ran, so its wait dominates the first job's.
        let w_first = service.job_split_s(first).unwrap().0;
        let w_queued = service.job_split_s(queued).unwrap().0;
        assert!(w_queued >= w_first);
        let stats = service.stats();
        let row = &stats.tenants[0];
        assert!(row.queue_wait_secs >= w_queued);
        assert!(row.exec_secs > 0.0);
        assert!(stats.p99_queue_wait_s >= stats.p50_queue_wait_s);
        assert!(stats.p99_exec_s >= stats.p50_exec_s);
        assert!(stats.p50_exec_s > 0.0);
    }

    #[test]
    fn streaming_sink_receives_ordered_exactly_once_emissions() {
        let g = generators::rmat_dataset(7, 9);
        let engine = reference(&g);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 6);
        let n = qs.len();
        let mut seen: Vec<u32> = Vec::new();
        {
            let mut service = WalkService::new(
                vec![&engine],
                ServiceConfig {
                    quantum: 5,
                    ..Default::default()
                },
            );
            let sink = Box::new(|id: u32, _p: &[VertexId]| seen.push(id));
            let job = service.submit_streaming(JobSpec::tenant(0), qs, sink);
            service.run_until_idle();
            assert_eq!(service.status(job), JobStatus::Completed);
            assert_eq!(service.job_paths(job), n);
            assert_eq!(service.take_results(job), None, "streaming job");
        }
        let expect: Vec<u32> = (0..n as u32).collect();
        assert_eq!(seen, expect, "dense ascending ids, once each");
    }

    #[test]
    fn pool_places_jobs_least_loaded() {
        let g = ring_graph();
        let e1 = reference(&g);
        let e2 = ReferenceEngine::new(&g, &Uniform, SamplerKind::Alias, 9);
        let mut service = WalkService::new(vec![&e1, &e2], ServiceConfig::default());
        assert_eq!(service.num_workers(), 2);
        for i in 0..4 {
            service.submit(JobSpec::tenant(i), QuerySet::from_starts(vec![0], 5));
        }
        // 4 jobs over 2 workers → 2 each.
        assert_eq!(service.worker_load, vec![2, 2]);
        service.run_until_idle();
        assert_eq!(service.worker_load, vec![0, 0]);
        assert_eq!(service.stats().completed_jobs, 4);
    }

    #[test]
    fn stats_snapshot_counts_and_percentiles() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(vec![&engine], ServiceConfig::default());
        let a = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![0; 3], 7));
        let b = service.submit(JobSpec::tenant(1), QuerySet::from_starts(vec![1; 2], 9));
        service.run_until_idle();
        let stats = service.stats();
        assert_eq!(stats.tenants.len(), 2);
        assert_eq!(stats.tenants[0].tenant, 0);
        assert_eq!(stats.tenants[0].steps, 3 * 7);
        assert_eq!(stats.tenants[1].steps, 2 * 9);
        assert_eq!(stats.total_steps, 3 * 7 + 2 * 9);
        assert_eq!(stats.completed_jobs, 2);
        assert!(stats.p50_latency_s > 0.0);
        assert!(stats.p99_latency_s >= stats.p50_latency_s);
        assert!(stats.tenants[0].steps_per_sec() > 0.0);
        for j in [a, b] {
            assert!(service.job_latency_s(j).unwrap() > 0.0);
            assert!(service.job_clock_s(j) > 0.0);
        }
    }

    #[test]
    fn empty_query_set_job_completes_and_takes_once() {
        // An empty QuerySet is legal (only zero *length* is rejected);
        // the job must terminate with zero paths, and take_results must
        // still honour the take-once contract.
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(vec![&engine], ServiceConfig::default());
        let job = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![], 5));
        service.run_until_idle();
        assert_eq!(service.status(job), JobStatus::Completed);
        assert_eq!(service.job_steps(job), 0);
        let results = service.take_results(job).unwrap();
        assert!(results.is_empty());
        assert_eq!(service.take_results(job), None, "taken exactly once");
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&xs, 0.75), 3.0);
        assert_eq!(quantile(&xs, 0.99), 4.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn idle_service_reports_idle_ticks() {
        let g = ring_graph();
        let engine = reference(&g);
        let mut service = WalkService::new(vec![&engine], ServiceConfig::default());
        let out = service.tick();
        assert_eq!(out.job, None);
        assert!(service.is_idle());
        assert_eq!(service.stats().ticks, 0, "idle turns are not counted");
    }
}
