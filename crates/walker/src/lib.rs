//! # lightrw-walker — graph dynamic random walk definitions
//!
//! The application layer of the reproduction: what a GDRW *is*, independent
//! of which engine (CPU baseline, reference, or simulated accelerator)
//! executes it.
//!
//! - [`app`] defines the [`app::WalkApp`] trait — the paper's
//!   application-specific weight update function `F` (§2.1) — and the two
//!   evaluated applications: [`app::MetaPath`] (Eq. 1) and
//!   [`app::Node2Vec`] (Eq. 2), plus [`app::Uniform`] and
//!   [`app::StaticWeighted`] baselines for ablations.
//! - [`program`] composes those weight rules with per-step **control
//!   flow**: [`program::WalkProgram`] covers fixed-length walks (the
//!   paper's shape, bit-identical to the pre-program engines),
//!   personalized PageRank restarts, target-set termination and dead-end
//!   policies, executed by all engines through one shared
//!   [`program::WalkProgram::step_attempt`] state machine (DESIGN.md §8).
//! - [`query`] builds the paper's workloads: one query per non-isolated
//!   vertex, shuffled (§6.1.4); a [`query::QuerySet`] carries the
//!   [`program::WalkProgram`] its queries execute.
//! - [`membership`] provides the sorted-adjacency intersection Node2Vec's
//!   second-order weight rule needs (`(a_{t-1}, b) ∈ E`) — the engines'
//!   hot path uses its word-packed [`membership::NeighborBitset`] variant.
//! - [`hotpath`] is the fused per-step pass shared by all three engines:
//!   [`hotpath::HotStepper`] picks a sampling strategy from
//!   [`app::WalkApp::weight_profile`] (degree-indexed uniform, prefix
//!   cache, or generic streaming) under the RNG-identity contract of
//!   DESIGN.md §5, with zero per-step heap allocation. Its sampler
//!   stream export/import and prev-row override are what let the
//!   sharded engine (DESIGN.md §11) hand a mid-walk walker — RNG
//!   position and second-order context included — to another shard's
//!   lane without changing the sampled walk.
//! - [`engine`] is the streaming execution seam every backend plugs into:
//!   [`engine::WalkEngine`] starts [`engine::WalkSession`]s that run in
//!   bounded batches and emit each finished path exactly once into a
//!   [`engine::WalkSink`] (DESIGN.md §6). The CPU baseline
//!   (`lightrw-baseline`) and the accelerator model (`lightrw-hwsim`)
//!   implement the same trait.
//! - [`service`] multiplexes many concurrent tenant jobs onto a shared
//!   pool of those engines: [`service::WalkService`] schedules per-job
//!   sessions with weighted-fair deficit round-robin, per-tenant
//!   admission quotas, cancellation/deadlines, and a
//!   [`service::ServiceStats`] snapshot (DESIGN.md §7).
//! - [`crate::reference`] is a simple sequential engine over any sampler — the
//!   correctness oracle every other engine is tested against; it doubles
//!   as the fully incremental [`engine::WalkEngine`] implementation.
//! - [`path`] stores walk outputs compactly and checks their validity.
//!
//! ## Fixed-point weights
//!
//! Dynamic weights are `u32` fixed-point values (16 fractional bits, see
//! [`app::FX_FRAC_BITS`]) because the accelerator's acceptance test
//! (Eq. 8) is integer. Node2Vec's `1/p` and `1/q` scalings become constant
//! multipliers, exactly as a hardware Weight Updater would implement them.
//!
//! ```
//! use lightrw_graph::GraphBuilder;
//! use lightrw_walker::{QuerySet, ReferenceEngine, SamplerKind, Uniform};
//!
//! // A 3-cycle: every vertex has exactly one out-neighbor, so the walk
//! // is deterministic regardless of sampler or seed.
//! let g = GraphBuilder::directed()
//!     .num_vertices(3)
//!     .edges(vec![(0, 1), (1, 2), (2, 0)])
//!     .build();
//! let queries = QuerySet::from_starts(vec![0], 3);
//! let results = ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 1).run(&queries);
//! assert_eq!(results.path(0), &[0, 1, 2, 0]);
//! ```

pub mod app;
pub mod corpus_io;
pub mod engine;
pub mod hotpath;
pub mod membership;
pub mod path;
pub mod program;
pub mod query;
pub mod reference;
pub mod service;
pub mod stats;

pub use app::{MetaPath, Node2Vec, StaticWeighted, Uniform, WalkApp, WeightProfile};
pub use engine::{
    multiplex_sessions, BatchProgress, CountingSink, InOrderEmitter, WalkEngine, WalkEngineExt,
    WalkSession, WalkSink,
};
pub use hotpath::{prefetch_row, HotStepper, WalkerRing};
pub use lightrw_graph::VertexId;
pub use membership::NeighborBitset;
pub use path::WalkResults;
pub use program::{Control, DeadEndPolicy, StepOutcome, WalkProgram, WalkState};
pub use query::{Query, QuerySet};
pub use reference::{AnySampler, ReferenceEngine, SamplerKind, SamplerStream};
pub use service::{
    JobId, JobSpec, JobStatus, ServiceConfig, ServiceStats, TenantId, TenantStats, WalkService,
};
