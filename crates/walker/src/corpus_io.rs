//! Walk-corpus persistence: the node2vec interchange format.
//!
//! Downstream tooling (gensim word2vec, the original node2vec scripts)
//! consumes walks as whitespace-separated vertex lines. This module
//! writes/reads that format so the accelerator's output can feed external
//! learning stacks, plus a compact binary form for checkpointing large
//! corpora between harness stages.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::path::WalkResults;

/// Write one walk per line, vertices whitespace-separated (node2vec's
/// output format).
pub fn write_text<W: Write>(walks: &WalkResults, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    for path in walks.iter() {
        let mut first = true;
        for &v in path {
            if first {
                first = false;
            } else {
                out.write_all(b" ")?;
            }
            write!(out, "{v}")?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Read a text corpus back. Blank lines are skipped; malformed tokens are
/// an error.
pub fn read_text<R: Read>(reader: R) -> io::Result<WalkResults> {
    let mut walks = WalkResults::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        for tok in line.split_whitespace() {
            let v: u32 = tok.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad vertex {tok:?} on line {}", lineno + 1),
                )
            })?;
            walks.push_vertex(v);
        }
        walks.end_path();
    }
    Ok(walks)
}

const MAGIC: &[u8; 8] = b"LRWWLK01";

/// Write the compact binary corpus form (magic, counts, offsets, ids).
pub fn write_binary<W: Write>(walks: &WalkResults, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    out.write_all(MAGIC)?;
    out.write_all(&(walks.len() as u64).to_le_bytes())?;
    let mut total = 0u64;
    for p in walks.iter() {
        total += p.len() as u64;
    }
    out.write_all(&total.to_le_bytes())?;
    for p in walks.iter() {
        out.write_all(&(p.len() as u64).to_le_bytes())?;
        for &v in p {
            out.write_all(&v.to_le_bytes())?;
        }
    }
    out.flush()
}

/// Read the binary corpus form.
pub fn read_binary<R: Read>(reader: R) -> io::Result<WalkResults> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a lightrw walk corpus",
        ));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n_walks = u64::from_le_bytes(b8);
    r.read_exact(&mut b8)?;
    let total = u64::from_le_bytes(b8);
    let mut walks = WalkResults::with_capacity(n_walks as usize, 8);
    let mut seen = 0u64;
    let mut b4 = [0u8; 4];
    for _ in 0..n_walks {
        r.read_exact(&mut b8)?;
        let len = u64::from_le_bytes(b8);
        seen += len;
        if seen > total {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "corpus length fields inconsistent",
            ));
        }
        for _ in 0..len {
            r.read_exact(&mut b4)?;
            walks.push_vertex(u32::from_le_bytes(b4));
        }
        walks.end_path();
    }
    if seen != total {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "corpus shorter than declared",
        ));
    }
    Ok(walks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> WalkResults {
        let mut w = WalkResults::new();
        w.push_path(&[0, 1, 2, 3]);
        w.push_path(&[9]);
        w.push_path(&[4, 4, 4]);
        w
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text(&corpus(), &mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            "0 1 2 3\n9\n4 4 4\n"
        );
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back, corpus());
    }

    #[test]
    fn text_skips_blank_lines() {
        let back = read_text("1 2\n\n3\n".as_bytes()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.path(1), &[3]);
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_text("1 x 3\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn binary_roundtrip() {
        let mut buf = Vec::new();
        write_binary(&corpus(), &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, corpus());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTWALKS........"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&corpus(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let empty = WalkResults::new();
        let mut buf = Vec::new();
        write_binary(&empty, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), empty);
        let mut buf = Vec::new();
        write_text(&empty, &mut buf).unwrap();
        assert!(buf.is_empty());
    }
}
