//! The step-centric multi-threaded CPU engine.

use std::time::{Duration, Instant};

use lightrw_graph::{Graph, VertexId};
use lightrw_rng::splitmix::mix64;
use lightrw_walker::app::StepContext;
use lightrw_walker::{HotStepper, QuerySet, SamplerKind, WalkApp, WalkResults};

/// CPU engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Worker threads; 0 = one per available core (the paper's 16-core
    /// Xeon runs ThunderRW with one thread per core).
    pub threads: usize,
    /// Per-step weighted sampling method. The paper configures ThunderRW
    /// with inverse transformation sampling (§6.1.4).
    pub sampler: SamplerKind,
    /// Base RNG seed (each thread derives its own stream).
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            sampler: SamplerKind::InverseTransform,
            seed: 0xC0FFEE,
        }
    }
}

impl BaselineConfig {
    /// The Fig. 14 "ThunderRW w/PWRS" variant: the paper's parallel WRS
    /// algorithm executed on the CPU (k lanes emulated sequentially).
    pub fn with_pwrs(k: usize) -> Self {
        Self {
            sampler: SamplerKind::ParallelWrs { k },
            ..Self::default()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Measured outcome of a baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineRunStats {
    /// Steps actually executed.
    pub steps: u64,
    /// Wall-clock execution time (excludes workload construction).
    pub elapsed: Duration,
    /// Threads used.
    pub threads: usize,
}

impl BaselineRunStats {
    /// Steps per second of wall-clock time.
    pub fn steps_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.steps as f64 / s
        }
    }
}

/// Per-worker walk state in structure-of-arrays layout: the round-robin
/// scheduler touches `cur`/`prev`/`step` for every active query each
/// sweep, so keeping them in dense parallel arrays (instead of an array
/// of structs with inline path buffers) keeps the sweep's working set to
/// a few cache lines per query.
struct WalkStateSoA {
    cur: Vec<VertexId>,
    prev: Vec<Option<VertexId>>,
    step: Vec<u32>,
    /// Output paths, preallocated to full length at setup — the step loop
    /// never allocates.
    paths: Vec<Vec<VertexId>>,
}

impl WalkStateSoA {
    fn new(qs: &[lightrw_walker::Query]) -> Self {
        Self {
            cur: qs.iter().map(|q| q.start).collect(),
            prev: vec![None; qs.len()],
            step: vec![0; qs.len()],
            paths: qs
                .iter()
                .map(|q| {
                    let mut p = Vec::with_capacity(q.length as usize + 1);
                    p.push(q.start);
                    p
                })
                .collect(),
        }
    }
}

/// The ThunderRW-like engine.
pub struct CpuEngine<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: BaselineConfig,
}

impl<'g> CpuEngine<'g> {
    /// Create an engine for `app` on `graph`.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: BaselineConfig) -> Self {
        Self { graph, app, cfg }
    }

    /// Execute all queries; returns paths in query order plus timing.
    pub fn run(&self, queries: &QuerySet) -> (WalkResults, BaselineRunStats) {
        // `effective_threads` already returns >= 1 for both branches.
        let threads = self.cfg.effective_threads();
        let qs = queries.queries();
        let chunk = qs.len().div_ceil(threads).max(1);
        // Hoisted out of the workers: one degree scan sizes every worker's
        // sampler/bitset scratch for the whole run.
        let max_degree = self.graph.max_degree() as usize;
        let start = Instant::now();

        // Contiguous chunks preserve query order on concatenation.
        let mut chunk_outputs: Vec<(WalkResults, u64)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, chunk_qs) in qs.chunks(chunk).enumerate() {
                let seed = mix64(self.cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                handles.push(scope.spawn(move || self.run_chunk(chunk_qs, seed, max_degree)));
            }
            for h in handles {
                chunk_outputs.push(h.join().expect("worker thread panicked"));
            }
        });

        let elapsed = start.elapsed();
        let mut results = WalkResults::with_capacity(qs.len(), 8);
        let mut steps = 0u64;
        for (chunk_res, chunk_steps) in &chunk_outputs {
            for p in chunk_res.iter() {
                results.push_path(p);
            }
            steps += chunk_steps;
        }
        (
            results,
            BaselineRunStats {
                steps,
                elapsed,
                threads,
            },
        )
    }

    /// One worker: advance its queries round-robin, one step per visit —
    /// ThunderRW's step-centric interleaving. Worker setup allocates the
    /// SoA walk state and the stepper's scratch once; each step is then a
    /// single fused weight-calculation + sampling pass (Alg. 2.1's two
    /// phases, streamed) with no heap allocation.
    fn run_chunk(
        &self,
        qs: &[lightrw_walker::Query],
        seed: u64,
        max_degree: usize,
    ) -> (WalkResults, u64) {
        let g = self.graph;
        let mut stepper = HotStepper::new(self.app, self.cfg.sampler, seed);
        stepper.reserve(max_degree);
        let mut st = WalkStateSoA::new(qs);

        let mut active: Vec<usize> = (0..qs.len()).filter(|&i| qs[i].length > 0).collect();
        let mut steps = 0u64;

        while !active.is_empty() {
            let mut i = 0;
            while i < active.len() {
                let qi = active[i];
                let ctx = StepContext {
                    step: st.step[qi],
                    cur: st.cur[qi],
                    prev: st.prev[qi],
                };
                let done = match stepper.step(g, self.app, ctx) {
                    Some(next) => {
                        steps += 1;
                        st.paths[qi].push(next);
                        st.prev[qi] = Some(st.cur[qi]);
                        st.cur[qi] = next;
                        st.step[qi] += 1;
                        st.step[qi] >= qs[qi].length
                    }
                    None => true, // dead end
                };
                if done {
                    active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }

        let mut results = WalkResults::with_capacity(qs.len(), 8);
        for p in &st.paths {
            results.push_path(p);
        }
        (results, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::{generators, GraphBuilder};
    use lightrw_rng::stats::{chi_square_counts, chi_square_crit_999};
    use lightrw_walker::app::{MetaPath, Node2Vec, Uniform};
    use lightrw_walker::path::validate_path;

    fn one_thread() -> BaselineConfig {
        BaselineConfig {
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn produces_valid_paths_single_thread() {
        let g = generators::rmat_dataset(9, 1);
        let qs = QuerySet::per_nonisolated_vertex(&g, 8, 2);
        let (results, stats) = CpuEngine::new(&g, &Uniform, one_thread()).run(&qs);
        assert_eq!(results.len(), qs.len());
        assert_eq!(stats.steps, results.total_steps());
        for p in results.iter() {
            validate_path(&g, &Uniform, p).unwrap();
        }
    }

    #[test]
    fn produces_valid_paths_multi_thread() {
        let g = generators::rmat_dataset(9, 2);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::per_nonisolated_vertex(&g, 10, 3);
        let cfg = BaselineConfig {
            threads: 4,
            ..Default::default()
        };
        let (results, stats) = CpuEngine::new(&g, &nv, cfg).run(&qs);
        assert_eq!(results.len(), qs.len());
        assert_eq!(stats.threads, 4);
        for p in results.iter() {
            validate_path(&g, &nv, p).unwrap();
        }
    }

    #[test]
    fn results_keep_query_order_across_threads() {
        let g = generators::rmat_dataset(8, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 5);
        let cfg = BaselineConfig {
            threads: 3,
            ..Default::default()
        };
        let (results, _) = CpuEngine::new(&g, &Uniform, cfg).run(&qs);
        for (i, q) in qs.queries().iter().enumerate() {
            assert_eq!(results.path(i)[0], q.start, "query {i} misplaced");
        }
    }

    #[test]
    fn metapath_paths_respect_relations() {
        let g = generators::rmat_dataset(8, 4);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 7);
        let (results, _) = CpuEngine::new(&g, &mp, one_thread()).run(&qs);
        for p in results.iter() {
            validate_path(&g, &mp, p).unwrap();
        }
    }

    #[test]
    fn pwrs_variant_samples_correctly() {
        // One vertex with weighted out-edges; Fig. 14's ThunderRW w/PWRS
        // must still sample the right distribution.
        let g = GraphBuilder::directed()
            .weighted_edges([(0, 1, 1), (0, 2, 2), (0, 3, 3)])
            .num_vertices(4)
            .build();
        let qs = QuerySet::from_starts(vec![0; 30_000], 1);
        let cfg = BaselineConfig {
            threads: 1,
            ..BaselineConfig::with_pwrs(8)
        };
        let (results, _) = CpuEngine::new(&g, &lightrw_walker::StaticWeighted, cfg).run(&qs);
        let mut counts = [0u64; 3];
        for p in results.iter() {
            counts[(p[1] - 1) as usize] += 1;
        }
        let chi2 = chi_square_counts(&counts, &[1.0, 2.0, 3.0]);
        assert!(chi2 < chi_square_crit_999(2) * 1.2, "chi2 {chi2}");
    }

    #[test]
    fn dead_ends_shorten_paths() {
        let g = GraphBuilder::directed().edges([(0, 1)]).build();
        let qs = QuerySet::from_starts(vec![0], 50);
        let (results, stats) = CpuEngine::new(&g, &Uniform, one_thread()).run(&qs);
        assert_eq!(results.path(0), &[0, 1]);
        assert_eq!(stats.steps, 1);
    }

    #[test]
    fn deterministic_per_seed_single_thread() {
        let g = generators::rmat_dataset(8, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 1);
        let run = |seed| {
            let cfg = BaselineConfig {
                threads: 1,
                seed,
                ..Default::default()
            };
            CpuEngine::new(&g, &Uniform, cfg).run(&qs).0
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn stats_report_throughput() {
        let g = generators::rmat_dataset(8, 6);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 2);
        let (_, stats) = CpuEngine::new(&g, &Uniform, one_thread()).run(&qs);
        assert!(stats.steps > 0);
        assert!(stats.steps_per_sec() > 0.0);
    }
}
