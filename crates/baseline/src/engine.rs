//! The step-centric multi-threaded CPU engine.
//!
//! Since the session refactor (DESIGN.md §6) all mutable walk state —
//! per-worker SoA arrays, samplers, sweep cursors — lives in
//! [`CpuSession`], so sessions are re-entrant: two sessions over one
//! [`CpuEngine`] (and one graph) can interleave freely. The monolithic
//! [`CpuEngine::run`] is now a thin convenience over one session driven
//! to completion.

use std::time::{Duration, Instant};

use lightrw_graph::Graph;
use lightrw_rng::splitmix::mix64;
use lightrw_walker::engine::{BatchProgress, InOrderEmitter, WalkEngine, WalkSession, WalkSink};
use lightrw_walker::program::WalkProgram;
use lightrw_walker::{QuerySet, SamplerKind, WalkApp, WalkResults};

use crate::affinity;
use crate::lanes::{resolve_workers, LanePlan, WorkerLane};

/// CPU engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Worker threads; 0 = one per available core (the paper's 16-core
    /// Xeon runs ThunderRW with one thread per core).
    pub threads: usize,
    /// Per-step weighted sampling method. The paper configures ThunderRW
    /// with inverse transformation sampling (§6.1.4).
    pub sampler: SamplerKind,
    /// Base RNG seed (each thread derives its own stream).
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            sampler: SamplerKind::InverseTransform,
            seed: 0xC0FFEE,
        }
    }
}

impl BaselineConfig {
    /// The Fig. 14 "ThunderRW w/PWRS" variant: the paper's parallel WRS
    /// algorithm executed on the CPU (k lanes emulated sequentially).
    pub fn with_pwrs(k: usize) -> Self {
        Self {
            sampler: SamplerKind::ParallelWrs { k },
            ..Self::default()
        }
    }

    fn effective_threads(&self) -> usize {
        resolve_workers(self.threads)
    }
}

/// Measured outcome of a baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineRunStats {
    /// Steps actually executed.
    pub steps: u64,
    /// Wall-clock execution time (excludes workload construction).
    pub elapsed: Duration,
    /// Threads used.
    pub threads: usize,
}

impl BaselineRunStats {
    /// Steps per second of wall-clock time.
    pub fn steps_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.steps as f64 / s
        }
    }
}

/// The ThunderRW-like engine.
pub struct CpuEngine<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: BaselineConfig,
}

impl<'g> CpuEngine<'g> {
    /// Create an engine for `app` on `graph`.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: BaselineConfig) -> Self {
        Self { graph, app, cfg }
    }

    /// Start a batched streaming session (concrete type; the
    /// [`WalkEngine`] impl boxes the same thing).
    pub fn session(&self, queries: &QuerySet) -> CpuSession<'_> {
        CpuSession::new(self, queries)
    }

    /// Execute all queries; returns paths in query order plus timing.
    /// One session driven to completion in a single full-budget batch, so
    /// worker threads are spawned exactly once, as before the session
    /// refactor.
    pub fn run(&self, queries: &QuerySet) -> (WalkResults, BaselineRunStats) {
        let threads = self.cfg.effective_threads();
        let start = Instant::now();
        let mut session = self.session(queries);
        let mut results = WalkResults::with_capacity(queries.len(), 8);
        while !session.finished() {
            session.advance(u64::MAX, &mut results);
        }
        let elapsed = start.elapsed();
        (
            results,
            BaselineRunStats {
                steps: session.steps_done(),
                elapsed,
                threads,
            },
        )
    }
}

impl WalkEngine for CpuEngine<'_> {
    fn label(&self) -> String {
        format!("cpu({})", self.cfg.sampler.name())
    }

    fn start_session<'s>(&'s self, queries: &QuerySet) -> Box<dyn WalkSession + 's> {
        Box::new(self.session(queries))
    }
}

/// Minimum per-lane step work (this batch) before a session spawns
/// scoped worker threads; below it, lanes run inline on the caller's
/// thread. Chosen so that thread setup (~tens of µs) stays under ~1% of
/// a lane's batch at CPU step rates — small quick-bench workloads
/// (e.g. rmat-10's ~5k steps/lane) fall back to the single-thread fast
/// path, which used to *beat* the threaded run on them.
pub const MIN_STEPS_PER_LANE: u64 = 16_384;

/// A batched session of the CPU engine: queries are split into contiguous
/// per-worker lanes by a [`LanePlan`] with exactly the monolithic run's
/// boundaries and derived per-lane seeds, and every
/// [`WalkSession::advance`] gives each [`WorkerLane`] up to `max_steps`
/// Gather–Move–Update visits — executed on scoped threads (each pinned
/// best-effort to a stable core) when more than one lane still has work.
/// Completed paths are emitted in global query-id order through an
/// [`InOrderEmitter`]; because lanes are contiguous, a lane's paths emit
/// once all earlier lanes have drained, and each emitted path's buffer is
/// released immediately.
pub struct CpuSession<'s> {
    graph: &'s Graph,
    app: &'s dyn WalkApp,
    program: WalkProgram,
    lanes: Vec<WorkerLane>,
    /// Queries per lane (all lanes but the last).
    lane_len: usize,
    emitter: InOrderEmitter,
    steps_done: u64,
    /// Workers successfully core-pinned in the last parallel batch.
    pinned: usize,
}

impl<'s> CpuSession<'s> {
    fn new(engine: &CpuEngine<'s>, queries: &QuerySet) -> Self {
        let qs = queries.queries();
        let plan = LanePlan::plan(engine.cfg.threads, qs.len());
        // Hoisted out of the workers: one degree scan sizes every worker's
        // sampler/bitset scratch for the whole session.
        let max_degree = engine.graph.max_degree() as usize;
        let lanes = qs
            .chunks(plan.lane_len)
            .enumerate()
            .map(|(t, lane_qs)| {
                let seed = mix64(engine.cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                WorkerLane::new(lane_qs, engine.app, engine.cfg.sampler, seed, max_degree)
            })
            .collect();
        Self {
            graph: engine.graph,
            app: engine.app,
            program: queries.program().clone(),
            lanes,
            lane_len: plan.lane_len,
            emitter: InOrderEmitter::new(qs.len()),
            steps_done: 0,
            pinned: 0,
        }
    }

    /// Emit every completed-but-unemitted path whose predecessors are all
    /// emitted, releasing path buffers as they go out.
    fn drain_ready(&mut self, sink: &mut dyn WalkSink) -> usize {
        let (lanes, lane_len) = (&mut self.lanes, self.lane_len);
        self.emitter
            .drain(sink, |id| lanes[id / lane_len].take_path(id % lane_len))
    }
}

impl WalkSession for CpuSession<'_> {
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let budget = max_steps.max(1);
        let (graph, app) = (self.graph, self.app);
        let program = &self.program;
        let busy = self.lanes.iter().filter(|l| !l.is_idle()).count();
        // Spawn gate: scoped-thread setup plus cross-core cache traffic
        // costs more than it buys when a batch hands each lane only a
        // few thousand steps (the threads=2 regression on small quick
        // runs). Below the threshold the lanes run inline sequentially —
        // per-lane stepper seeding makes the sampled walks identical
        // either way.
        let per_lane_cap = self
            .lanes
            .iter()
            .filter(|l| !l.is_idle())
            .map(|l| l.remaining_steps().min(budget))
            .max()
            .unwrap_or(0);
        let batch_steps: u64 = if busy > 1 && per_lane_cap >= MIN_STEPS_PER_LANE {
            // One scoped thread per lane with remaining work — the same
            // parallelism shape as the monolithic run, re-spawned per
            // batch. Workers pin to their *lane index*'s core (stable
            // across batches); the enumerate-before-filter keeps that
            // index stable as lanes drain. Pinning is best-effort — a
            // false return means the worker runs unpinned.
            let (steps, pinned) = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .lanes
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, l)| !l.is_idle())
                    .map(|(i, l)| {
                        scope.spawn(move || {
                            let pinned = affinity::pin_current_thread(i);
                            (l.advance(budget, graph, app, program), pinned)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread panicked"))
                    .fold((0u64, 0usize), |(s, p), (steps, pinned)| {
                        (s + steps, p + pinned as usize)
                    })
            });
            self.pinned = pinned;
            steps
        } else {
            // Single busy lane: run inline on the caller's thread, which
            // is never pinned (it belongs to the embedding application).
            self.lanes
                .iter_mut()
                .map(|l| l.advance(budget, graph, app, program))
                .sum()
        };
        self.steps_done += batch_steps;
        let paths_completed = self.drain_ready(sink);
        BatchProgress {
            steps: batch_steps,
            paths_completed,
            finished: self.finished(),
        }
    }

    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress {
        for lane in &mut self.lanes {
            lane.cancel();
        }
        let paths_completed = self.drain_ready(sink);
        BatchProgress {
            steps: 0,
            paths_completed,
            finished: true,
        }
    }

    fn finished(&self) -> bool {
        self.emitter.finished()
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn paths_completed(&self) -> usize {
        self.emitter.emitted()
    }

    fn diagnostics(&self) -> Option<String> {
        Some(format!(
            "{} worker lanes, {} pinned",
            self.lanes.len(),
            self.pinned
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::{generators, GraphBuilder};
    use lightrw_rng::stats::{chi_square_counts, chi_square_crit_999};
    use lightrw_rng::{Rng, SplitMix64};
    use lightrw_walker::app::{MetaPath, Node2Vec, Uniform};
    use lightrw_walker::path::validate_path;

    fn one_thread() -> BaselineConfig {
        BaselineConfig {
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn produces_valid_paths_single_thread() {
        let g = generators::rmat_dataset(9, 1);
        let qs = QuerySet::per_nonisolated_vertex(&g, 8, 2);
        let (results, stats) = CpuEngine::new(&g, &Uniform, one_thread()).run(&qs);
        assert_eq!(results.len(), qs.len());
        assert_eq!(stats.steps, results.total_steps());
        for p in results.iter() {
            validate_path(&g, &Uniform, p).unwrap();
        }
    }

    #[test]
    fn produces_valid_paths_multi_thread() {
        let g = generators::rmat_dataset(9, 2);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::per_nonisolated_vertex(&g, 10, 3);
        let cfg = BaselineConfig {
            threads: 4,
            ..Default::default()
        };
        let (results, stats) = CpuEngine::new(&g, &nv, cfg).run(&qs);
        assert_eq!(results.len(), qs.len());
        assert_eq!(stats.threads, 4);
        for p in results.iter() {
            validate_path(&g, &nv, p).unwrap();
        }
    }

    #[test]
    fn results_keep_query_order_across_threads() {
        let g = generators::rmat_dataset(8, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 5);
        let cfg = BaselineConfig {
            threads: 3,
            ..Default::default()
        };
        let (results, _) = CpuEngine::new(&g, &Uniform, cfg).run(&qs);
        for (i, q) in qs.queries().iter().enumerate() {
            assert_eq!(results.path(i)[0], q.start, "query {i} misplaced");
        }
    }

    #[test]
    fn spawn_gate_keeps_small_batches_inline_without_changing_walks() {
        let g = generators::rmat_dataset(8, 7);
        // Well under MIN_STEPS_PER_LANE per lane: the threaded config
        // must take the inline path (no workers pinned) and still
        // produce the exact walks of the single-thread run.
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 11);
        let threaded = BaselineConfig {
            threads: 2,
            ..Default::default()
        };
        let engine = CpuEngine::new(&g, &Uniform, threaded);
        let mut session = engine.session(&qs);
        let mut results = WalkResults::with_capacity(qs.len(), 8);
        while !session.finished() {
            session.advance(u64::MAX, &mut results);
        }
        assert_eq!(
            session.diagnostics().unwrap(),
            "2 worker lanes, 0 pinned",
            "small batch should not reach the spawn path"
        );
        let (single, _) = CpuEngine::new(&g, &Uniform, one_thread()).run(&qs);
        // Lane seeds derive from lane boundaries, not the execution
        // mode, but thread-count changes lane boundaries; only compare
        // against a 2-thread run driven through the same plan.
        let (reference, _) = engine.run(&qs);
        assert_eq!(results, reference);
        assert_eq!(results.len(), single.len());
    }

    #[test]
    fn metapath_paths_respect_relations() {
        let g = generators::rmat_dataset(8, 4);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 7);
        let (results, _) = CpuEngine::new(&g, &mp, one_thread()).run(&qs);
        for p in results.iter() {
            validate_path(&g, &mp, p).unwrap();
        }
    }

    #[test]
    fn pwrs_variant_samples_correctly() {
        // One vertex with weighted out-edges; Fig. 14's ThunderRW w/PWRS
        // must still sample the right distribution.
        let g = GraphBuilder::directed()
            .weighted_edges([(0, 1, 1), (0, 2, 2), (0, 3, 3)])
            .num_vertices(4)
            .build();
        let qs = QuerySet::from_starts(vec![0; 30_000], 1);
        let cfg = BaselineConfig {
            threads: 1,
            ..BaselineConfig::with_pwrs(8)
        };
        let (results, _) = CpuEngine::new(&g, &lightrw_walker::StaticWeighted, cfg).run(&qs);
        let mut counts = [0u64; 3];
        for p in results.iter() {
            counts[(p[1] - 1) as usize] += 1;
        }
        let chi2 = chi_square_counts(&counts, &[1.0, 2.0, 3.0]);
        assert!(chi2 < chi_square_crit_999(2) * 1.2, "chi2 {chi2}");
    }

    #[test]
    fn dead_ends_shorten_paths() {
        let g = GraphBuilder::directed().edges([(0, 1)]).build();
        let qs = QuerySet::from_starts(vec![0], 50);
        let (results, stats) = CpuEngine::new(&g, &Uniform, one_thread()).run(&qs);
        assert_eq!(results.path(0), &[0, 1]);
        assert_eq!(stats.steps, 1);
    }

    #[test]
    fn deterministic_per_seed_single_thread() {
        let g = generators::rmat_dataset(8, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 1);
        let run = |seed| {
            let cfg = BaselineConfig {
                threads: 1,
                seed,
                ..Default::default()
            };
            CpuEngine::new(&g, &Uniform, cfg).run(&qs).0
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn stats_report_throughput() {
        let g = generators::rmat_dataset(8, 6);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 2);
        let (_, stats) = CpuEngine::new(&g, &Uniform, one_thread()).run(&qs);
        assert!(stats.steps > 0);
        assert!(stats.steps_per_sec() > 0.0);
    }

    #[test]
    fn batched_sessions_are_bit_identical_to_run() {
        // The session contract: any max_steps schedule reproduces the
        // monolithic run exactly, across thread counts and apps.
        let g = generators::rmat_dataset(8, 7);
        let nv = Node2Vec::paper_params();
        let apps: [&dyn WalkApp; 2] = [&Uniform, &nv];
        let mut batch_rng = SplitMix64::new(123);
        for app in apps {
            for threads in [1usize, 3, 8] {
                let cfg = BaselineConfig {
                    threads,
                    ..Default::default()
                };
                let engine = CpuEngine::new(&g, app, cfg);
                let qs = QuerySet::per_nonisolated_vertex(&g, 9, 2);
                let (whole, stats) = engine.run(&qs);
                let mut batched = WalkResults::new();
                let mut session = engine.session(&qs);
                while !session.finished() {
                    session.advance(1 + batch_rng.gen_range(17), &mut batched);
                }
                assert_eq!(whole, batched, "{} threads={threads}", app.name());
                assert_eq!(stats.steps, session.steps_done());
            }
        }
    }

    #[test]
    fn sessions_interleave_on_one_engine() {
        let g = generators::rmat_dataset(8, 9);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 3);
        let cfg = BaselineConfig {
            threads: 2,
            ..Default::default()
        };
        let engine = CpuEngine::new(&g, &Uniform, cfg);
        let (whole, _) = engine.run(&qs);
        let mut a = WalkResults::new();
        let mut b = WalkResults::new();
        let mut sa = engine.session(&qs);
        let mut sb = engine.session(&qs);
        while !sa.finished() || !sb.finished() {
            sa.advance(5, &mut a);
            sb.advance(11, &mut b);
        }
        assert_eq!(a, whole);
        assert_eq!(b, whole);
    }

    #[test]
    fn multi_lane_jobs_cannot_outrun_the_weighted_share() {
        // The service fairness invariant on a *multi-lane* backend
        // (DESIGN.md §7): advance budgets are per worker chunk, so a job
        // spanning 8 chunks executes up to 8× its budget in one turn —
        // the scheduler must borrow that overshoot (credit goes
        // negative, turns are skipped) so equal-weight jobs still get
        // equal step shares, chunk counts notwithstanding.
        use lightrw_walker::service::{JobSpec, ServiceConfig, WalkService};
        let g = lightrw_graph::GraphBuilder::directed()
            .num_vertices(4)
            .edges(vec![(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let cfg = BaselineConfig {
            threads: 8,
            ..Default::default()
        };
        let engine = CpuEngine::new(&g, &Uniform, cfg);
        let workers: Vec<&dyn lightrw_walker::WalkEngine> = vec![&engine];
        let mut service = WalkService::new(
            workers,
            ServiceConfig {
                quantum: 8,
                ..Default::default()
            },
        );
        // Same weight, wildly different lane counts: 1 chunk vs 8 chunks.
        let narrow = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![0], 100_000));
        let wide = service.submit(
            JobSpec::tenant(1),
            QuerySet::from_starts(vec![1; 64], 10_000),
        );
        for _ in 0..400 {
            service.tick();
        }
        assert!(!service.status(narrow).is_terminal());
        assert!(!service.status(wide).is_terminal());
        let ratio = service.job_steps(wide) as f64 / service.job_steps(narrow) as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "lane count leaked into the fair share: wide/narrow = {ratio:.2} \
             (wide {} vs narrow {})",
            service.job_steps(wide),
            service.job_steps(narrow)
        );
    }

    #[test]
    fn cancel_before_first_advance_emits_start_only_paths() {
        // Empty-batch cancel (DESIGN.md §6): no chunk has taken a step,
        // so every query flushes exactly once as its start vertex alone —
        // across all worker chunk layouts.
        let g = generators::rmat_dataset(8, 11);
        let qs = QuerySet::per_nonisolated_vertex(&g, 25, 6);
        for threads in [1usize, 3, 8] {
            let cfg = BaselineConfig {
                threads,
                ..Default::default()
            };
            let engine = CpuEngine::new(&g, &Uniform, cfg);
            let mut session = engine.session(&qs);
            let mut results = WalkResults::new();
            let progress = session.cancel(&mut results);
            assert!(progress.finished, "threads={threads}");
            assert_eq!(progress.steps, 0);
            assert_eq!(progress.paths_completed, qs.len());
            assert_eq!(results.len(), qs.len(), "threads={threads}");
            for (q, p) in qs.queries().iter().zip(results.iter()) {
                assert_eq!(p, &[q.start], "threads={threads}");
            }
            assert_eq!(session.steps_done(), 0);
            // Idempotent afterwards.
            let again = session.cancel(&mut results);
            assert_eq!(again.paths_completed, 0);
        }
    }

    #[test]
    fn cancel_flushes_every_path_exactly_once() {
        let g = generators::rmat_dataset(8, 10);
        let qs = QuerySet::per_nonisolated_vertex(&g, 40, 4);
        let cfg = BaselineConfig {
            threads: 2,
            ..Default::default()
        };
        let engine = CpuEngine::new(&g, &Uniform, cfg);
        let mut session = engine.session(&qs);
        let mut results = WalkResults::new();
        session.advance(3, &mut results);
        let progress = session.cancel(&mut results);
        assert!(progress.finished);
        assert_eq!(results.len(), qs.len());
        // Partial paths are still valid walks.
        for p in results.iter() {
            validate_path(&g, &Uniform, p).unwrap();
        }
    }
}
