//! Per-thread CPU time, for executor busy-time accounting.
//!
//! The sharded engine's parallel executors (DESIGN.md §12) model their
//! overlapped compute as the straggler executor's *busy* seconds. A wall
//! clock cannot measure that on a host with fewer cores than executors:
//! a descheduled thread's wall time keeps running while its sibling
//! executes, so every executor appears busy for the whole round. The
//! thread CPU clock (`CLOCK_THREAD_CPUTIME_ID`) counts only the cycles
//! the calling thread actually executed, which is exactly each
//! executor's own share of the work on any host.
//!
//! Like [`crate::affinity`], this hand-rolls the one libc symbol the
//! `libc` crate would provide — the build is offline and vendored-only —
//! and follows the same **degrade, never fail** contract: [`now`]
//! returns `None` where the clock is unsupported and callers fall back
//! to a coarser estimate.

#[cfg(target_os = "linux")]
mod imp {
    /// Mirror of glibc's `struct timespec` on 64-bit Linux.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    /// Linux UAPI value: the CPU-time clock of the calling thread.
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    /// CPU seconds the calling thread has executed, or `None` on
    /// syscall failure.
    pub fn thread_cpu_seconds() -> Option<f64> {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a properly sized, writable timespec.
        if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } != 0 {
            return None;
        }
        Some(ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    /// Non-Linux stub: no per-thread clock, callers degrade.
    pub fn thread_cpu_seconds() -> Option<f64> {
        None
    }
}

/// CPU seconds the calling thread has executed so far (`None` where the
/// per-thread clock is unsupported). Only differences between two calls
/// on the *same* thread are meaningful.
pub fn now() -> Option<f64> {
    imp::thread_cpu_seconds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_time_is_monotonic_and_advances_under_load() {
        let Some(t0) = now() else {
            if cfg!(target_os = "linux") {
                panic!("linux must have the per-thread CPU clock");
            }
            return;
        };
        // Burn a little CPU; volatile-ish accumulation defeats const-fold.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert!(acc != 1, "keep the loop alive");
        let t1 = now().expect("clock stays available");
        assert!(t1 >= t0, "thread CPU clock went backwards");
        assert!(t1 > t0, "2M multiplies took no measurable CPU time");
    }

    #[test]
    fn sibling_thread_work_does_not_charge_this_thread() {
        let Some(t0) = now() else { return };
        std::thread::spawn(|| {
            let mut acc = 1u64;
            for i in 0..2_000_000u64 {
                acc = acc.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i);
            }
            acc
        })
        .join()
        .unwrap();
        let t1 = now().expect("clock stays available");
        // The sibling burned real CPU; almost none of it lands here. The
        // bound is loose (scheduler noise) but far below the sibling's.
        assert!(t1 - t0 < 0.5, "sibling work charged to this thread");
    }
}
