//! A trace-driven last-level-cache simulator.
//!
//! Stand-in for vTune's hardware counters in the Table 1 reproduction: the
//! profiled engine emits its memory reference stream (graph reads,
//! intermediate-table writes/reads) into this set-associative LRU model,
//! and the observed miss ratio plays the role of the measured "LLC Miss".
//! Defaults approximate the paper's Xeon Gold 6246R shared L3 (35.75 MB,
//! 64 B lines) scaled by the same factor as the scaled-down graphs, so the
//! working-set-to-cache ratio — which is what determines thrashing — is
//! preserved.

/// Set-associative, write-allocate LRU cache model.
#[derive(Debug, Clone)]
pub struct LlcSim {
    line_bits: u32,
    sets: usize,
    assoc: usize,
    /// tags per set, with LRU stamps.
    tags: Vec<(u64, u64)>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl LlcSim {
    /// Build a cache of `capacity_bytes` with `assoc` ways and 64 B lines.
    pub fn new(capacity_bytes: u64, assoc: usize) -> Self {
        assert!(assoc >= 1);
        let line = 64u64;
        let lines = (capacity_bytes / line).max(1) as usize;
        let sets = (lines / assoc).max(1).next_power_of_two();
        Self {
            line_bits: 6,
            sets,
            assoc,
            tags: vec![(u64::MAX, 0); sets * assoc],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The paper's Xeon LLC (35.75 MB, modelled 16-way).
    pub fn xeon_6246r() -> Self {
        Self::new(35_750_000, 16)
    }

    /// A scaled LLC for scaled graphs: `full_capacity / scale_divisor`.
    pub fn scaled(scale_divisor: u64) -> Self {
        Self::new((35_750_000 / scale_divisor.max(1)).max(64 * 1024), 16)
    }

    /// Touch one byte address; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line = addr >> self.line_bits;
        let set = (line as usize) & (self.sets - 1);
        let tag = line >> self.sets.trailing_zeros();
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.clock;
            return true;
        }
        self.misses += 1;
        let victim = ways.iter_mut().min_by_key(|(_, stamp)| *stamp).unwrap();
        *victim = (tag, self.clock);
        false
    }

    /// Touch every line of the byte range `[addr, addr + bytes)`.
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let first = addr >> self.line_bits;
        let last = (addr + bytes - 1) >> self.line_bits;
        for line in first..=last {
            self.access(line << self.line_bits);
        }
    }

    /// Total line accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Line misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `[0,1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = LlcSim::new(1 << 16, 4);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1010)); // same 64 B line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = LlcSim::new(1 << 14, 4); // 16 KB = 256 lines
                                             // Stream 4096 distinct lines twice: second pass still misses.
        for pass in 0..2 {
            for i in 0..4096u64 {
                let hit = c.access(i * 64);
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.miss_ratio() > 0.9, "{}", c.miss_ratio());
    }

    #[test]
    fn working_set_smaller_than_cache_hits_after_warmup() {
        let mut c = LlcSim::new(1 << 16, 4); // 1024 lines
        for _ in 0..4 {
            for i in 0..256u64 {
                c.access(i * 64);
            }
        }
        // 256 cold misses out of 1024 accesses.
        assert_eq!(c.misses(), 256);
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = LlcSim::new(1 << 16, 4);
        c.access_range(0, 64 * 10);
        assert_eq!(c.accesses(), 10);
        c.access_range(32, 64); // straddles two lines
        assert_eq!(c.accesses(), 12);
        c.access_range(0, 0);
        assert_eq!(c.accesses(), 12);
    }

    #[test]
    fn lru_keeps_recent_lines() {
        let mut c = LlcSim::new(64 * 2, 2); // one set, two ways
        c.access(0); // line A
        c.access(64 * 1024); // line B (same set)
        c.access(0); // refresh A
        c.access(64 * 2048); // line C evicts B
        assert!(c.access(0), "A must survive");
        assert!(!c.access(64 * 1024), "B must be evicted");
    }

    #[test]
    fn presets_construct() {
        assert!(LlcSim::xeon_6246r().accesses() == 0);
        assert!(LlcSim::scaled(64).accesses() == 0);
    }
}
