//! # lightrw-baseline — the ThunderRW-like CPU comparator
//!
//! The paper compares LightRW against ThunderRW (Sun et al., VLDB 2021),
//! the state-of-the-art in-memory CPU random walk engine. We cannot link
//! the original C++ system, so this crate implements a competent Rust
//! equivalent with the properties the comparison depends on:
//!
//! - **Algorithm 2.1 execution flow**: per step, gather neighbor weights,
//!   run a table-based sampler's initialization (the O(|N(v)|) table), then
//!   its generation phase.
//! - **Step-centric multi-query interleaving**: each worker thread owns a
//!   [`lanes::WorkerLane`] of queries and advances them round-robin one
//!   Gather–Move–Update visit at a time — ThunderRW's scheduling shape,
//!   including its distance-1 software prefetch of the next walker's CSR
//!   row (`_mm_prefetch` on x86-64) and best-effort one-worker-per-core
//!   pinning ([`affinity`]); both degrade gracefully where unsupported
//!   (DESIGN.md §9).
//! - **Configurable sampler**: inverse transformation sampling is the
//!   paper's configuration (§6.1.4); alias, sequential WRS and the
//!   parallel-WRS-on-CPU of Fig. 14's "ThunderRW w/PWRS" bars are a flag
//!   away.
//!
//! [`profile`] adds the Table 1 proxy: a trace-driven LLC simulation of
//! the engine's memory reference stream, producing LLC-miss / memory-bound
//! / retiring estimates in place of vTune's top-down counters (the machine
//! substitution documented in DESIGN.md).
//!
//! The per-step path follows the hot-path conventions of DESIGN.md §5:
//! workers keep SoA walk state and a `lightrw_walker::HotStepper` whose
//! scratch is sized once at setup, so the steady-state walk loop performs
//! no heap allocation — the engine measures sampling cost, not allocator
//! cost. For *dynamic* apps (Node2Vec, and anything whose
//! `weight_profile()` is `Dynamic`) the cost model is exactly
//! Algorithm 2.1: stream the weights, pay the table kind's O(|N(v)|)
//! initialization, draw. Static-profile apps (Uniform, StaticWeighted,
//! MetaPath) take the same profile-driven fast paths as the other
//! engines — the sampled walks are bit-identical either way (the §5
//! RNG-identity contract), so this is a fair floor for the comparison;
//! to measure the un-hinted cost, wrap the app in a profile-hiding
//! adapter as `tests/hotpath_equivalence.rs` does, or drop the graph's
//! prefix cache.
//!
//! Walk **control flow** — restarts, target termination, dead-end
//! policies — comes from the query set's
//! [`lightrw_walker::program::WalkProgram`] (DESIGN.md §8): each worker
//! visit runs one `step_attempt` of the shared program state machine, so
//! PPR and target-terminated workloads interleave step-centrically
//! exactly like fixed-length ones, and fixed-length programs stay
//! bit-identical to the pre-program engine.
//!
//! [`CpuEngine`] also implements the engine-agnostic
//! `lightrw_walker::WalkEngine` trait (DESIGN.md §6): all mutable walk
//! state lives in a per-session [`CpuSession`] (so sessions are
//! re-entrant and interleave on one graph), batches execute up to
//! `max_steps` visits per worker on scoped threads, and finished paths
//! stream out in query-id order — bit-identical to [`CpuEngine::run`]
//! for every batch schedule.

pub mod affinity;
pub mod engine;
pub mod lanes;
pub mod llc;
pub mod profile;
pub mod signal;
pub mod thread_clock;

pub use engine::{BaselineConfig, BaselineRunStats, CpuEngine, CpuSession};
pub use lanes::{LanePlan, WorkerLane};
pub use llc::LlcSim;
pub use profile::{profile_top_down, TopDownProfile};
