//! # lightrw-baseline — the ThunderRW-like CPU comparator
//!
//! The paper compares LightRW against ThunderRW (Sun et al., VLDB 2021),
//! the state-of-the-art in-memory CPU random walk engine. We cannot link
//! the original C++ system, so this crate implements a competent Rust
//! equivalent with the properties the comparison depends on:
//!
//! - **Algorithm 2.1 execution flow**: per step, gather neighbor weights,
//!   run a table-based sampler's initialization (the O(|N(v)|) table), then
//!   its generation phase.
//! - **Step-centric multi-query interleaving**: each worker thread owns a
//!   batch of queries and advances them round-robin one step at a time —
//!   ThunderRW's scheduling shape (its software prefetching has no direct
//!   Rust equivalent; the hardware prefetcher gets the same interleaved
//!   access pattern to chew on).
//! - **Configurable sampler**: inverse transformation sampling is the
//!   paper's configuration (§6.1.4); alias, sequential WRS and the
//!   parallel-WRS-on-CPU of Fig. 14's "ThunderRW w/PWRS" bars are a flag
//!   away.
//!
//! [`profile`] adds the Table 1 proxy: a trace-driven LLC simulation of
//! the engine's memory reference stream, producing LLC-miss / memory-bound
//! / retiring estimates in place of vTune's top-down counters (the machine
//! substitution documented in DESIGN.md).

pub mod engine;
pub mod llc;
pub mod profile;

pub use engine::{BaselineConfig, BaselineRunStats, CpuEngine};
pub use llc::LlcSim;
pub use profile::{profile_top_down, TopDownProfile};
