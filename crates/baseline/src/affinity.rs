//! Best-effort CPU core pinning for worker lanes.
//!
//! ThunderRW pins one worker per core so the step-centric interleaving's
//! cache-residency argument holds (a migrated worker re-warms its ring's
//! CSR rows from scratch). We hand-roll the two Linux syscall wrappers the
//! `core_affinity` crate would provide — `sched_getaffinity` /
//! `sched_setaffinity` via their libc symbols, which Rust's std already
//! links on Linux — because the build is offline and vendored-only.
//!
//! The contract is **degrade, never fail** (DESIGN.md §9): every function
//! here returns a plain `bool`/empty-vec on any error — unsupported OS,
//! cgroup-restricted mask, raced CPU hotplug — and callers treat an unpinned
//! worker as merely slower, not broken. Pinning is also *mask-relative*:
//! lane `i` pins to the `i % n`-th CPU the process is *allowed* to run on,
//! so container cpusets (e.g. a 2-core quota on a 64-core host) spread
//! lanes over the granted cores instead of asking for forbidden ones.

/// Maximum CPUs representable in our affinity mask (16 × 64 = 1024,
/// matching glibc's `CPU_SETSIZE`).
const MASK_WORDS: usize = 16;

#[cfg(target_os = "linux")]
mod imp {
    use super::MASK_WORDS;

    /// Mirror of glibc's `cpu_set_t`: a 1024-bit CPU mask.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct CpuSet {
        bits: [u64; MASK_WORDS],
    }

    extern "C" {
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut CpuSet) -> i32;
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }

    /// CPU ids the calling thread is currently allowed to run on, in
    /// ascending order. Empty on syscall failure.
    pub fn allowed_cpus() -> Vec<usize> {
        let mut set = CpuSet {
            bits: [0; MASK_WORDS],
        };
        // SAFETY: `set` is a properly sized, writable cpu_set_t; pid 0
        // means the calling thread.
        let rc = unsafe { sched_getaffinity(0, std::mem::size_of::<CpuSet>(), &mut set) };
        if rc != 0 {
            return Vec::new();
        }
        let mut cpus = Vec::new();
        for (w, &word) in set.bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                cpus.push(w * 64 + b);
                word &= word - 1;
            }
        }
        cpus
    }

    /// Pin the calling thread to a single allowed CPU; false on failure.
    pub fn pin_to(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * 64 {
            return false;
        }
        let mut set = CpuSet {
            bits: [0; MASK_WORDS],
        };
        set.bits[cpu / 64] = 1u64 << (cpu % 64);
        // SAFETY: `set` is a properly sized cpu_set_t with one bit set;
        // pid 0 means the calling thread.
        unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    /// Non-Linux stub: no affinity control, report nothing allowed.
    pub fn allowed_cpus() -> Vec<usize> {
        Vec::new()
    }

    /// Non-Linux stub: pinning always degrades to unpinned.
    pub fn pin_to(_cpu: usize) -> bool {
        false
    }
}

/// CPU ids this thread may run on (empty when affinity is unsupported).
/// Benchmarks record this as `host_cores` so scaling curves carry their
/// hardware context.
pub fn allowed_cores() -> Vec<usize> {
    imp::allowed_cpus()
}

/// Pin the calling thread to the `index % n`-th of its `n` allowed CPUs.
///
/// Returns whether the pin took effect; `false` (unsupported OS, empty
/// mask, raced hotplug) means the thread simply stays unpinned. Callers
/// pass a stable lane index so re-spawned per-batch workers land on the
/// same core each batch.
pub fn pin_current_thread(index: usize) -> bool {
    let allowed = imp::allowed_cpus();
    if allowed.is_empty() {
        return false;
    }
    imp::pin_to(allowed[index % allowed.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_cores_are_sorted_and_bounded() {
        let cores = allowed_cores();
        assert!(cores.windows(2).all(|w| w[0] < w[1]));
        assert!(cores.iter().all(|&c| c < MASK_WORDS * 64));
        if cfg!(target_os = "linux") {
            assert!(!cores.is_empty(), "linux must report at least one cpu");
        }
    }

    #[test]
    fn pinning_restricts_a_spawned_worker_to_one_core() {
        // Pin inside a dedicated thread so the test harness thread keeps
        // its full mask.
        let pinned = std::thread::spawn(|| {
            if !pin_current_thread(0) {
                return None; // degraded environment: nothing to assert
            }
            Some(allowed_cores())
        })
        .join()
        .unwrap();
        if let Some(cores) = pinned {
            assert_eq!(cores.len(), 1, "pinned thread sees one allowed cpu");
        }
    }

    #[test]
    fn lane_indices_wrap_around_the_allowed_mask() {
        // Any huge lane index maps back into the mask instead of failing.
        let outcome = std::thread::spawn(|| pin_current_thread(usize::MAX))
            .join()
            .unwrap();
        if cfg!(target_os = "linux") {
            assert!(outcome, "wrapping pin must succeed on linux");
        } else {
            assert!(!outcome);
        }
    }

    #[test]
    fn out_of_range_cpu_is_rejected_not_panicked() {
        assert!(!imp::pin_to(MASK_WORDS * 64 + 7));
    }
}
