//! Step-centric worker lanes: the CPU engine's execution layout.
//!
//! A session splits its query set into contiguous per-worker **lanes**
//! ([`LanePlan`]); each [`WorkerLane`] owns its walkers' SoA state plus a
//! [`WalkerRing`] and advances them with the paper's step-centric
//! Gather–Move–Update cycle (DESIGN.md §9):
//!
//! - **Gather** — fix the ring's current walker and software-prefetch the
//!   *following* walker's CSR row ([`prefetch_row`], distance 1), so its
//!   adjacency travels toward cache while the current walker samples.
//! - **Move** — one turn of the shared [`WalkProgram`] state machine,
//!   which resolves the current row and draws through the fused
//!   [`HotStepper`] fast paths.
//! - **Update** — write back walker state, append the emitted vertex, and
//!   retire or keep the walker in the ring.
//!
//! The visit order is exactly the pre-lane engine's cursor +
//! `swap_remove` sweep (the ring replays it; tests/engine_agreement.rs
//! pins bit-identity), so the lane refactor changes memory behaviour,
//! never sampled walks.

use lightrw_graph::{Graph, VertexId};
use lightrw_walker::program::{StepOutcome, WalkProgram, WalkState};
use lightrw_walker::{prefetch_row, HotStepper, Query, SamplerKind, WalkApp, WalkerRing};

/// How a session maps queries onto worker lanes.
///
/// Thread resolution is a documented **double clamp**: first the
/// *requested* worker count resolves (`0` → one per available core), then
/// the *lane* count clamps to the query count — `lane_len =
/// ceil(queries / workers)` means at most `queries` lanes materialize, so
/// tiny batches on big machines don't spawn empty workers. The service
/// pool and the CLI both size through this plan, so `--threads N` and a
/// jobspec `threads` field agree by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LanePlan {
    /// Worker count after the first clamp (`0` → available cores).
    pub workers: usize,
    /// Queries per lane (every lane but possibly the last).
    pub lane_len: usize,
    /// Lanes that actually materialize (`≤ workers`, second clamp).
    pub lanes: usize,
}

/// Resolve a requested thread count: `0` means one worker per core the
/// scheduler grants us.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

impl LanePlan {
    /// Plan lanes for `num_queries` queries over `requested` threads.
    pub fn plan(requested: usize, num_queries: usize) -> Self {
        let workers = resolve_workers(requested);
        let lane_len = num_queries.div_ceil(workers).max(1);
        Self {
            workers,
            lane_len,
            lanes: num_queries.div_ceil(lane_len),
        }
    }
}

/// One worker's walkers in structure-of-arrays layout: the ring sweep
/// touches `cur`/`prev`/`step` for every active walker, so dense parallel
/// arrays (instead of an array of structs with inline path buffers) keep
/// the sweep's working set to a few cache lines per walker. Each lane owns
/// its stepper (seeded per lane, so thread interleaving never changes
/// sampled walks) and its ring, which lets a session pause mid-sweep and
/// resume exactly where it stopped.
pub struct WorkerLane {
    stepper: HotStepper,
    queries: Vec<Query>,
    cur: Vec<VertexId>,
    prev: Vec<Option<VertexId>>,
    /// Step budget consumed per walker (moves + teleports).
    taken: Vec<u32>,
    /// Step index within the current restart segment (resets on teleport)
    /// — the `t` the weight rules see.
    seg: Vec<u32>,
    /// Output paths, preallocated to full length at setup — the step loop
    /// never allocates. A path's buffer is released (taken) once emitted.
    paths: Vec<Vec<VertexId>>,
    done: Vec<bool>,
    /// Scheduling state: which walkers still walk, and where in the sweep.
    ring: WalkerRing,
}

impl WorkerLane {
    /// Build a lane over `qs`, with scratch sized for `max_degree`.
    pub fn new(
        qs: &[Query],
        app: &dyn WalkApp,
        sampler: SamplerKind,
        seed: u64,
        max_degree: usize,
    ) -> Self {
        let mut stepper = HotStepper::new(app, sampler, seed);
        stepper.reserve(max_degree);
        Self {
            stepper,
            cur: qs.iter().map(|q| q.start).collect(),
            prev: vec![None; qs.len()],
            taken: vec![0; qs.len()],
            seg: vec![0; qs.len()],
            paths: qs
                .iter()
                .map(|q| {
                    let mut p = Vec::with_capacity(q.length as usize + 1);
                    p.push(q.start);
                    p
                })
                .collect(),
            done: vec![false; qs.len()],
            ring: WalkerRing::full(qs.len()),
            queries: qs.to_vec(),
        }
    }

    /// Whether every walker in this lane has retired.
    pub fn is_idle(&self) -> bool {
        self.ring.is_empty()
    }

    /// Run up to `budget` Gather–Move–Update visits, one step attempt per
    /// visit, round-robin over the ring. Returns steps executed
    /// (truncating dead-end and target-at-start visits consume budget but
    /// no step; teleports count as steps, keeping step totals equal to
    /// emitted path lengths).
    pub fn advance(
        &mut self,
        budget: u64,
        g: &Graph,
        app: &dyn WalkApp,
        program: &WalkProgram,
    ) -> u64 {
        let mut attempts = 0u64;
        let mut steps = 0u64;
        while attempts < budget {
            // Gather: fix this visit's walker, then prefetch the row the
            // *next* walker will sample from, one full Move+Update ahead
            // of its use.
            let Some(qi) = self.ring.current() else {
                break;
            };
            if let Some(next) = self.ring.upcoming() {
                prefetch_row(g, self.cur[next]);
            }
            // Move: one turn of the shared program state machine (which
            // resolves the current row and samples through the fused
            // stepper paths).
            let q = self.queries[qi];
            let mut st = WalkState {
                cur: self.cur[qi],
                prev: self.prev[qi],
                taken: self.taken[qi],
                seg: self.seg[qi],
            };
            let outcome = program.step_attempt(g, app, &mut self.stepper, &q, &mut st);
            // Update: write back, append, retire or keep.
            self.cur[qi] = st.cur;
            self.prev[qi] = st.prev;
            self.taken[qi] = st.taken;
            self.seg[qi] = st.seg;
            let done = match outcome {
                StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                    steps += 1;
                    let v = outcome.appended(q.start).expect("advancing outcome");
                    self.paths[qi].push(v);
                    done
                }
                StepOutcome::DeadEnd | StepOutcome::TargetAtStart => true,
            };
            if done {
                self.done[qi] = true;
                self.ring.retire();
            } else {
                self.ring.keep();
            }
            attempts += 1;
        }
        steps
    }

    /// Upper-bound estimate of the step attempts left in this lane: the
    /// sum of each active walker's remaining step budget. Truncating
    /// visits (dead ends, target-at-start) retire walkers early, so the
    /// true count can only be lower. The session's spawn gate uses this
    /// to keep tiny batches off the thread pool.
    pub fn remaining_steps(&self) -> u64 {
        self.ring
            .active()
            .iter()
            .map(|&qi| self.queries[qi].length.saturating_sub(self.taken[qi]) as u64)
            .sum()
    }

    /// Release the finished path of local walker `local`, or `None` while
    /// it is still walking. Feeds an
    /// [`lightrw_walker::engine::InOrderEmitter`]'s `take_ready`; the
    /// buffer handoff (`std::mem::take`) is what makes emission
    /// exactly-once.
    pub fn take_path(&mut self, local: usize) -> Option<Vec<VertexId>> {
        if self.done[local] {
            Some(std::mem::take(&mut self.paths[local]))
        } else {
            None
        }
    }

    /// Retire every remaining walker, freezing paths as they stand
    /// (cancellation).
    pub fn cancel(&mut self) {
        for &qi in self.ring.active() {
            self.done[qi] = true;
        }
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_resolves_zero_to_available_cores() {
        let auto = LanePlan::plan(0, 1_000);
        assert_eq!(
            auto.workers,
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
        assert_eq!(LanePlan::plan(3, 1_000).workers, 3);
    }

    #[test]
    fn lane_count_clamps_to_the_query_count() {
        // Second clamp: 8 workers over 3 queries → 3 one-query lanes.
        let plan = LanePlan::plan(8, 3);
        assert_eq!(plan.lane_len, 1);
        assert_eq!(plan.lanes, 3);
        // And an empty set plans zero lanes without dividing by zero.
        let empty = LanePlan::plan(4, 0);
        assert_eq!(empty.lanes, 0);
        assert_eq!(empty.lane_len, 1);
    }

    #[test]
    fn lane_boundaries_match_the_chunking_formula() {
        // The plan must reproduce `qs.chunks(lane_len)` exactly — the
        // session's seed derivation depends on these boundaries.
        for (threads, n) in [(1, 10), (3, 10), (4, 9), (7, 7), (2, 1)] {
            let plan = LanePlan::plan(threads, n);
            assert_eq!(plan.lane_len, n.div_ceil(threads).max(1));
            assert_eq!(
                plan.lanes,
                (0..n).collect::<Vec<_>>().chunks(plan.lane_len).count()
            );
        }
    }
}
