//! The Table 1 reproduction: a top-down profile proxy for the CPU engine.
//!
//! The paper profiles ThunderRW with vTune and reports three counters: LLC
//! miss ratio, memory-bound cycle fraction, and retiring ratio. Without
//! hardware counters we substitute a trace-driven estimate (DESIGN.md §1):
//! the engine's memory reference stream — `row_index` lookups, `col_index`
//! scans, and the per-step intermediate sampler tables of Algorithm 2.1 —
//! is replayed through [`LlcSim`], and a simple cycle model converts
//! hit/miss counts into the two cycle fractions.
//!
//! The cycle model (documented constants, not measurements): an LLC miss
//! stalls the core for `MISS_PENALTY` cycles with partial overlap
//! `MLP_OVERLAP` (memory-level parallelism from interleaving); hits and
//! per-item arithmetic retire at a fixed rate. The constants are anchored
//! so the full-scale working-set ratios land near Table 1; at reduced
//! scale the *ordering* (GDRWs are memory bound, retiring is low) is the
//! reproduced claim.

use crate::llc::LlcSim;
use lightrw_graph::{Graph, VertexId};
use lightrw_walker::app::StepContext;
use lightrw_walker::membership::common_neighbor_mask;
use lightrw_walker::{AnySampler, QuerySet, SamplerKind, WalkApp};

/// Cycles a core is stalled by an LLC miss (DRAM at ~60 ns, 3 GHz core).
const MISS_PENALTY: f64 = 180.0;
/// Fraction of miss latency hidden by memory-level parallelism.
const MLP_OVERLAP: f64 = 0.45;
/// Core cycles per cache-line touch that hits (L1/L2 latency amortized).
const HIT_COST: f64 = 10.0;
/// Arithmetic cycles retired per neighbor item processed (weight update +
/// sampling math).
const COMPUTE_PER_ITEM: f64 = 4.0;
/// Fixed per-step bookkeeping cycles (query scheduling, bounds checks).
const STEP_OVERHEAD: f64 = 40.0;

/// The Table 1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopDownProfile {
    /// LLC miss ratio over all traced line accesses.
    pub llc_miss_ratio: f64,
    /// Fraction of cycles stalled on memory.
    pub memory_bound: f64,
    /// Fraction of cycles doing useful retirement.
    pub retiring: f64,
    /// Raw counters backing the estimate.
    pub line_accesses: u64,
    /// Raw LLC misses.
    pub line_misses: u64,
    /// Neighbor items processed.
    pub items: u64,
    /// Steps executed.
    pub steps: u64,
}

/// Run the CPU flow single-threaded with memory tracing, round-robin over
/// queries (the interleaving that defeats locality, §2.3), and estimate
/// the top-down profile.
pub fn profile_top_down(
    g: &Graph,
    app: &dyn WalkApp,
    sampler_kind: SamplerKind,
    queries: &QuerySet,
    llc: &mut LlcSim,
    seed: u64,
) -> TopDownProfile {
    struct St {
        cur: VertexId,
        prev: Option<VertexId>,
        step: u32,
        length: u32,
    }
    let mut states: Vec<St> = queries
        .queries()
        .iter()
        .map(|q| St {
            cur: q.start,
            prev: None,
            step: 0,
            length: q.length,
        })
        .collect();
    let mut active: Vec<usize> = (0..states.len())
        .filter(|&i| states[i].length > 0)
        .collect();

    let mut sampler = AnySampler::new(sampler_kind, seed);
    let mut weights: Vec<u32> = Vec::new();
    let mut mask: Vec<bool> = Vec::new();
    // Intermediate tables live past the CSR image; each query slot gets a
    // scratch region, as ThunderRW keeps per-query buffers.
    let scratch_base = g.csr_bytes();
    let scratch_stride = 1u64 << 14;
    let mut items = 0u64;
    let mut steps = 0u64;

    while !active.is_empty() {
        let mut i = 0;
        while i < active.len() {
            let qi = active[i];
            let st = &states[qi];
            let cur = st.cur;
            let neighbors = g.neighbors(cur);
            // row_index lookup.
            llc.access_range(g.row_entry_addr(cur), 8);
            let mut done = neighbors.is_empty();
            if !done {
                let need_mask = app.second_order() && st.prev.is_some();
                if need_mask {
                    let prev = st.prev.unwrap();
                    llc.access_range(g.row_entry_addr(prev), 8);
                    llc.access_range(g.col_entry_addr(prev), g.neighbor_bytes(prev));
                    common_neighbor_mask(g, cur, prev, &mut mask);
                }
                // col_index scan.
                llc.access_range(g.col_entry_addr(cur), g.neighbor_bytes(cur));
                let ctx = StepContext {
                    step: st.step,
                    cur,
                    prev: st.prev,
                };
                let statics = g.neighbor_weights(cur);
                let relations = g.neighbor_relations(cur);
                weights.clear();
                for (j, &nbr) in neighbors.iter().enumerate() {
                    let relation = relations.get(j).copied().unwrap_or(0);
                    let pin = need_mask && mask[j];
                    weights.push(app.weight(ctx, nbr, statics[j], relation, pin));
                }
                // Intermediate table traffic (Algorithm 2.1's 2·|N(v)|
                // accesses): a weight-array write then a table read.
                let table = AnySampler::table_bytes(sampler_kind, neighbors.len());
                if table > 0 {
                    let scratch = scratch_base + (qi as u64 % 4096) * scratch_stride;
                    llc.access_range(scratch, 4 * neighbors.len() as u64);
                    llc.access_range(scratch + scratch_stride / 2, table);
                }
                items += neighbors.len() as u64;

                let st = &mut states[qi];
                match sampler.select_index(&weights) {
                    Some(sel) => {
                        steps += 1;
                        st.prev = Some(st.cur);
                        st.cur = neighbors[sel];
                        st.step += 1;
                        done = st.step >= st.length;
                    }
                    None => done = true,
                }
            }
            if done {
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    let hits = llc.accesses() - llc.misses();
    let stall = llc.misses() as f64 * MISS_PENALTY * (1.0 - MLP_OVERLAP);
    let mem = hits as f64 * HIT_COST + stall;
    let compute = items as f64 * COMPUTE_PER_ITEM + steps as f64 * STEP_OVERHEAD;
    let total = mem + compute;
    TopDownProfile {
        llc_miss_ratio: llc.miss_ratio(),
        memory_bound: if total > 0.0 { stall / total } else { 0.0 },
        retiring: if total > 0.0 { compute / total } else { 0.0 },
        line_accesses: llc.accesses(),
        line_misses: llc.misses(),
        items,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::DatasetProfile;
    use lightrw_walker::app::{MetaPath, Node2Vec};
    use lightrw_walker::SamplerKind;

    fn profile(scale: u32, app: &dyn WalkApp, len: u32, kind: SamplerKind) -> TopDownProfile {
        let g = DatasetProfile::livejournal().stand_in(scale, 11);
        let qs = QuerySet::n_queries(&g, 2000, len, 3);
        // LLC scaled with the graph: full LJ is ~2^22.2 vertices; scale 12
        // is ~1000x smaller.
        let mut llc = LlcSim::scaled(1 << (22 - scale.min(22)));
        profile_top_down(&g, app, kind, &qs, &mut llc, 5)
    }

    #[test]
    fn gdrw_is_memory_bound_on_big_graphs() {
        let mp = MetaPath::new(vec![0, 1, 2, 3]);
        let p = profile(12, &mp, 5, SamplerKind::InverseTransform);
        // The Table 1 claims, qualitatively: high LLC miss, memory bound
        // dominant over retiring.
        assert!(p.llc_miss_ratio > 0.3, "llc {}", p.llc_miss_ratio);
        assert!(p.memory_bound > 0.25, "mb {}", p.memory_bound);
        assert!(p.retiring < 0.5, "ret {}", p.retiring);
        assert!(p.memory_bound + p.retiring <= 1.0 + 1e-9);
        assert!(p.steps > 0 && p.items > 0);
    }

    #[test]
    fn node2vec_profile_completes() {
        let nv = Node2Vec::paper_params();
        let p = profile(10, &nv, 8, SamplerKind::InverseTransform);
        assert!(p.llc_miss_ratio > 0.0 && p.llc_miss_ratio <= 1.0);
        assert!(p.line_accesses > p.line_misses);
    }

    #[test]
    fn wrs_reduces_intermediate_traffic() {
        // §3.2: WRS eliminates the intermediate table, so the traced
        // reference stream must shrink.
        let mp = MetaPath::new(vec![0, 1]);
        let with_table = profile(10, &mp, 5, SamplerKind::InverseTransform);
        let without = profile(10, &mp, 5, SamplerKind::SequentialWrs);
        assert!(
            with_table.line_accesses > without.line_accesses,
            "IT {} vs WRS {}",
            with_table.line_accesses,
            without.line_accesses
        );
    }

    #[test]
    fn small_graph_fits_in_cache() {
        let g = DatasetProfile::youtube().stand_in(8, 1);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 2);
        let mut llc = LlcSim::xeon_6246r(); // full-size cache, tiny graph
        let mp = MetaPath::new(vec![0, 1]);
        let p = profile_top_down(&g, &mp, SamplerKind::InverseTransform, &qs, &mut llc, 7);
        // Everything but cold misses hits (the paper's youtube footnote:
        // small graphs fit in the CPU LLC).
        assert!(p.llc_miss_ratio < 0.4, "{}", p.llc_miss_ratio);
    }
}
