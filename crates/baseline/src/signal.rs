//! Best-effort graceful-shutdown signals for serving loops.
//!
//! The network front door (DESIGN.md §13) and the trace-replay `serve`
//! mode both need one bit of information — *the operator asked us to
//! stop* — delivered asynchronously by SIGINT (Ctrl-C) or SIGTERM
//! (systemd, `kill`, CI teardown). We hand-roll the `sigaction(2)`
//! wrapper over its libc symbol, exactly like the [`crate::affinity`]
//! and `mmap` wrappers, because the build is offline and vendored-only.
//!
//! The contract is **degrade, never fail** (DESIGN.md §9): installation
//! returns a plain `bool`, and a platform where handlers cannot be
//! installed (non-Linux, or a raced `sigaction` failure) simply leaves
//! the default disposition in place — the process dies abruptly on
//! signal instead of draining, which is the pre-existing behavior, not
//! a new failure mode. The handler itself only performs the single
//! async-signal-safe action of storing a relaxed atomic flag; all
//! draining logic runs in ordinary threads that poll
//! [`shutdown_requested`].
//!
//! [`request_shutdown`] sets the same flag programmatically so embedding
//! code (tests, admin endpoints, the drain-deadline watchdog) shares one
//! code path with the signal handler, and [`clear_shutdown`] re-arms the
//! flag for the next serve loop in one process (tests, REPL embeddings).

use std::sync::atomic::{AtomicBool, Ordering};

/// The one-way "stop serving" latch. Process-global by design: a signal
/// does not name a recipient, so every serve loop in the process drains
/// together.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(target_os = "linux")]
mod imp {
    use std::sync::atomic::Ordering;

    /// glibc's `struct sigaction` on Linux: the handler pointer, a
    /// 1024-bit signal mask (`sigset_t`), the flags word, and the
    /// legacy restorer pointer. Field order matters — it mirrors the
    /// glibc definition, not the raw kernel one.
    #[repr(C)]
    struct SigAction {
        handler: usize,
        mask: [u64; 16],
        flags: i32,
        restorer: usize,
    }

    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, oldact: *mut SigAction) -> i32;
        fn raise(signum: i32) -> i32;
    }

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    /// The installed handler: stores the flag and nothing else (the only
    /// async-signal-safe thing worth doing). No `SA_RESTART`, so a
    /// blocking `accept(2)` on the signalled thread returns `EINTR` and
    /// its loop observes the flag promptly.
    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, Ordering::Relaxed);
    }

    /// Install [`on_signal`] for `signum`; false on syscall failure.
    pub fn install(signum: i32) -> bool {
        let act = SigAction {
            handler: on_signal as *const () as usize,
            mask: [0; 16],
            flags: 0,
            restorer: 0,
        };
        // SAFETY: `act` is a properly laid out glibc sigaction whose
        // handler only touches an atomic; the old action is discarded.
        unsafe { sigaction(signum, &act, std::ptr::null_mut()) == 0 }
    }

    /// Deliver `signum` to the calling thread (test harness use).
    pub fn raise_signal(signum: i32) -> bool {
        // SAFETY: plain libc call; our handler is async-signal-safe.
        unsafe { raise(signum) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    /// Non-Linux stub: handlers cannot be installed; the default
    /// disposition stays (degrade, never fail).
    pub fn install(_signum: i32) -> bool {
        false
    }

    /// Non-Linux stub: nothing to deliver to.
    pub fn raise_signal(_signum: i32) -> bool {
        false
    }
}

/// Install the shutdown handler for SIGINT and SIGTERM. Returns whether
/// *both* installations took effect; `false` (non-Linux, syscall
/// failure) leaves the default kill-on-signal disposition in place, so
/// callers may serve exactly as before — just without graceful drains.
///
/// Idempotent: re-installing is harmless, and the flag's current value
/// is preserved.
pub fn install_shutdown_handler() -> bool {
    let int_ok = imp::install(imp::SIGINT);
    let term_ok = imp::install(imp::SIGTERM);
    int_ok && term_ok
}

/// True once a shutdown was requested — by signal or by
/// [`request_shutdown`]. Serve loops poll this between accepts/ticks.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Request a shutdown programmatically (same latch the signal handler
/// sets): tests, drain watchdogs and embedding code share the signal
/// path's drain logic.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Re-arm the latch for a subsequent serve loop in the same process.
/// Only meaningful once the previous loop has fully drained; the CLI
/// calls it before entering a serve loop so a stale flag from an earlier
/// in-process run (tests run many) cannot pre-empt a fresh one.
pub fn clear_shutdown() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

/// Deliver a real SIGINT/SIGTERM to the current process (used by the
/// signal-path tests; no-op `false` off Linux). `signum` accepts the
/// [`SIGINT`]/[`SIGTERM`] constants re-exported here.
pub fn raise_for_tests(signum: i32) -> bool {
    imp::raise_signal(signum)
}

/// SIGINT's number, for [`raise_for_tests`].
pub const SIGINT: i32 = 2;
/// SIGTERM's number, for [`raise_for_tests`].
pub const SIGTERM: i32 = 15;

#[cfg(test)]
mod tests {
    use super::*;

    // One test fn drives the whole lifecycle: the latch is process-global,
    // so splitting these into separate #[test]s would race each other
    // under the parallel harness.
    #[test]
    fn signal_lifecycle_sets_and_clears_the_latch() {
        clear_shutdown();
        assert!(!shutdown_requested());

        // The programmatic path works everywhere.
        request_shutdown();
        assert!(shutdown_requested());
        clear_shutdown();
        assert!(!shutdown_requested());

        // The signal path: install, deliver a real SIGTERM, observe the
        // latch. On platforms where installation degrades there is
        // nothing further to assert (default disposition would have
        // killed us, so we must not raise).
        if install_shutdown_handler() {
            assert!(raise_for_tests(SIGTERM));
            assert!(shutdown_requested(), "SIGTERM must set the latch");
            clear_shutdown();
            assert!(raise_for_tests(SIGINT));
            assert!(shutdown_requested(), "SIGINT must set the latch");
            clear_shutdown();
        } else if cfg!(target_os = "linux") {
            panic!("linux must install the handler");
        }

        // Idempotent re-install preserves the flag value.
        request_shutdown();
        install_shutdown_handler();
        assert!(shutdown_requested());
        clear_shutdown();
    }
}
