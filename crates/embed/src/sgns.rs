//! Skip-gram with negative sampling (Word2Vec), trained on walk corpora.
//!
//! The learning stage of the paper's link-prediction case study. Kept
//! deliberately close to the original Word2Vec/node2vec C training loop:
//! two embedding matrices (input/context), sliding window over each walk,
//! `negatives` corrupted pairs per positive, SGD with linear learning-rate
//! decay. Single-threaded and seeded: reproducible to the bit.
//!
//! Walks can come from a materialized corpus ([`SgnsTrainer::train`]) or
//! be **streamed straight out of any walk engine's session**
//! ([`SgnsTrainer::train_from_engine`], DESIGN.md §6) — the node2vec
//! corpus is then never materialized, and both paths produce bit-identical
//! embeddings.

use crate::vocab::Vocab;
use lightrw_rng::{Rng, SplitMix64};
use lightrw_walker::{QuerySet, VertexId, WalkEngine, WalkEngineExt, WalkResults};

/// Steps per session batch when walks are streamed from an engine.
const STREAM_BATCH: u64 = 4096;

/// Trainer hyperparameters (defaults follow node2vec's reference setup,
/// scaled down for the reproduction's graph sizes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgnsConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub lr: f32,
    /// Epochs over the corpus.
    pub epochs: usize,
    /// Seed for init + negative sampling.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            window: 5,
            negatives: 5,
            lr: 0.025,
            epochs: 2,
            seed: 0x5EED,
        }
    }
}

/// Trained vertex embeddings.
pub struct Embeddings {
    dim: usize,
    vecs: Vec<f32>,
}

impl Embeddings {
    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded vertices.
    pub fn len(&self) -> usize {
        self.vecs.len() / self.dim
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vecs.is_empty()
    }

    /// The embedding vector of vertex `v`.
    pub fn vector(&self, v: u32) -> &[f32] {
        let d = self.dim;
        &self.vecs[v as usize * d..(v as usize + 1) * d]
    }

    /// Cosine similarity between two vertices' embeddings.
    pub fn cosine(&self, u: u32, v: u32) -> f32 {
        let (a, b) = (self.vector(u), self.vector(v));
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }
}

/// The SGNS trainer.
pub struct SgnsTrainer {
    cfg: SgnsConfig,
}

impl SgnsTrainer {
    /// Create a trainer.
    pub fn new(cfg: SgnsConfig) -> Self {
        assert!(cfg.dim >= 2 && cfg.window >= 1 && cfg.epochs >= 1);
        Self { cfg }
    }

    /// Train embeddings from a materialized walk corpus over
    /// `num_vertices` vertices.
    pub fn train(&self, walks: &WalkResults, num_vertices: usize) -> Embeddings {
        let cfg = self.cfg;
        let vocab = Vocab::from_walks(walks, num_vertices);
        // Total positive pairs for lr decay.
        let pairs_per_epoch: u64 = walks
            .iter()
            .map(|p| window_pairs(p.len(), cfg.window))
            .sum();
        let mut state = TrainState::new(cfg, vocab, num_vertices, pairs_per_epoch);
        for _epoch in 0..cfg.epochs {
            for path in walks.iter() {
                state.train_path(path);
            }
        }
        state.into_embeddings()
    }

    /// Train embeddings **streamed from a walk engine** — the node2vec
    /// corpus is never materialized (DESIGN.md §6). One counting pass
    /// builds the vocabulary and the lr-decay pair total from paths as
    /// they are emitted, then each epoch replays the deterministic
    /// session (same engine, same queries, same seed ⇒ the same walks the
    /// hardware would stream back) and applies SGD per emitted path.
    ///
    /// Because sessions emit paths in query-id order, the SGD update
    /// sequence is identical to [`SgnsTrainer::train`] on the collected
    /// corpus: the resulting embeddings are bit-identical, for any
    /// backend behind the `&dyn WalkEngine`.
    pub fn train_from_engine(
        &self,
        engine: &dyn WalkEngine,
        queries: &QuerySet,
        num_vertices: usize,
    ) -> Embeddings {
        let cfg = self.cfg;
        // Pass 0: stream once to count vertex frequencies and window
        // pairs — O(|V|) state, no stored paths.
        let mut counts = vec![0u64; num_vertices];
        let mut pairs_per_epoch = 0u64;
        let mut counting = |_id: u32, path: &[VertexId]| {
            for &v in path {
                counts[v as usize] += 1;
            }
            pairs_per_epoch += window_pairs(path.len(), cfg.window);
        };
        engine.stream_into(queries, STREAM_BATCH, &mut counting);

        let vocab = Vocab::from_counts(counts);
        let mut state = TrainState::new(cfg, vocab, num_vertices, pairs_per_epoch);
        for _epoch in 0..cfg.epochs {
            let mut training = |_id: u32, path: &[VertexId]| state.train_path(path);
            engine.stream_into(queries, STREAM_BATCH, &mut training);
        }
        state.into_embeddings()
    }
}

/// Positive skip-gram pairs a path of `n` tokens contributes per epoch.
fn window_pairs(n: usize, window: usize) -> u64 {
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(window);
            let hi = (i + window).min(n - 1);
            (hi - lo) as u64
        })
        .sum()
}

/// The SGD state shared by materialized and streaming training: both
/// drive [`TrainState::train_path`] with paths in the same order, so the
/// two entry points produce bit-identical embeddings.
struct TrainState {
    cfg: SgnsConfig,
    vocab: Vocab,
    rng: SplitMix64,
    w_in: Vec<f32>,
    w_ctx: Vec<f32>,
    grad: Vec<f32>,
    seen_pairs: u64,
    total_pairs: u64,
}

impl TrainState {
    fn new(cfg: SgnsConfig, vocab: Vocab, num_vertices: usize, pairs_per_epoch: u64) -> Self {
        let d = cfg.dim;
        let mut rng = SplitMix64::new(cfg.seed);
        // Word2Vec init: input uniform in [-0.5/d, 0.5/d), context zero.
        let w_in: Vec<f32> = (0..num_vertices * d)
            .map(|_| (rng.next_f64() as f32 - 0.5) / d as f32)
            .collect();
        Self {
            cfg,
            vocab,
            rng,
            w_in,
            w_ctx: vec![0.0; num_vertices * d],
            grad: vec![0.0f32; d],
            seen_pairs: 0,
            total_pairs: (pairs_per_epoch * cfg.epochs as u64).max(1),
        }
    }

    /// Slide the skip-gram window over one path, applying one SGD update
    /// per positive pair (+ `negatives` corrupted pairs each).
    #[allow(clippy::needless_range_loop)] // i/j are positions, not just indices
    fn train_path(&mut self, path: &[VertexId]) {
        let cfg = self.cfg;
        let d = cfg.dim;
        let n = path.len();
        for i in 0..n {
            let center = path[i] as usize;
            let lo = i.saturating_sub(cfg.window);
            let hi = (i + cfg.window).min(n - 1);
            for j in lo..=hi {
                if j == i {
                    continue;
                }
                self.seen_pairs += 1;
                let lr =
                    cfg.lr * (1.0 - self.seen_pairs as f32 / self.total_pairs as f32).max(1e-4);
                let context = path[j] as usize;
                self.grad.fill(0.0);
                // Positive pair + negatives.
                for neg in 0..=cfg.negatives {
                    let (target, label) = if neg == 0 {
                        (context, 1.0f32)
                    } else {
                        (self.vocab.sample_negative(&mut self.rng) as usize, 0.0f32)
                    };
                    if neg > 0 && target == center {
                        continue;
                    }
                    let (ci, ti) = (center * d, target * d);
                    let mut dot = 0.0f32;
                    for x in 0..d {
                        dot += self.w_in[ci + x] * self.w_ctx[ti + x];
                    }
                    let g = (label - sigmoid(dot)) * lr;
                    for x in 0..d {
                        self.grad[x] += g * self.w_ctx[ti + x];
                        self.w_ctx[ti + x] += g * self.w_in[ci + x];
                    }
                }
                let ci = center * d;
                for x in 0..d {
                    self.w_in[ci + x] += self.grad[x];
                }
            }
        }
    }

    fn into_embeddings(self) -> Embeddings {
        Embeddings {
            dim: self.cfg.dim,
            vecs: self.w_in,
        }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    // Clamp like Word2Vec's MAX_EXP table to keep gradients bounded.
    let x = x.clamp(-6.0, 6.0);
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus with two "communities" {0,1,2} and {3,4,5} that never
    /// co-occur.
    fn community_corpus() -> WalkResults {
        let mut w = WalkResults::new();
        let mut s = SplitMix64::new(9);
        for _ in 0..220 {
            let base = if s.gen_bool(0.5) { 0u32 } else { 3u32 };
            let path: Vec<u32> = (0..12).map(|_| base + s.gen_range(3) as u32).collect();
            w.push_path(&path);
        }
        w
    }

    #[test]
    fn embeddings_have_right_shape() {
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 1,
            ..Default::default()
        };
        let emb = SgnsTrainer::new(cfg).train(&community_corpus(), 6);
        assert_eq!(emb.len(), 6);
        assert_eq!(emb.dim(), 16);
        assert_eq!(emb.vector(5).len(), 16);
    }

    #[test]
    fn cosine_separates_communities() {
        let cfg = SgnsConfig {
            dim: 24,
            window: 3,
            epochs: 3,
            ..Default::default()
        };
        let emb = SgnsTrainer::new(cfg).train(&community_corpus(), 6);
        // In-community similarity must beat cross-community similarity.
        let within = (emb.cosine(0, 1) + emb.cosine(1, 2) + emb.cosine(3, 4)) / 3.0;
        let across = (emb.cosine(0, 3) + emb.cosine(1, 4) + emb.cosine(2, 5)) / 3.0;
        assert!(
            within > across + 0.2,
            "within {within:.3} vs across {across:.3}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        };
        let a = SgnsTrainer::new(cfg).train(&community_corpus(), 6);
        let b = SgnsTrainer::new(cfg).train(&community_corpus(), 6);
        assert_eq!(a.vecs, b.vecs);
    }

    #[test]
    fn cosine_of_identical_vertex_is_one() {
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        };
        let emb = SgnsTrainer::new(cfg).train(&community_corpus(), 6);
        assert!((emb.cosine(1, 1) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn streaming_training_is_bit_identical_to_materialized_for_every_backend() {
        // The acceptance property of the session refactor: `sgns` can
        // train straight from any engine's sink without an intermediate
        // `WalkResults`, and the embeddings match the materialized path
        // bit for bit (sessions emit in query-id order; the corpus replay
        // per epoch is deterministic).
        use lightrw::prelude::*;

        let g = DatasetProfile::youtube().stand_in(8, 3);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::per_nonisolated_vertex(&g, 10, 5);
        let cfg = SgnsConfig {
            dim: 12,
            window: 3,
            epochs: 2,
            ..Default::default()
        };
        let trainer = SgnsTrainer::new(cfg);
        let n = g.num_vertices();

        let engines: Vec<Box<dyn WalkEngine + '_>> = vec![
            Box::new(ReferenceEngine::new(
                &g,
                &nv,
                SamplerKind::InverseTransform,
                7,
            )),
            Box::new(CpuEngine::new(
                &g,
                &nv,
                BaselineConfig {
                    threads: 2,
                    ..Default::default()
                },
            )),
            Box::new(LightRwSim::new(&g, &nv, LightRwConfig::default())),
        ];
        for engine in &engines {
            let corpus = engine.run_collected(&qs);
            let materialized = trainer.train(&corpus, n);
            let streamed = trainer.train_from_engine(engine.as_ref(), &qs, n);
            assert_eq!(
                materialized.vecs,
                streamed.vecs,
                "stream ≠ materialize on {}",
                engine.label()
            );
        }
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) < 1.0);
        assert!(sigmoid(-100.0) > 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }
}
