//! Unigram statistics over a walk corpus and the negative-sampling table.

use lightrw_sampling::{AliasTable, IndexSampler};
use lightrw_walker::WalkResults;

/// Vertex vocabulary with corpus frequencies and a `count^0.75`
/// negative-sampling distribution (the Word2Vec convention).
pub struct Vocab {
    counts: Vec<u64>,
    total: u64,
    neg_table: Option<AliasTable>,
}

impl Vocab {
    /// Build from a walk corpus over `num_vertices` vertices.
    pub fn from_walks(walks: &WalkResults, num_vertices: usize) -> Self {
        let mut counts = vec![0u64; num_vertices];
        for path in walks.iter() {
            for &v in path {
                counts[v as usize] += 1;
            }
        }
        Self::from_counts(counts)
    }

    /// Build from precomputed per-vertex frequencies — what a streaming
    /// counting pass over a `WalkSink` produces (DESIGN.md §6), so a
    /// vocabulary never requires a materialized corpus.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let total = counts.iter().sum();
        // Word2Vec negative sampling: P(v) ∝ count(v)^0.75, discretized
        // into integer weights for the alias table.
        let weights: Vec<u32> = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    0
                } else {
                    ((c as f64).powf(0.75) * 16.0).round().max(1.0) as u32
                }
            })
            .collect();
        let neg_table = AliasTable::build(&weights);
        Self {
            counts,
            total,
            neg_table,
        }
    }

    /// Corpus frequency of a vertex.
    pub fn count(&self, v: u32) -> u64 {
        self.counts[v as usize]
    }

    /// Total tokens in the corpus.
    pub fn total_tokens(&self) -> u64 {
        self.total
    }

    /// Vocabulary size (vertex count).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Draw a negative sample (∝ count^0.75). Panics on an empty corpus.
    pub fn sample_negative<R: lightrw_rng::Rng>(&self, rng: &mut R) -> u32 {
        self.neg_table
            .as_ref()
            .expect("empty corpus has no negative distribution")
            .sample(rng) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_rng::SplitMix64;

    fn corpus() -> WalkResults {
        let mut w = WalkResults::new();
        w.push_path(&[0, 1, 2, 1]);
        w.push_path(&[1, 1, 3]);
        w
    }

    #[test]
    fn counts_tokens() {
        let v = Vocab::from_walks(&corpus(), 5);
        assert_eq!(v.count(0), 1);
        assert_eq!(v.count(1), 4);
        assert_eq!(v.count(2), 1);
        assert_eq!(v.count(3), 1);
        assert_eq!(v.count(4), 0);
        assert_eq!(v.total_tokens(), 7);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn negatives_never_hit_zero_count_vertices() {
        let v = Vocab::from_walks(&corpus(), 5);
        let mut rng = SplitMix64::new(1);
        for _ in 0..2000 {
            let s = v.sample_negative(&mut rng);
            assert_ne!(s, 4, "sampled unseen vertex");
        }
    }

    #[test]
    fn frequent_vertices_sampled_more_but_sublinearly() {
        let mut w = WalkResults::new();
        // vertex 0 appears 16x more than vertex 1.
        let p0 = vec![0u32; 160];
        let p1 = vec![1u32; 10];
        w.push_path(&p0);
        w.push_path(&p1);
        let v = Vocab::from_walks(&w, 2);
        let mut rng = SplitMix64::new(2);
        let n = 50_000;
        let zeros = (0..n).filter(|_| v.sample_negative(&mut rng) == 0).count();
        let ratio = zeros as f64 / (n - zeros) as f64;
        // Raw ratio would be 16; the 0.75 power compresses it to 16^0.75 ≈ 8.
        assert!((5.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn empty_corpus_flags() {
        let v = Vocab::from_walks(&WalkResults::new(), 3);
        assert!(v.is_empty());
    }
}
