//! The Fig. 18 case study: link prediction with and without LightRW.
//!
//! The paper integrates LightRW into SNAP and reports the execution-time
//! breakdown of link prediction on liveJournal:
//!
//! - **SNAP (CPU)**: random walk on CPU + learning on CPU; the walk
//!   dominates (~2/3 of total).
//! - **SNAP w/LightRW**: graph transfer over PCIe + walk on FPGA + result
//!   transfer + the same CPU learning; total drops to about half because
//!   the walk time collapses while transfers stay negligible.
//!
//! Our substitution (DESIGN.md): the CPU walk runs on the ThunderRW-like
//! baseline (measured wall-clock), the FPGA walk on the simulator
//! (modelled time), transfers via the PCIe model, and learning is the real
//! SGNS trainer (measured wall-clock on both sides).

use std::time::Instant;

use lightrw::pcie::PcieBreakdown;
use lightrw::platform::U250_PLATFORM;
use lightrw::prelude::*;

use crate::linkpred::{auc, holdout_split, score_pairs};
use crate::sgns::{SgnsConfig, SgnsTrainer};
use serde::Serialize;

/// Phase times of one link-prediction flow, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseTimes {
    /// PCIe graph upload (0 for the CPU-only flow).
    pub graph_transfer_s: f64,
    /// Random-walk generation.
    pub random_walk_s: f64,
    /// PCIe result download (0 for the CPU-only flow).
    pub result_transfer_s: f64,
    /// SGNS training + scoring on the CPU.
    pub learning_s: f64,
}

impl PhaseTimes {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.graph_transfer_s + self.random_walk_s + self.result_transfer_s + self.learning_s
    }
}

/// Outcome of the case study.
#[derive(Debug, Clone, Serialize)]
pub struct CaseStudyReport {
    /// CPU-only flow ("SNAP").
    pub snap: PhaseTimes,
    /// Accelerated flow ("SNAP w/LightRW").
    pub accelerated: PhaseTimes,
    /// Link-prediction AUC of the CPU flow's embeddings.
    pub auc_cpu: f64,
    /// Link-prediction AUC of the accelerated flow's embeddings.
    pub auc_accelerated: f64,
    /// Held-out test pairs evaluated.
    pub test_pairs: usize,
}

/// Run the Fig. 18 experiment on `graph` with Node2Vec walks of
/// `walk_length` and `walks_per_vertex` queries per vertex.
pub fn run_case_study(
    graph: &Graph,
    walk_length: u32,
    sgns: SgnsConfig,
    seed: u64,
) -> CaseStudyReport {
    let split = holdout_split(graph, 0.15, seed);
    let train = &split.train;
    let nv = Node2Vec::paper_params();
    let queries = QuerySet::per_nonisolated_vertex(train, walk_length, seed ^ 1);

    // --- CPU flow. SNAP's core library processes this flow on one
    // thread (the paper's Fig. 18 baseline is SNAP, not ThunderRW), so the
    // CPU walk here is single-threaded.
    let snap_cfg = BaselineConfig {
        threads: 1,
        ..Default::default()
    };
    let t = Instant::now();
    let (cpu_walks, _) = CpuEngine::new(train, &nv, snap_cfg).run(&queries);
    let cpu_walk_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let emb_cpu = SgnsTrainer::new(sgns).train(&cpu_walks, train.num_vertices());
    let cpu_learn_s = t.elapsed().as_secs_f64();
    let snap = PhaseTimes {
        graph_transfer_s: 0.0,
        random_walk_s: cpu_walk_s,
        result_transfer_s: 0.0,
        learning_s: cpu_learn_s,
    };

    // --- Accelerated flow.
    let sim = LightRwSim::new(train, &nv, LightRwConfig::default()).run(&queries);
    let pcie = PcieBreakdown::model(
        &U250_PLATFORM,
        train.csr_bytes() * 4,
        sim.seconds,
        sim.results.result_bytes(),
    );
    let t = Instant::now();
    let emb_acc = SgnsTrainer::new(sgns).train(&sim.results, train.num_vertices());
    let acc_learn_s = t.elapsed().as_secs_f64();
    let accelerated = PhaseTimes {
        graph_transfer_s: pcie.upload_s,
        random_walk_s: pcie.kernel_s,
        result_transfer_s: pcie.download_s,
        learning_s: acc_learn_s,
    };

    // --- Quality check: both flows must predict held-out links.
    let auc_cpu = auc(
        &score_pairs(&emb_cpu, &split.test_pos),
        &score_pairs(&emb_cpu, &split.test_neg),
    );
    let auc_accelerated = auc(
        &score_pairs(&emb_acc, &split.test_pos),
        &score_pairs(&emb_acc, &split.test_neg),
    );

    CaseStudyReport {
        snap,
        accelerated,
        auc_cpu,
        auc_accelerated,
        test_pairs: split.test_pos.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw::rng::{Rng, SplitMix64};

    /// A stochastic-block-model-like graph: dense communities, sparse
    /// inter-community edges. Link prediction is only meaningful on graphs
    /// with structure (ER graphs are information-theoretically
    /// unpredictable).
    fn community_graph(communities: usize, size: usize, seed: u64) -> Graph {
        let mut rng = SplitMix64::new(seed);
        let mut b = GraphBuilder::undirected().num_vertices(communities * size);
        for c in 0..communities {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in (i + 1)..size as u32 {
                    if rng.gen_bool(0.35) {
                        b = b.edge(base + i, base + j);
                    }
                }
            }
            // A few bridges to the next community keep it connected.
            let next = (((c + 1) % communities) * size) as u32;
            for _ in 0..3 {
                let u = base + rng.gen_range(size as u64) as u32;
                let v = next + rng.gen_range(size as u64) as u32;
                b = b.edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn case_study_runs_and_predicts_links() {
        // Small but real end-to-end run: walks, training, AUC.
        let g = community_graph(16, 32, 5);
        let sgns = SgnsConfig {
            dim: 24,
            window: 4,
            epochs: 2,
            ..Default::default()
        };
        let report = run_case_study(&g, 20, sgns, 11);
        assert!(report.test_pairs > 50);
        // Embeddings must beat coin-flipping on held-out edges.
        assert!(report.auc_cpu > 0.55, "cpu auc {}", report.auc_cpu);
        assert!(
            report.auc_accelerated > 0.55,
            "accelerated auc {}",
            report.auc_accelerated
        );
        // Both flows report all four phases coherently.
        assert!(report.snap.random_walk_s > 0.0);
        assert!(report.snap.graph_transfer_s == 0.0);
        assert!(report.accelerated.graph_transfer_s > 0.0);
        assert!(report.accelerated.total_s() > 0.0);
    }
}
