//! Link prediction: hold-out splitting, scoring and AUC.
//!
//! The standard node2vec evaluation protocol: hide a fraction of edges,
//! train embeddings on the remaining graph, then check that held-out
//! (true) edges score higher than random non-edges.

use crate::sgns::Embeddings;
use lightrw_graph::{Graph, GraphBuilder, VertexId};
use lightrw_rng::{Rng, SplitMix64};

/// A train/test split of a graph's edges.
pub struct HoldoutSplit {
    /// The graph with test edges removed.
    pub train: Graph,
    /// Held-out positive pairs.
    pub test_pos: Vec<(VertexId, VertexId)>,
    /// Sampled negative (non-edge) pairs, same count as `test_pos`.
    pub test_neg: Vec<(VertexId, VertexId)>,
}

/// Hold out ~`frac` of the undirected edges of `g` (both directions
/// removed together) and sample an equal number of non-edges.
pub fn holdout_split(g: &Graph, frac: f64, seed: u64) -> HoldoutSplit {
    assert!((0.0..1.0).contains(&frac));
    let mut rng = SplitMix64::new(seed);

    // Collect canonical undirected pairs.
    let mut pairs: Vec<(VertexId, VertexId, u32)> = Vec::new();
    for (u, v, w) in g.iter_edges() {
        if u < v {
            pairs.push((u, v, w));
        }
    }
    rng.shuffle(&mut pairs);
    let n_test = ((pairs.len() as f64) * frac) as usize;
    let (test, train) = pairs.split_at(n_test);

    let mut b = GraphBuilder::undirected().num_vertices(g.num_vertices());
    for &(u, v, w) in train {
        b = b.weighted_edge(u, v, w);
    }
    let train_graph = b.build();

    let test_pos: Vec<(VertexId, VertexId)> = test.iter().map(|&(u, v, _)| (u, v)).collect();
    let mut test_neg = Vec::with_capacity(test_pos.len());
    let n = g.num_vertices() as u64;
    while test_neg.len() < test_pos.len() {
        let u = rng.gen_range(n) as VertexId;
        let v = rng.gen_range(n) as VertexId;
        if u != v && !g.has_edge(u, v) {
            test_neg.push((u, v));
        }
    }
    HoldoutSplit {
        train: train_graph,
        test_pos,
        test_neg,
    }
}

/// Area under the ROC curve for positive vs negative scores (probability
/// that a random positive outranks a random negative; ties count half).
pub fn auc(pos_scores: &[f32], neg_scores: &[f32]) -> f64 {
    assert!(!pos_scores.is_empty() && !neg_scores.is_empty());
    // Rank-sum (Mann-Whitney U) formulation, O((m+n) log(m+n)).
    let mut all: Vec<(f32, bool)> = pos_scores
        .iter()
        .map(|&s| (s, true))
        .chain(neg_scores.iter().map(|&s| (s, false)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN score"));
    let mut rank_sum = 0.0f64;
    let mut i = 0usize;
    while i < all.len() {
        // Tie group [i, j): average rank.
        let mut j = i + 1;
        while j < all.len() && all[j].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = ((i + 1 + j) as f64) / 2.0; // 1-based ranks
        rank_sum += all[i..j].iter().filter(|(_, p)| *p).count() as f64 * avg_rank;
        i = j;
    }
    let m = pos_scores.len() as f64;
    let n = neg_scores.len() as f64;
    (rank_sum - m * (m + 1.0) / 2.0) / (m * n)
}

/// Score pairs by embedding cosine similarity.
pub fn score_pairs(emb: &Embeddings, pairs: &[(VertexId, VertexId)]) -> Vec<f32> {
    pairs.iter().map(|&(u, v)| emb.cosine(u, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::generators;

    #[test]
    fn auc_of_perfect_separation_is_one() {
        assert_eq!(auc(&[0.9, 0.8], &[0.1, 0.2]), 1.0);
        assert_eq!(auc(&[0.1], &[0.9]), 0.0);
    }

    #[test]
    fn auc_of_identical_scores_is_half() {
        assert!((auc(&[0.5, 0.5], &[0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let a = auc(&[0.9, 0.4], &[0.5, 0.1]);
        // pairs: (.9>.5),(.9>.1),(.4<.5),(.4>.1) → 3/4
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    fn holdout_removes_edges_and_samples_nonedges() {
        let g = generators::erdos_renyi_gnm(256, 2048, 3);
        let split = holdout_split(&g, 0.2, 7);
        assert!(!split.test_pos.is_empty());
        assert_eq!(split.test_pos.len(), split.test_neg.len());
        assert!(split.train.num_edges() < g.num_edges());
        for &(u, v) in &split.test_pos {
            assert!(g.has_edge(u, v));
            assert!(!split.train.has_edge(u, v), "test edge ({u},{v}) leaked");
        }
        for &(u, v) in &split.test_neg {
            assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let g = generators::ring(32, 2);
        let split = holdout_split(&g, 0.0, 1);
        assert_eq!(split.train.num_edges(), g.num_edges());
        assert!(split.test_pos.is_empty());
    }
}
