//! # lightrw-embed — the downstream consumer: embeddings + link prediction
//!
//! The paper's case study (§6.7, Fig. 18) integrates LightRW into SNAP's
//! link-prediction flow: Node2Vec walks feed a Word2Vec model whose vertex
//! embeddings score candidate edges. This crate supplies that consumer:
//!
//! - [`sgns`] — a skip-gram-with-negative-sampling trainer (the Word2Vec
//!   variant node2vec uses) over walk corpora;
//! - [`vocab`] — unigram statistics and the `count^0.75` negative-sampling
//!   table (an [`lightrw_sampling::AliasTable`] reuse);
//! - [`linkpred`] — edge hold-out splitting, cosine scoring and AUC
//!   evaluation;
//! - [`casestudy`] — the Fig. 18 harness: phase-by-phase time breakdown of
//!   CPU-only link prediction vs the LightRW-accelerated flow.

pub mod casestudy;
pub mod linkpred;
pub mod sgns;
pub mod vocab;

pub use casestudy::{run_case_study, CaseStudyReport, PhaseTimes};
pub use linkpred::{auc, holdout_split, HoldoutSplit};
pub use sgns::{Embeddings, SgnsConfig, SgnsTrainer};
pub use vocab::Vocab;
