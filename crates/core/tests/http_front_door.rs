//! End-to-end tests for the network front door (`lightrw::http`,
//! DESIGN.md §13) over real TCP sockets: job submission with streamed
//! NDJSON paths, exactly-once auditing, pipelined and keep-alive
//! connections, 429 shedding with `Retry-After`, malformed-request
//! rejection, live `/stats`, and graceful shutdown drains.
//!
//! The shutdown latch (`lightrw_baseline::signal`) is process-global,
//! so every test that starts a server takes the [`SERIAL`] lock —
//! otherwise one test's `request_shutdown` would stop another's server.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use lightrw::baseline::signal;
use lightrw::graph::generators;
use lightrw::http::wire::{read_response, Response};
use lightrw::http::{AdmissionConfig, ServeConfig, ServeSummary};
use lightrw::prelude::*;
use lightrw::service::ServiceConfig;

static SERIAL: Mutex<()> = Mutex::new(());

/// Start a front-door server on an ephemeral port over a small RMAT
/// graph with two CPU workers. Returns the bound address and the join
/// handle yielding the final [`ServeSummary`].
fn spawn_server(cfg: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<ServeSummary>) {
    let (addr_tx, addr_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let g = generators::rmat(8, 8, 7);
        let pool = Backend::parse("cpu")
            .unwrap()
            .with_threads(1)
            .unwrap()
            .build_pool(&g, &Uniform, 42, 2);
        // Clear before binding: once the listener exists the test may
        // request shutdown at any time, and that must stick.
        signal::clear_shutdown();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addr_tx.send(listener.local_addr().unwrap()).unwrap();
        lightrw::http::serve(
            listener,
            pool.iter().map(|e| e.as_ref()).collect(),
            &g,
            &cfg,
        )
        .unwrap()
    });
    (
        addr_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
        handle,
    )
}

/// A config that admits everything and drains instantly.
fn open_config() -> ServeConfig {
    ServeConfig {
        service: ServiceConfig {
            quantum: 1024,
            tenant_pending_steps: u64::MAX,
        },
        admission: AdmissionConfig {
            rate_steps_per_s: 1e12,
            burst_steps: 1e12,
            queue_high_water: 1 << 20,
        },
        drain: Duration::ZERO,
        io_timeout: Duration::from_millis(20),
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

fn post_job(stream: &mut TcpStream, body: &str, keep_alive: bool) {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    stream
        .write_all(
            format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\nConnection: {conn}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
}

/// Audit one 200-streamed job response: ascending query ids, one `done`
/// summary whose count matches. Returns `(status, paths)`.
fn audit_stream(resp: &Response) -> (String, usize) {
    assert_eq!(resp.status, 200, "{resp:?}");
    assert!(resp
        .headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v == "chunked"));
    let text = std::str::from_utf8(&resp.body).unwrap();
    let mut next_query = 0usize;
    let mut done = None;
    for line in text.lines() {
        if line.starts_with("{\"event\": \"path\"") {
            assert!(done.is_none(), "path after done: {line}");
            let want = format!("{{\"event\": \"path\", \"query\": {next_query}, ");
            assert!(
                line.starts_with(&want),
                "expected query {next_query}: {line}"
            );
            next_query += 1;
        } else if line.starts_with("{\"event\": \"done\"") {
            let paths_tag = "\"paths\": ";
            let at = line.find(paths_tag).unwrap() + paths_tag.len();
            let digits: String = line[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            let status_tag = "\"status\": \"";
            let s = line.find(status_tag).unwrap() + status_tag.len();
            let status = line[s..].split('"').next().unwrap().to_string();
            done = Some((status, digits.parse::<usize>().unwrap()));
        }
    }
    let (status, paths) = done.expect("stream must end with a done summary");
    assert_eq!(paths, next_query, "done count must match streamed paths");
    (status, paths)
}

fn shutdown_and_join(handle: std::thread::JoinHandle<ServeSummary>) -> ServeSummary {
    signal::request_shutdown();
    let summary = handle.join().unwrap();
    signal::clear_shutdown();
    summary
}

#[test]
fn streams_jobs_exactly_once_with_keepalive_pipelining_and_stats() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (addr, handle) = spawn_server(open_config());

    // Three concurrent single-job connections.
    let submitters: Vec<_> = (0..3)
        .map(|tenant| {
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                post_job(
                    &mut stream,
                    &format!(
                        "{{\"tenant\": {tenant}, \"queries\": 16, \"length\": 8, \
                         \"seed\": {tenant}}}"
                    ),
                    false,
                );
                let resp = read_response(&mut BufReader::new(stream)).unwrap();
                audit_stream(&resp)
            })
        })
        .collect();
    for s in submitters {
        let (status, paths) = s.join().unwrap();
        assert_eq!(status, "completed");
        assert_eq!(paths, 16, "exactly one path per query");
    }

    // Two pipelined POSTs on one keep-alive connection: both bodies are
    // written before either response is read, and the responses come
    // back in order.
    let mut stream = connect(addr);
    post_job(
        &mut stream,
        "{\"tenant\": 7, \"queries\": 4, \"length\": 3}",
        true,
    );
    post_job(
        &mut stream,
        "{\"tenant\": 7, \"queries\": 5, \"length\": 3}",
        true,
    );
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let first = read_response(&mut reader).unwrap();
    assert_eq!(audit_stream(&first), ("completed".into(), 4));
    let second = read_response(&mut reader).unwrap();
    assert_eq!(audit_stream(&second), ("completed".into(), 5));

    // Same keep-alive connection serves /stats too.
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let stats = read_response(&mut reader).unwrap();
    assert_eq!(stats.status, 200);
    let body = std::str::from_utf8(&stats.body).unwrap();
    assert!(body.contains("\"admitted\": 5"), "{body}");
    assert!(body.contains("\"queue_wait_secs\""), "{body}");
    assert!(body.contains("\"exec_secs\""), "{body}");
    assert!(body.contains("\"p99_queue_wait_s\""), "{body}");

    let summary = shutdown_and_join(handle);
    assert_eq!(summary.submitted, 5);
    assert_eq!(summary.admitted, 5);
    assert_eq!(summary.completed, 5);
    assert_eq!(summary.shed, 0);
    assert!(summary.drained_clean);
}

#[test]
fn sheds_with_429_and_retry_after_when_the_bucket_runs_dry() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let mut cfg = open_config();
    // One 16×8 = 128-step job fits the burst; the second does not.
    cfg.admission = AdmissionConfig {
        rate_steps_per_s: 1.0,
        burst_steps: 200.0,
        queue_high_water: 1 << 20,
    };
    let (addr, handle) = spawn_server(cfg);

    let mut stream = connect(addr);
    post_job(
        &mut stream,
        "{\"tenant\": 0, \"queries\": 16, \"length\": 8}",
        true,
    );
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let first = read_response(&mut reader).unwrap();
    assert_eq!(audit_stream(&first).0, "completed");

    post_job(
        &mut stream,
        "{\"tenant\": 0, \"queries\": 16, \"length\": 8}",
        true,
    );
    let second = read_response(&mut reader).unwrap();
    assert_eq!(second.status, 429, "{second:?}");
    let retry: u64 = second.header("retry-after").unwrap().parse().unwrap();
    assert!(retry >= 1, "Retry-After must be a positive back-off");
    let body = std::str::from_utf8(&second.body).unwrap();
    assert!(body.contains("\"reason\": \"tenant_rate\""), "{body}");

    // An independent tenant still gets in.
    post_job(
        &mut stream,
        "{\"tenant\": 1, \"queries\": 16, \"length\": 8}",
        false,
    );
    let third = read_response(&mut reader).unwrap();
    assert_eq!(audit_stream(&third).0, "completed");

    let summary = shutdown_and_join(handle);
    assert_eq!(summary.submitted, 3);
    assert_eq!(summary.admitted, 2);
    assert_eq!(summary.shed, 1);
}

#[test]
fn malformed_requests_get_well_formed_4xx_responses() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (addr, handle) = spawn_server(open_config());

    let check = |raw: &[u8], want_status: u16| {
        let mut stream = connect(addr);
        stream.write_all(raw).unwrap();
        let resp = read_response(&mut BufReader::new(stream)).unwrap();
        assert_eq!(
            resp.status,
            want_status,
            "for {:?}",
            String::from_utf8_lossy(raw)
        );
        let body = std::str::from_utf8(&resp.body).unwrap();
        assert!(body.starts_with("{\"error\": \""), "{body}");
    };
    check(b"NOT A VALID LINE\r\n\r\n", 400);
    check(b"GET / HTTP/2\r\n\r\n", 505);
    check(b"POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400);
    check(
        b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        501,
    );
    check(b"GET /nowhere HTTP/1.1\r\n\r\n", 404);
    check(b"DELETE /jobs HTTP/1.1\r\n\r\n", 405);
    // Valid HTTP, invalid jobspec body.
    check(b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]", 400);
    check(
        b"POST /jobs HTTP/1.1\r\nContent-Length: 27\r\n\r\n{\"queries\": 4, \"length\": 0}",
        400,
    );
    // Truncated body: the connection dies mid-request; the server must
    // not hang. (The 408 response races the close; just verify the
    // server keeps serving afterwards.)
    {
        let mut stream = connect(addr);
        stream
            .write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")
            .unwrap();
        drop(stream);
    }
    let mut stream = connect(addr);
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let resp = read_response(&mut BufReader::new(stream)).unwrap();
    assert_eq!(resp.status, 200, "server must survive malformed traffic");

    let summary = shutdown_and_join(handle);
    assert_eq!(summary.admitted, 0);
}

#[test]
fn shutdown_drains_inflight_jobs_and_streams_their_terminal_summary() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let mut cfg = open_config();
    cfg.service.quantum = 64; // slow the job down per turn
    let (addr, handle) = spawn_server(cfg);

    // A long job: 128 queries × 4096 steps. Request shutdown while it
    // streams; with a zero drain deadline the scheduler cancels it and
    // the client still receives a well-formed terminal summary.
    let client = std::thread::spawn(move || {
        let mut stream = connect(addr);
        post_job(
            &mut stream,
            "{\"tenant\": 0, \"queries\": 128, \"length\": 4096}",
            false,
        );
        let resp = read_response(&mut BufReader::new(stream)).unwrap();
        audit_stream(&resp)
    });
    // Wait until the job is admitted before pulling the plug.
    let mut admitted = false;
    for _ in 0..200 {
        let mut stream = connect(addr);
        stream
            .write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let resp = read_response(&mut BufReader::new(stream)).unwrap();
        let body = std::str::from_utf8(&resp.body).unwrap().to_string();
        if body.contains("\"admitted\": 1") {
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(admitted, "job never reached the scheduler");

    let summary = shutdown_and_join(handle);
    let (status, paths) = client.join().unwrap();
    assert!(
        status == "cancelled" || status == "completed",
        "unexpected terminal status {status}"
    );
    assert!(paths <= 128);
    assert_eq!(summary.submitted, 1);
    assert_eq!(summary.admitted, 1);
    // Whichever way the race went, the server must account for the job.
    assert_eq!(summary.completed + summary.cancelled, 1);
}

#[test]
fn idle_keepalive_connections_do_not_block_shutdown() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (addr, handle) = spawn_server(open_config());

    // Park an idle keep-alive connection (no request at all) and a
    // half-finished one, then shut down: the drain must not wait for
    // either.
    let idle = connect(addr);
    let mut half = connect(addr);
    half.write_all(b"GET /st").unwrap();

    let summary = shutdown_and_join(handle);
    assert_eq!(summary.submitted, 0);
    assert!(summary.drained_clean);
    drop(idle);
    drop(half);
}
