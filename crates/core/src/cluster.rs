//! Multi-board scaling — the paper's §8 future work, modelled.
//!
//! The paper closes by noting that terabyte-scale graphs need multiple
//! FPGA boards and proposes a distributed LightRW. This module models the
//! simplest such deployment faithfully to the single-board architecture:
//! every board holds a full graph replica (the same strategy the paper
//! uses per DRAM channel, Fig. 9) and an even share of the queries; boards
//! never communicate during execution (random walk queries are
//! embarrassingly parallel under full replication), so scaling costs are
//! the per-board PCIe pushes and the straggler board.
//!
//! Since the session refactor (DESIGN.md §6) a board is *any*
//! [`WalkEngine`] — simulated accelerators, CPU engines and the reference
//! oracle can serve side by side in one cluster ([`LightRwCluster::from_engines`]),
//! and the cluster drives all boards as interleaved batched sessions, the
//! way a multiplexing host would. A board's kernel time is its simulated
//! clock when it has a timing model (`model_seconds`) and its measured
//! wall clock otherwise.

use crate::pcie::PcieBreakdown;
use crate::platform::{FpgaPlatform, U250_PLATFORM};
use lightrw_graph::Graph;
use lightrw_hwsim::{LightRwConfig, LightRwSim};
use lightrw_walker::{multiplex_sessions, QuerySet, WalkApp, WalkEngine, WalkResults, WalkSink};

/// Steps each board session executes per multiplexing turn.
const BOARD_BATCH: u64 = 8192;

/// A cluster of LightRW boards with full graph replication; each board is
/// an independent [`WalkEngine`].
pub struct LightRwCluster<'g> {
    graph: &'g Graph,
    boards: Vec<Box<dyn WalkEngine + 'g>>,
    platform: FpgaPlatform,
}

/// Outcome of one board's share of a cluster run.
#[derive(Debug)]
pub struct BoardReport {
    /// The board's engine label.
    pub engine: String,
    /// The board's walk outputs, in its partition's local query order.
    pub results: WalkResults,
    /// Steps the board executed.
    pub steps: u64,
    /// Kernel seconds: simulated clock for modelled engines, measured
    /// wall clock otherwise.
    pub kernel_s: f64,
    /// True when `kernel_s` comes from a timing model.
    pub modelled: bool,
}

/// Outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterReport {
    /// Per-board outcomes, board-major.
    pub boards: Vec<BoardReport>,
    /// Kernel seconds = the straggler board.
    pub kernel_s: f64,
    /// End-to-end seconds including per-board uploads (hosts push over
    /// independent PCIe links in parallel) and the largest download.
    pub end_to_end_s: f64,
    /// Total steps executed across boards.
    pub steps: u64,
}

impl ClusterReport {
    /// Aggregate throughput in steps per second of kernel time.
    pub fn steps_per_sec(&self) -> f64 {
        if self.kernel_s == 0.0 {
            0.0
        } else {
            self.steps as f64 / self.kernel_s
        }
    }
}

impl<'g> LightRwCluster<'g> {
    /// Deploy `boards` simulated boards of configuration `cfg` each, with
    /// per-board derived seeds — the paper-faithful deployment.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: LightRwConfig, boards: usize) -> Self {
        assert!(boards >= 1, "cluster needs at least one board");
        let cfg = cfg.validated();
        let engines = (0..boards)
            .map(|b| {
                let board_cfg = LightRwConfig {
                    seed: cfg.seed ^ (b as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..cfg
                };
                Box::new(LightRwSim::new(graph, app, board_cfg)) as Box<dyn WalkEngine + 'g>
            })
            .collect();
        Self {
            graph,
            boards: engines,
            platform: U250_PLATFORM,
        }
    }

    /// Deploy an explicit set of boards — any mix of backends. Each
    /// board's PCIe upload is modelled from its own
    /// [`WalkEngine::graph_images`] (one image for software engines, one
    /// per DRAM channel for multi-instance simulated accelerators).
    pub fn from_engines(graph: &'g Graph, boards: Vec<Box<dyn WalkEngine + 'g>>) -> Self {
        assert!(!boards.is_empty(), "cluster needs at least one board");
        Self {
            graph,
            boards,
            platform: U250_PLATFORM,
        }
    }

    /// Number of boards.
    pub fn num_boards(&self) -> usize {
        self.boards.len()
    }

    /// The boards as a service worker pool: hand this to
    /// [`lightrw_walker::service::WalkService::new`] to serve concurrent
    /// multi-tenant jobs over the cluster instead of running one
    /// partitioned batch ([`LightRwCluster::run`]). Jobs land on boards
    /// least-loaded-first and advance as weighted-fair interleaved
    /// sessions (DESIGN.md §7).
    pub fn workers(&self) -> Vec<&dyn WalkEngine> {
        self.boards.iter().map(|b| b.as_ref()).collect()
    }

    /// Execute a workload across the cluster: every board runs its
    /// round-robin partition as a batched session, advanced in
    /// interleaved turns until all boards drain.
    pub fn run(&self, queries: &QuerySet) -> ClusterReport {
        let parts = queries.partition(self.boards.len());
        let mut sessions: Vec<_> = self
            .boards
            .iter()
            .zip(&parts)
            .map(|(engine, part)| engine.start_session(part))
            .collect();
        let mut results: Vec<WalkResults> = parts
            .iter()
            .map(|p| WalkResults::with_capacity(p.len(), 8))
            .collect();
        let mut wall = vec![0.0f64; sessions.len()];

        // Interleaved multiplexing: one bounded batch per board per turn,
        // so no board's session monopolizes the host thread.
        let mut sinks: Vec<&mut dyn WalkSink> =
            results.iter_mut().map(|r| r as &mut dyn WalkSink).collect();
        multiplex_sessions(&mut sessions, &mut sinks, BOARD_BATCH, |idx, secs, _| {
            wall[idx] += secs
        });

        let boards: Vec<BoardReport> = sessions
            .iter()
            .zip(results)
            .zip(&wall)
            .zip(&self.boards)
            .map(|(((session, results), &wall_s), engine)| {
                let model = session.model_seconds();
                BoardReport {
                    engine: engine.label(),
                    steps: session.steps_done(),
                    kernel_s: model.unwrap_or(wall_s),
                    modelled: model.is_some(),
                    results,
                }
            })
            .collect();

        let kernel_s = boards.iter().map(|b| b.kernel_s).fold(0.0, f64::max);
        let steps = boards.iter().map(|b| b.steps).sum();
        // Each board's host link moves its own replica + results; links are
        // independent, so the end-to-end critical path is the slowest board.
        let end_to_end_s = boards
            .iter()
            .zip(&self.boards)
            .map(|(b, engine)| {
                PcieBreakdown::model(
                    &self.platform,
                    self.graph.csr_bytes() * engine.graph_images(),
                    b.kernel_s,
                    b.results.result_bytes(),
                )
                .end_to_end_s()
            })
            .fold(0.0, f64::max);
        ClusterReport {
            boards,
            kernel_s,
            end_to_end_s,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_baseline::{BaselineConfig, CpuEngine};
    use lightrw_graph::DatasetProfile;
    use lightrw_walker::path::validate_path;
    use lightrw_walker::{ReferenceEngine, SamplerKind, Uniform};

    #[test]
    fn cluster_scales_kernel_time_down() {
        let g = DatasetProfile::livejournal().stand_in(11, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 10, 5);
        let one = LightRwCluster::new(&g, &Uniform, LightRwConfig::default(), 1).run(&qs);
        let four = LightRwCluster::new(&g, &Uniform, LightRwConfig::default(), 4).run(&qs);
        assert!(
            four.kernel_s < 0.35 * one.kernel_s,
            "4 boards {} vs 1 board {}",
            four.kernel_s,
            one.kernel_s
        );
        assert!(one.steps > 0, "steps recorded");
        assert!(four.steps_per_sec() > one.steps_per_sec() * 2.5);
    }

    #[test]
    fn cluster_covers_all_queries_with_valid_walks() {
        let g = DatasetProfile::youtube().stand_in(9, 7);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 2);
        let rep = LightRwCluster::new(&g, &Uniform, LightRwConfig::default(), 3).run(&qs);
        let total: usize = rep.boards.iter().map(|b| b.results.len()).sum();
        assert_eq!(total, qs.len());
        for board in &rep.boards {
            assert!(board.modelled, "simulated boards report model time");
            for p in board.results.iter() {
                validate_path(&g, &Uniform, p).unwrap();
            }
        }
        assert!(rep.end_to_end_s >= rep.kernel_s);
    }

    #[test]
    fn single_board_matches_plain_accelerator() {
        let g = DatasetProfile::us_patents().stand_in(9, 1);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 9);
        let cluster = LightRwCluster::new(&g, &Uniform, LightRwConfig::default(), 1).run(&qs);
        let plain = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
        // Board 0 uses a derived seed, so walks differ, but cycle accounting
        // structure must agree in magnitude.
        assert_eq!(cluster.boards.len(), 1);
        let ratio = cluster.kernel_s / plain.seconds;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cluster_boards_serve_multi_tenant_jobs() {
        use lightrw_walker::service::{JobSpec, ServiceConfig, WalkService};
        // The §7 serving story: the same boards that run partitioned
        // batches also serve as a WalkService pool — here one simulated
        // board and one CPU board share three tenants' jobs.
        let g = DatasetProfile::youtube().stand_in(9, 6);
        let cpu_cfg = BaselineConfig {
            threads: 2,
            ..Default::default()
        };
        let boards: Vec<Box<dyn WalkEngine + '_>> = vec![
            Box::new(LightRwSim::new(&g, &Uniform, LightRwConfig::default())),
            Box::new(CpuEngine::new(&g, &Uniform, cpu_cfg)),
        ];
        let cluster = LightRwCluster::from_engines(&g, boards);
        let mut service = WalkService::new(cluster.workers(), ServiceConfig::default());
        let qs = QuerySet::n_queries(&g, 60, 6, 3);
        let jobs: Vec<_> = (0..3)
            .map(|t| service.submit(JobSpec::tenant(t), qs.clone()))
            .collect();
        service.run_until_idle();
        let stats = service.stats();
        assert_eq!(stats.completed_jobs, 3);
        assert_eq!(stats.tenants.len(), 3);
        for job in jobs {
            let results = service.take_results(job).unwrap();
            assert_eq!(results.len(), qs.len());
            for p in results.iter() {
                validate_path(&g, &Uniform, p).unwrap();
            }
        }
    }

    #[test]
    fn sharded_boards_contribute_compute_to_straggler_accounting() {
        // Two disjoint 16-cliques with the range cut between them: no
        // walker ever crosses shards, so a transfer-only model would call
        // the board free and straggler accounting would ignore it. The
        // board must still report its lane compute time as kernel time.
        let mut b = lightrw_graph::GraphBuilder::undirected();
        for c in 0..2u32 {
            let base = c * 16;
            for i in 0..16u32 {
                for j in (i + 1)..16 {
                    b = b.edge(base + i, base + j);
                }
            }
        }
        let g = b.build();
        let qs = QuerySet::per_nonisolated_vertex(&g, 8, 4);
        let make_board = || {
            crate::sharded::ShardedEngine::partition(
                &g,
                2,
                lightrw_graph::ShardStrategy::Range,
                &Uniform,
                SamplerKind::InverseTransform,
                5,
            )
        };

        // Pin the scenario: this workload genuinely produces zero
        // hand-offs, yet the session's model clock must not read zero.
        let engine = make_board();
        let mut sink = WalkResults::with_capacity(qs.len(), 9);
        let mut session = engine.start_session(&qs);
        while !session.finished() {
            session.advance(4096, &mut sink);
        }
        let diag = session.diagnostics().unwrap();
        assert!(diag.contains("hand-offs=0"), "{diag}");
        let model = session.model_seconds().unwrap();
        assert!(
            model > 0.0,
            "zero-hand-off sharded board reports no kernel time ({diag})"
        );

        // And the cluster's straggler fold sees that time.
        let cluster = LightRwCluster::from_engines(&g, vec![Box::new(make_board())]);
        let rep = cluster.run(&qs);
        assert!(rep.boards[0].modelled, "sharded boards carry a model clock");
        assert!(
            rep.boards[0].kernel_s > 0.0,
            "sharded board is invisible to straggler accounting"
        );
        assert_eq!(rep.kernel_s, rep.boards[0].kernel_s);
        assert!(rep.end_to_end_s >= rep.kernel_s);
    }

    #[test]
    fn mixed_backend_cluster_serves_any_engine() {
        // The session layer's point: a cluster is no longer sim-only. One
        // simulated board, one CPU board and the reference oracle split a
        // workload three ways and every path still validates.
        let g = DatasetProfile::youtube().stand_in(9, 4);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 8);
        let cpu_cfg = BaselineConfig {
            threads: 2,
            ..Default::default()
        };
        let boards: Vec<Box<dyn WalkEngine + '_>> = vec![
            Box::new(LightRwSim::new(&g, &Uniform, LightRwConfig::default())),
            Box::new(CpuEngine::new(&g, &Uniform, cpu_cfg)),
            Box::new(ReferenceEngine::new(
                &g,
                &Uniform,
                SamplerKind::InverseTransform,
                77,
            )),
        ];
        let cluster = LightRwCluster::from_engines(&g, boards);
        assert_eq!(cluster.num_boards(), 3);
        let rep = cluster.run(&qs);
        let total: usize = rep.boards.iter().map(|b| b.results.len()).sum();
        assert_eq!(total, qs.len());
        assert!(rep.boards[0].modelled, "sim board has a clock model");
        assert!(!rep.boards[1].modelled, "cpu board is wall-clock");
        assert!(!rep.boards[2].modelled, "reference board is wall-clock");
        assert!(rep.kernel_s > 0.0);
        assert!(rep.steps > 0);
        for board in &rep.boards {
            for p in board.results.iter() {
                validate_path(&g, &Uniform, p).unwrap();
            }
        }
        // Labels identify the backends for operators.
        assert!(rep.boards[0].engine.starts_with("sim"));
        assert!(rep.boards[1].engine.starts_with("cpu"));
        assert!(rep.boards[2].engine.starts_with("reference"));
    }
}
