//! Multi-board scaling — the paper's §8 future work, modelled.
//!
//! The paper closes by noting that terabyte-scale graphs need multiple
//! FPGA boards and proposes a distributed LightRW. This module models the
//! simplest such deployment faithfully to the single-board architecture:
//! every board holds a full graph replica (the same strategy the paper
//! uses per DRAM channel, Fig. 9) and an even share of the queries; boards
//! never communicate during execution (random walk queries are
//! embarrassingly parallel under full replication), so scaling costs are
//! the per-board PCIe pushes and the straggler board.

use crate::pcie::PcieBreakdown;
use crate::platform::{FpgaPlatform, U250_PLATFORM};
use lightrw_graph::Graph;
use lightrw_hwsim::{LightRwConfig, LightRwSim, SimReport};
use lightrw_walker::{QuerySet, WalkApp};

/// A cluster of identical LightRW boards with full graph replication.
pub struct LightRwCluster<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: LightRwConfig,
    boards: usize,
    platform: FpgaPlatform,
}

/// Outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterReport {
    /// Per-board simulation outcomes, board-major.
    pub boards: Vec<SimReport>,
    /// Kernel seconds = the straggler board.
    pub kernel_s: f64,
    /// End-to-end seconds including per-board uploads (hosts push over
    /// independent PCIe links in parallel) and the largest download.
    pub end_to_end_s: f64,
    /// Total steps executed across boards.
    pub steps: u64,
}

impl ClusterReport {
    /// Aggregate throughput in steps per second of kernel time.
    pub fn steps_per_sec(&self) -> f64 {
        if self.kernel_s == 0.0 {
            0.0
        } else {
            self.steps as f64 / self.kernel_s
        }
    }
}

impl<'g> LightRwCluster<'g> {
    /// Deploy `boards` boards of configuration `cfg` each.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: LightRwConfig, boards: usize) -> Self {
        assert!(boards >= 1, "cluster needs at least one board");
        Self {
            graph,
            app,
            cfg: cfg.validated(),
            boards,
            platform: U250_PLATFORM,
        }
    }

    /// Execute a workload across the cluster.
    pub fn run(&self, queries: &QuerySet) -> ClusterReport {
        let parts = queries.partition(self.boards);
        let mut boards = Vec::with_capacity(self.boards);
        for (b, part) in parts.iter().enumerate() {
            let cfg = LightRwConfig {
                seed: self.cfg.seed ^ (b as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..self.cfg
            };
            boards.push(LightRwSim::new(self.graph, self.app, cfg).run(part));
        }
        let kernel_s = boards.iter().map(|r| r.seconds).fold(0.0, f64::max);
        let steps = boards.iter().map(|r| r.steps).sum();
        // Each board's host link moves its own replica + results; links are
        // independent, so the end-to-end critical path is the slowest board.
        let end_to_end_s = boards
            .iter()
            .map(|r| {
                PcieBreakdown::model(
                    &self.platform,
                    self.graph.csr_bytes() * self.cfg.instances as u64,
                    r.seconds,
                    r.results.result_bytes(),
                )
                .end_to_end_s()
            })
            .fold(0.0, f64::max);
        ClusterReport {
            boards,
            kernel_s,
            end_to_end_s,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::DatasetProfile;
    use lightrw_walker::path::validate_path;
    use lightrw_walker::Uniform;

    #[test]
    fn cluster_scales_kernel_time_down() {
        let g = DatasetProfile::livejournal().stand_in(11, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 10, 5);
        let one = LightRwCluster::new(&g, &Uniform, LightRwConfig::default(), 1).run(&qs);
        let four = LightRwCluster::new(&g, &Uniform, LightRwConfig::default(), 4).run(&qs);
        assert!(
            four.kernel_s < 0.35 * one.kernel_s,
            "4 boards {} vs 1 board {}",
            four.kernel_s,
            one.kernel_s
        );
        assert!(one.steps > 0, "steps recorded");
        assert!(four.steps_per_sec() > one.steps_per_sec() * 2.5);
    }

    #[test]
    fn cluster_covers_all_queries_with_valid_walks() {
        let g = DatasetProfile::youtube().stand_in(9, 7);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 2);
        let rep = LightRwCluster::new(&g, &Uniform, LightRwConfig::default(), 3).run(&qs);
        let total: usize = rep.boards.iter().map(|b| b.results.len()).sum();
        assert_eq!(total, qs.len());
        for board in &rep.boards {
            for p in board.results.iter() {
                validate_path(&g, &Uniform, p).unwrap();
            }
        }
        assert!(rep.end_to_end_s >= rep.kernel_s);
    }

    #[test]
    fn single_board_matches_plain_accelerator() {
        let g = DatasetProfile::us_patents().stand_in(9, 1);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 9);
        let cluster = LightRwCluster::new(&g, &Uniform, LightRwConfig::default(), 1).run(&qs);
        let plain = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
        // Board 0 uses a derived seed, so walks differ, but cycle accounting
        // structure must agree in magnitude.
        assert_eq!(cluster.boards.len(), 1);
        let ratio = cluster.kernel_s / plain.seconds;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
