//! End-to-end run reports.

use serde::Serialize;

use crate::pcie::PcieBreakdown;
use crate::power::PowerComparison;
use crate::resources::ResourceEstimate;
use lightrw_hwsim::SimReport;

/// Everything one accelerator invocation produces: functional results,
/// simulated kernel timing, and the platform-model derivations.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Kernel simulation outcome (cycles, walks, traffic).
    pub sim: SimReport,
    /// PCIe transfer breakdown (Table 4 inputs).
    pub pcie: PcieBreakdown,
    /// Resource estimate for the configuration (Table 5 inputs).
    pub resources: ResourceEstimate,
}

impl RunReport {
    /// End-to-end seconds including transfers.
    pub fn end_to_end_s(&self) -> f64 {
        self.pcie.end_to_end_s()
    }

    /// Scalar metrics as a JSON value (experiment harness output).
    pub fn metrics(&self) -> Metrics {
        Metrics {
            kernel_seconds: self.sim.seconds,
            end_to_end_seconds: self.end_to_end_s(),
            cycles: self.sim.cycles,
            steps: self.sim.steps,
            steps_per_sec: self.sim.steps_per_sec(),
            dram_bytes: self.sim.dram_total().bytes,
            dram_valid_ratio: self.sim.dram_total().valid_ratio(),
            cache_hit_ratio: self.sim.cache_total().hit_ratio(),
            pcie_fraction: self.pcie.transfer_fraction(),
        }
    }
}

/// Flat, serializable summary of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Metrics {
    /// Simulated kernel seconds.
    pub kernel_seconds: f64,
    /// Kernel + PCIe seconds.
    pub end_to_end_seconds: f64,
    /// Kernel cycles (slowest instance).
    pub cycles: u64,
    /// Steps executed.
    pub steps: u64,
    /// Throughput.
    pub steps_per_sec: f64,
    /// Total DRAM traffic.
    pub dram_bytes: u64,
    /// Useful / transferred bytes.
    pub dram_valid_ratio: f64,
    /// Row-cache hit ratio.
    pub cache_hit_ratio: f64,
    /// PCIe share of end-to-end time.
    pub pcie_fraction: f64,
}

/// A labelled comparison row used by the speedup experiments (Fig. 14).
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// Dataset name.
    pub dataset: String,
    /// Application name.
    pub app: String,
    /// Baseline (ThunderRW-like) seconds, measured wall-clock.
    pub baseline_seconds: f64,
    /// Baseline with parallel WRS on CPU, measured wall-clock.
    pub baseline_pwrs_seconds: f64,
    /// LightRW end-to-end seconds (simulated kernel + modelled PCIe).
    pub lightrw_seconds: f64,
    /// baseline / lightrw.
    pub speedup: f64,
    /// Power comparison at these runtimes.
    pub power: PowerComparison,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::U250_PLATFORM;
    use lightrw_graph::generators;
    use lightrw_hwsim::{LightRwConfig, LightRwSim};
    use lightrw_walker::{QuerySet, Uniform};

    #[test]
    fn metrics_are_consistent_and_serializable() {
        let g = generators::rmat_dataset(8, 1);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 1);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
        let pcie = crate::pcie::PcieBreakdown::model(
            &U250_PLATFORM,
            g.csr_bytes(),
            sim.seconds,
            sim.results.result_bytes(),
        );
        let resources =
            crate::resources::estimate(&LightRwConfig::default(), crate::platform::AppKind::Other);
        let report = RunReport {
            sim,
            pcie,
            resources,
        };
        let m = report.metrics();
        assert!(m.end_to_end_seconds >= m.kernel_seconds);
        assert!(m.steps_per_sec > 0.0);
        assert!((0.0..=1.0).contains(&m.dram_valid_ratio));
        assert!((0.0..=1.0).contains(&m.cache_hit_ratio));
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("steps_per_sec"));
    }
}
