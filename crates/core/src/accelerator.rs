//! The top-level accelerator façade: what the paper's "LightRW controller"
//! on the host does (§6.1.5) — push the CSR image over PCIe, invoke the
//! kernel, pull results back.

use crate::pcie::PcieBreakdown;
use crate::platform::{AppKind, FpgaPlatform, U250_PLATFORM};
use crate::report::RunReport;
use crate::resources;
use lightrw_graph::Graph;
use lightrw_hwsim::{LightRwConfig, LightRwSim};
use lightrw_walker::engine::{CountingSink, WalkSession, WalkSink};
use lightrw_walker::{QuerySet, WalkApp, WalkResults};

/// Steps per session batch when the host streams results out as the
/// kernel runs.
const STREAM_BATCH: u64 = 8192;

/// A configured LightRW deployment over a graph.
pub struct LightRw<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: LightRwConfig,
    platform: FpgaPlatform,
}

impl<'g> LightRw<'g> {
    /// Deploy `app` over `graph` on the default (U250) platform model.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: LightRwConfig) -> Self {
        Self {
            graph,
            app,
            cfg: cfg.validated(),
            platform: U250_PLATFORM,
        }
    }

    /// Override the platform model.
    pub fn on_platform(mut self, platform: FpgaPlatform) -> Self {
        self.platform = platform;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &LightRwConfig {
        &self.cfg
    }

    /// The simulated board as an engine value — dispatchable anywhere a
    /// `&dyn WalkEngine` is accepted (the cluster layer, the CLI, SGNS
    /// streaming training).
    pub fn engine(&self) -> LightRwSim<'g> {
        LightRwSim::new(self.graph, self.app, self.cfg)
    }

    /// Execute a workload end to end: modelled upload, simulated kernel,
    /// modelled download.
    pub fn run(&self, queries: &QuerySet) -> RunReport {
        let sim = self.engine().run(queries);
        self.finish_report(queries, sim.results.result_bytes(), sim)
    }

    /// Execute a workload end to end while **streaming** finished walks
    /// into `sink` as the kernel produces them, instead of materializing
    /// a result set — the session contract of DESIGN.md §6 applied to the
    /// host façade. The returned report's `sim.results` is empty (the
    /// paths went to the sink); the PCIe download is modelled from the
    /// bytes actually streamed, so it matches [`LightRw::run`] on the
    /// same workload exactly.
    pub fn run_streaming(&self, queries: &QuerySet, sink: &mut dyn WalkSink) -> RunReport {
        let engine = self.engine();
        let mut session = engine.session(queries);
        let mut counted = CountingTee {
            inner: sink,
            counter: CountingSink::default(),
        };
        while !session.finished() {
            session.advance(STREAM_BATCH, &mut counted);
        }
        let download = counted.counter.bytes;
        let sim = session.into_report(WalkResults::new());
        self.finish_report(queries, download, sim)
    }

    fn finish_report(
        &self,
        queries: &QuerySet,
        download: u64,
        sim: lightrw_hwsim::SimReport,
    ) -> RunReport {
        // Each instance keeps a private graph copy (paper §6.1.5), but the
        // host uploads the image once per channel over the same link.
        let upload = self.graph.csr_bytes() * self.cfg.instances as u64 + queries.len() as u64 * 16; // query descriptors
        let pcie = PcieBreakdown::model(&self.platform, upload, sim.seconds, download);
        let resources = resources::estimate(&self.cfg, AppKind::of(self.app));
        RunReport {
            sim,
            pcie,
            resources,
        }
    }
}

/// Forwards every path to the caller's sink while counting the download
/// bytes the PCIe model charges.
struct CountingTee<'a> {
    inner: &'a mut dyn WalkSink,
    counter: CountingSink,
}

impl WalkSink for CountingTee<'_> {
    fn emit(&mut self, query_id: u32, path: &[lightrw_graph::VertexId]) {
        self.counter.emit(query_id, path);
        self.inner.emit(query_id, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::DatasetProfile;
    use lightrw_walker::path::validate_path;
    use lightrw_walker::{MetaPath, Node2Vec, QuerySet};

    #[test]
    fn end_to_end_run_produces_everything() {
        let g = DatasetProfile::youtube().stand_in(10, 1);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 2);
        let accel = LightRw::new(&g, &mp, LightRwConfig::default());
        let report = accel.run(&qs);
        assert_eq!(report.sim.results.len(), qs.len());
        for p in report.sim.results.iter() {
            validate_path(&g, &mp, p).unwrap();
        }
        assert!(report.pcie.upload_s > 0.0);
        assert!(report.end_to_end_s() > report.sim.seconds);
        assert!(crate::resources::fits_u250(&report.resources));
    }

    #[test]
    fn streaming_run_matches_collected_run() {
        let g = DatasetProfile::youtube().stand_in(9, 6);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 4);
        let accel = LightRw::new(&g, &mp, LightRwConfig::default());
        let collected = accel.run(&qs);
        let mut streamed = lightrw_walker::WalkResults::new();
        let report = accel.run_streaming(&qs, &mut streamed);
        // Same walks, same kernel time, same modelled PCIe phases.
        assert_eq!(streamed, collected.sim.results);
        assert!(report.sim.results.is_empty(), "paths went to the sink");
        assert_eq!(report.sim.cycles, collected.sim.cycles);
        assert_eq!(report.pcie.download_s, collected.pcie.download_s);
        assert_eq!(report.pcie.upload_s, collected.pcie.upload_s);
    }

    #[test]
    fn node2vec_amortizes_pcie_better_than_metapath() {
        // Table 4's core contrast on the same graph.
        let g = DatasetProfile::livejournal().stand_in(11, 2);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let nv = Node2Vec::paper_params();
        let qs_short = QuerySet::per_nonisolated_vertex(&g, 5, 3);
        let qs_long = QuerySet::per_nonisolated_vertex(&g, 80, 3);
        let frac_mp = LightRw::new(&g, &mp, LightRwConfig::default())
            .run(&qs_short)
            .pcie
            .transfer_fraction();
        let frac_nv = LightRw::new(&g, &nv, LightRwConfig::default())
            .run(&qs_long)
            .pcie
            .transfer_fraction();
        assert!(
            frac_mp > 3.0 * frac_nv,
            "MetaPath {frac_mp:.4} vs Node2Vec {frac_nv:.4}"
        );
    }
}
