//! The top-level accelerator façade: what the paper's "LightRW controller"
//! on the host does (§6.1.5) — push the CSR image over PCIe, invoke the
//! kernel, pull results back.

use crate::pcie::PcieBreakdown;
use crate::platform::{AppKind, FpgaPlatform, U250_PLATFORM};
use crate::report::RunReport;
use crate::resources;
use lightrw_graph::Graph;
use lightrw_hwsim::{LightRwConfig, LightRwSim};
use lightrw_walker::{QuerySet, WalkApp};

/// A configured LightRW deployment over a graph.
pub struct LightRw<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: LightRwConfig,
    platform: FpgaPlatform,
}

impl<'g> LightRw<'g> {
    /// Deploy `app` over `graph` on the default (U250) platform model.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: LightRwConfig) -> Self {
        Self {
            graph,
            app,
            cfg: cfg.validated(),
            platform: U250_PLATFORM,
        }
    }

    /// Override the platform model.
    pub fn on_platform(mut self, platform: FpgaPlatform) -> Self {
        self.platform = platform;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &LightRwConfig {
        &self.cfg
    }

    /// Execute a workload end to end: modelled upload, simulated kernel,
    /// modelled download.
    pub fn run(&self, queries: &QuerySet) -> RunReport {
        let sim = LightRwSim::new(self.graph, self.app, self.cfg).run(queries);
        // Each instance keeps a private graph copy (paper §6.1.5), but the
        // host uploads the image once per channel over the same link.
        let upload = self.graph.csr_bytes() * self.cfg.instances as u64 + queries.len() as u64 * 16; // query descriptors
        let download = sim.results.result_bytes();
        let pcie = PcieBreakdown::model(&self.platform, upload, sim.seconds, download);
        let resources = resources::estimate(&self.cfg, AppKind::of(self.app));
        RunReport {
            sim,
            pcie,
            resources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::DatasetProfile;
    use lightrw_walker::path::validate_path;
    use lightrw_walker::{MetaPath, Node2Vec, QuerySet};

    #[test]
    fn end_to_end_run_produces_everything() {
        let g = DatasetProfile::youtube().stand_in(10, 1);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 2);
        let accel = LightRw::new(&g, &mp, LightRwConfig::default());
        let report = accel.run(&qs);
        assert_eq!(report.sim.results.len(), qs.len());
        for p in report.sim.results.iter() {
            validate_path(&g, &mp, p).unwrap();
        }
        assert!(report.pcie.upload_s > 0.0);
        assert!(report.end_to_end_s() > report.sim.seconds);
        assert!(crate::resources::fits_u250(&report.resources));
    }

    #[test]
    fn node2vec_amortizes_pcie_better_than_metapath() {
        // Table 4's core contrast on the same graph.
        let g = DatasetProfile::livejournal().stand_in(11, 2);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let nv = Node2Vec::paper_params();
        let qs_short = QuerySet::per_nonisolated_vertex(&g, 5, 3);
        let qs_long = QuerySet::per_nonisolated_vertex(&g, 80, 3);
        let frac_mp = LightRw::new(&g, &mp, LightRwConfig::default())
            .run(&qs_short)
            .pcie
            .transfer_fraction();
        let frac_nv = LightRw::new(&g, &nv, LightRwConfig::default())
            .run(&qs_long)
            .pcie
            .transfer_fraction();
        assert!(
            frac_mp > 3.0 * frac_nv,
            "MetaPath {frac_mp:.4} vs Node2Vec {frac_nv:.4}"
        );
    }
}
