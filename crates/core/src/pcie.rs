//! PCIe transfer model — the Table 4 analysis.
//!
//! End-to-end accelerator time = graph DMA in + kernel execution + result
//! DMA out (paper §6.1.5's execution flow). The paper shows transfer is
//! 0.07%–33.5% of end-to-end time: large for MetaPath (short walks, so
//! little kernel time to amortize the one-time graph push) and negligible
//! for Node2Vec (80-step walks).

use serde::Serialize;

use crate::platform::FpgaPlatform;

/// Transfer/Execution breakdown of one accelerator invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PcieBreakdown {
    /// Seconds pushing the CSR image (and queries) to board DRAM.
    pub upload_s: f64,
    /// Seconds of kernel execution (from the simulator).
    pub kernel_s: f64,
    /// Seconds pulling result paths back to the host.
    pub download_s: f64,
}

impl PcieBreakdown {
    /// Model a run: `upload_bytes` in, `kernel_s` of execution,
    /// `download_bytes` out.
    pub fn model(
        platform: &FpgaPlatform,
        upload_bytes: u64,
        kernel_s: f64,
        download_bytes: u64,
    ) -> Self {
        let xfer = |bytes: u64| platform.pcie_latency_s + bytes as f64 / platform.pcie_bandwidth;
        Self {
            upload_s: xfer(upload_bytes),
            kernel_s,
            download_s: xfer(download_bytes),
        }
    }

    /// Total end-to-end seconds.
    pub fn end_to_end_s(&self) -> f64 {
        self.upload_s + self.kernel_s + self.download_s
    }

    /// The Table 4 metric: PCIe share of end-to-end time, in `[0,1]`.
    pub fn transfer_fraction(&self) -> f64 {
        let total = self.end_to_end_s();
        if total == 0.0 {
            0.0
        } else {
            (self.upload_s + self.download_s) / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::U250_PLATFORM;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let a = PcieBreakdown::model(&U250_PLATFORM, 1 << 20, 1.0, 0);
        let b = PcieBreakdown::model(&U250_PLATFORM, 1 << 30, 1.0, 0);
        assert!(b.upload_s > a.upload_s);
        // 1 GiB at 16 GB/s ≈ 67 ms.
        assert!((b.upload_s - (30e-6 + (1u64 << 30) as f64 / 16e9)).abs() < 1e-9);
    }

    #[test]
    fn long_kernels_amortize_transfer() {
        // The Node2Vec-vs-MetaPath contrast of Table 4: same graph, longer
        // kernel → smaller transfer fraction.
        let short = PcieBreakdown::model(&U250_PLATFORM, 1 << 28, 0.050, 1 << 24);
        let long = PcieBreakdown::model(&U250_PLATFORM, 1 << 28, 5.0, 1 << 26);
        assert!(
            short.transfer_fraction() > 0.2,
            "{}",
            short.transfer_fraction()
        );
        assert!(
            long.transfer_fraction() < 0.02,
            "{}",
            long.transfer_fraction()
        );
    }

    #[test]
    fn end_to_end_adds_up() {
        let b = PcieBreakdown::model(&U250_PLATFORM, 1000, 0.5, 1000);
        assert!((b.end_to_end_s() - (b.upload_s + 0.5 + b.download_s)).abs() < 1e-15);
        assert!(b.transfer_fraction() > 0.0 && b.transfer_fraction() < 1.0);
    }

    #[test]
    fn zero_everything_is_zero_fraction() {
        let b = PcieBreakdown {
            upload_s: 0.0,
            kernel_s: 0.0,
            download_s: 0.0,
        };
        assert_eq!(b.transfer_fraction(), 0.0);
    }
}
