//! Backend selection: construct any walk engine behind `&dyn WalkEngine`.
//!
//! The host layers (CLI, cluster, serving code) dispatch over the
//! engine-agnostic session trait of DESIGN.md §6; this module is the one
//! place that knows how to turn a backend name into a concrete engine —
//! the reference oracle, the ThunderRW-like CPU engine, or the simulated
//! accelerator.

use lightrw_baseline::{BaselineConfig, CpuEngine};
use lightrw_graph::{Graph, ShardStrategy};
use lightrw_hwsim::{LightRwConfig, LightRwSim};
use lightrw_walker::{ReferenceEngine, SamplerKind, WalkApp, WalkEngine};

use crate::sharded::ShardedEngine;

/// A walk execution backend, selectable by name (the CLI's `--engine`
/// flag) or constructed programmatically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// The sequential reference oracle (`lightrw_walker::ReferenceEngine`).
    Reference {
        /// Per-step weighted sampling method.
        sampler: SamplerKind,
    },
    /// The multi-threaded CPU engine (`lightrw_baseline::CpuEngine`).
    Cpu {
        /// Worker threads; 0 = one per core. Resolved by the engine's
        /// `LanePlan` (the DESIGN.md §9 double clamp), so the CLI and a
        /// service pool built from the same spec agree on worker counts.
        threads: usize,
        /// Per-step weighted sampling method.
        sampler: SamplerKind,
    },
    /// The simulated accelerator (`lightrw_hwsim::LightRwSim`).
    Sim {
        /// Board configuration (instances, k, cache, burst, ...).
        cfg: LightRwConfig,
    },
    /// The partitioned engine (`crate::sharded::ShardedEngine`): one
    /// step lane per shard, walker hand-offs at shard boundaries.
    Sharded {
        /// Shard count (`>= 1`; 1 degenerates to the reference path).
        shards: usize,
        /// How vertices are assigned to shards.
        strategy: ShardStrategy,
        /// Per-step weighted sampling method.
        sampler: SamplerKind,
        /// Hand-off records coalesced per shard pair before a flush.
        flush_budget: usize,
        /// Executor threads: 1 = the sequential interleave, 0 = one
        /// pinned executor per shard, n = min(n, shards) executors.
        shard_threads: usize,
    },
}

impl Backend {
    /// Parse a backend name: `sim`, `cpu`, `reference` or `sharded`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "sim" => Ok(Self::Sim {
                cfg: LightRwConfig::default(),
            }),
            "cpu" => Ok(Self::Cpu {
                threads: 0,
                sampler: SamplerKind::InverseTransform,
            }),
            "reference" => Ok(Self::Reference {
                sampler: SamplerKind::InverseTransform,
            }),
            "sharded" => Ok(Self::Sharded {
                shards: 2,
                strategy: ShardStrategy::Range,
                sampler: SamplerKind::InverseTransform,
                flush_budget: ShardedEngine::DEFAULT_FLUSH_BUDGET,
                shard_threads: 1,
            }),
            other => Err(format!(
                "unknown --engine {other:?} (expected sim, cpu, reference or sharded)"
            )),
        }
    }

    /// Parse a sampler name (the CLI's `--sampler` flag).
    pub fn parse_sampler(name: &str) -> Result<SamplerKind, String> {
        match name {
            "inverse-transform" | "it" => Ok(SamplerKind::InverseTransform),
            "alias" => Ok(SamplerKind::Alias),
            "sequential-wrs" => Ok(SamplerKind::SequentialWrs),
            "pwrs" | "parallel-wrs" => Ok(SamplerKind::ParallelWrs { k: 16 }),
            "rejection" => Ok(SamplerKind::Rejection),
            "a-expj" | "aexpj" => Ok(SamplerKind::AExpJ),
            other => Err(format!(
                "unknown --sampler {other:?} (expected inverse-transform, \
                 alias, sequential-wrs, pwrs, rejection or a-expj)"
            )),
        }
    }

    /// Set the CPU worker thread count. Errors for backends that have no
    /// threads knob: the sim scales via `instances`, the reference engine
    /// is sequential by design.
    pub fn with_threads(self, threads: usize) -> Result<Self, String> {
        match self {
            Self::Cpu { sampler, .. } => Ok(Self::Cpu { threads, sampler }),
            Self::Reference { .. } => {
                Err("--threads only applies to --engine cpu (reference is sequential)".into())
            }
            Self::Sim { .. } => {
                Err("--threads only applies to --engine cpu (the sim scales via instances)".into())
            }
            Self::Sharded { .. } => {
                Err("--threads only applies to --engine cpu (sharded scales via --shards)".into())
            }
        }
    }

    /// Set the shard count (and optionally the partition strategy /
    /// flush budget) of a sharded backend. Errors for every other
    /// backend so `--shards` on the wrong engine is loud.
    pub fn with_shards(
        self,
        shards: usize,
        strategy: ShardStrategy,
        flush_budget: usize,
    ) -> Result<Self, String> {
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        match self {
            Self::Sharded {
                sampler,
                shard_threads,
                ..
            } => Ok(Self::Sharded {
                shards,
                strategy,
                sampler,
                flush_budget: flush_budget.max(1),
                shard_threads,
            }),
            _ => Err("--shards only applies to --engine sharded".into()),
        }
    }

    /// Set the executor thread count of a sharded backend (1 = the
    /// deterministic sequential interleave, 0 = one pinned executor per
    /// shard). Errors for every other backend so `--shard-threads` on
    /// the wrong engine is loud.
    pub fn with_shard_threads(self, shard_threads: usize) -> Result<Self, String> {
        match self {
            Self::Sharded {
                shards,
                strategy,
                sampler,
                flush_budget,
                ..
            } => Ok(Self::Sharded {
                shards,
                strategy,
                sampler,
                flush_budget,
                shard_threads,
            }),
            _ => Err("--shard-threads only applies to --engine sharded".into()),
        }
    }

    /// Swap the per-step sampling method. On the sim this is a
    /// *functional* override (the timing model still prices the WRS
    /// datapath — see `LightRwConfig::sampler`).
    pub fn with_sampler(self, sampler: SamplerKind) -> Self {
        match self {
            Self::Reference { .. } => Self::Reference { sampler },
            Self::Cpu { threads, .. } => Self::Cpu { threads, sampler },
            Self::Sim { cfg } => Self::Sim {
                cfg: LightRwConfig {
                    sampler: Some(sampler),
                    ..cfg
                },
            },
            Self::Sharded {
                shards,
                strategy,
                flush_budget,
                shard_threads,
                ..
            } => Self::Sharded {
                shards,
                strategy,
                sampler,
                flush_budget,
                shard_threads,
            },
        }
    }

    /// Build the engine for `app` on `graph`, seeding every backend from
    /// the same `seed` namespace.
    pub fn build<'g>(
        &self,
        graph: &'g Graph,
        app: &'g dyn WalkApp,
        seed: u64,
    ) -> Box<dyn WalkEngine + 'g> {
        match *self {
            Self::Reference { sampler } => {
                Box::new(ReferenceEngine::new(graph, app, sampler, seed))
            }
            Self::Cpu { threads, sampler } => Box::new(CpuEngine::new(
                graph,
                app,
                BaselineConfig {
                    threads,
                    sampler,
                    seed,
                },
            )),
            Self::Sim { cfg } => {
                Box::new(LightRwSim::new(graph, app, LightRwConfig { seed, ..cfg }))
            }
            Self::Sharded {
                shards,
                strategy,
                sampler,
                flush_budget,
                shard_threads,
            } => Box::new(
                ShardedEngine::partition(graph, shards, strategy, app, sampler, seed)
                    .with_flush_budget(flush_budget)
                    .with_shard_threads(shard_threads),
            ),
        }
    }

    /// Build a pool of `workers` independent engines of this backend —
    /// the worker set a `lightrw_walker::service::WalkService` schedules
    /// over. Each worker gets a seed derived from `seed` (the same
    /// derivation the multi-board cluster uses), so their walk streams
    /// are decorrelated while the pool as a whole stays reproducible.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn build_pool<'g>(
        &self,
        graph: &'g Graph,
        app: &'g dyn WalkApp,
        seed: u64,
        workers: usize,
    ) -> Vec<Box<dyn WalkEngine + 'g>> {
        assert!(workers >= 1, "a service pool needs at least one worker");
        (0..workers)
            .map(|w| {
                let worker_seed = seed ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                self.build(graph, app, worker_seed)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::generators;
    use lightrw_walker::path::validate_path;
    use lightrw_walker::{QuerySet, Uniform, WalkEngineExt};

    #[test]
    fn parse_covers_all_backends_and_rejects_junk() {
        assert!(matches!(Backend::parse("sim"), Ok(Backend::Sim { .. })));
        assert!(matches!(
            Backend::parse("cpu"),
            Ok(Backend::Cpu { threads: 0, .. })
        ));
        assert!(matches!(
            Backend::parse("reference"),
            Ok(Backend::Reference { .. })
        ));
        assert!(matches!(
            Backend::parse("sharded"),
            Ok(Backend::Sharded { shards: 2, .. })
        ));
        assert!(Backend::parse("fpga").unwrap_err().contains("--engine"));
        // The shards knob reshapes sharded backends and rejects the rest.
        let b = Backend::parse("sharded")
            .unwrap()
            .with_shards(4, ShardStrategy::Fennel, 16)
            .unwrap();
        assert!(matches!(
            b,
            Backend::Sharded {
                shards: 4,
                strategy: ShardStrategy::Fennel,
                flush_budget: 16,
                ..
            }
        ));
        assert!(Backend::parse("cpu")
            .unwrap()
            .with_shards(2, ShardStrategy::Range, 1)
            .unwrap_err()
            .contains("--shards"));
        assert!(Backend::parse("sharded")
            .unwrap()
            .with_shards(0, ShardStrategy::Range, 1)
            .unwrap_err()
            .contains("--shards"));
    }

    #[test]
    fn shard_threads_knob_applies_to_sharded_only() {
        let b = Backend::parse("sharded")
            .unwrap()
            .with_shard_threads(2)
            .unwrap();
        assert!(matches!(
            b,
            Backend::Sharded {
                shard_threads: 2,
                ..
            }
        ));
        // The knob survives a later with_shards / with_sampler reshape.
        let b = b
            .with_shards(4, ShardStrategy::Walk, 8)
            .unwrap()
            .with_sampler(SamplerKind::Alias);
        assert!(matches!(
            b,
            Backend::Sharded {
                shards: 4,
                strategy: ShardStrategy::Walk,
                shard_threads: 2,
                ..
            }
        ));
        for name in ["sim", "reference", "cpu"] {
            let err = Backend::parse(name)
                .unwrap()
                .with_shard_threads(2)
                .unwrap_err();
            assert!(err.contains("--shard-threads"), "{name}: {err}");
        }
    }

    #[test]
    fn parallel_sharded_backend_builds_working_engines() {
        let g = generators::rmat_dataset(7, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 1);
        let sequential = Backend::parse("sharded")
            .unwrap()
            .build(&g, &Uniform, 9)
            .run_collected(&qs);
        let parallel = Backend::parse("sharded")
            .unwrap()
            .with_shard_threads(2)
            .unwrap()
            .build(&g, &Uniform, 9)
            .run_collected(&qs);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn threads_knob_applies_to_cpu_only() {
        let cpu = Backend::parse("cpu").unwrap().with_threads(3).unwrap();
        assert!(matches!(cpu, Backend::Cpu { threads: 3, .. }));
        for name in ["sim", "reference", "sharded"] {
            let err = Backend::parse(name).unwrap().with_threads(3).unwrap_err();
            assert!(err.contains("--threads"), "{name}: {err}");
        }
    }

    #[test]
    fn sampler_knob_applies_to_every_backend() {
        let kind = Backend::parse_sampler("rejection").unwrap();
        assert_eq!(kind, SamplerKind::Rejection);
        assert!(Backend::parse_sampler("dice")
            .unwrap_err()
            .contains("--sampler"));
        match Backend::parse("cpu").unwrap().with_sampler(kind) {
            Backend::Cpu { sampler, .. } => assert_eq!(sampler, SamplerKind::Rejection),
            other => panic!("{other:?}"),
        }
        match Backend::parse("reference").unwrap().with_sampler(kind) {
            Backend::Reference { sampler } => assert_eq!(sampler, SamplerKind::Rejection),
            other => panic!("{other:?}"),
        }
        match Backend::parse("sim").unwrap().with_sampler(kind) {
            Backend::Sim { cfg } => assert_eq!(cfg.sampler, Some(SamplerKind::Rejection)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejection_backends_produce_valid_walks() {
        let g = generators::rmat_dataset(7, 6);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 2);
        let nv = lightrw_walker::Node2Vec::paper_params();
        for name in ["sim", "cpu", "reference", "sharded"] {
            let backend = Backend::parse(name)
                .unwrap()
                .with_sampler(SamplerKind::Rejection);
            let results = backend.build(&g, &nv, 5).run_collected(&qs);
            assert_eq!(results.len(), qs.len(), "{name}");
            for p in results.iter() {
                validate_path(&g, &nv, p).unwrap();
            }
        }
    }

    #[test]
    fn pools_build_decorrelated_workers_for_every_backend() {
        let g = generators::rmat_dataset(7, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 2);
        for name in ["sim", "cpu", "reference", "sharded"] {
            let pool = Backend::parse(name).unwrap().build_pool(&g, &Uniform, 3, 3);
            assert_eq!(pool.len(), 3, "{name}");
            let runs: Vec<_> = pool.iter().map(|e| e.run_collected(&qs)).collect();
            for r in &runs {
                assert_eq!(r.len(), qs.len(), "{name}");
            }
            // Derived seeds: distinct workers sample distinct walks.
            assert_ne!(runs[0], runs[1], "{name}: workers share a seed");
        }
    }

    #[test]
    fn pool_workers_serve_a_walk_service() {
        use lightrw_walker::service::{JobSpec, ServiceConfig, WalkService};
        let g = generators::rmat_dataset(7, 8);
        let pool = Backend::parse("reference")
            .unwrap()
            .build_pool(&g, &Uniform, 11, 2);
        let workers: Vec<&dyn WalkEngine> = pool.iter().map(|e| e.as_ref()).collect();
        let mut service = WalkService::new(workers, ServiceConfig::default());
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 4);
        let a = service.submit(JobSpec::tenant(0), qs.clone());
        let b = service.submit(JobSpec::tenant(1), qs.clone());
        service.run_until_idle();
        for job in [a, b] {
            let results = service.take_results(job).unwrap();
            assert_eq!(results.len(), qs.len());
            for p in results.iter() {
                validate_path(&g, &Uniform, p).unwrap();
            }
        }
    }

    #[test]
    fn pool_workers_run_program_query_sets() {
        // Programs ride inside the QuerySet, so every pooled backend
        // executes them through the same object-safe seam: a PPR job must
        // respect its step cap and record teleports as start-vertex
        // reappearances; a completed fixed job stays exact.
        use lightrw_walker::service::{JobSpec, ServiceConfig, WalkService};
        use lightrw_walker::WalkProgram;
        let g = generators::rmat_dataset(7, 4);
        for name in ["sim", "cpu", "reference", "sharded"] {
            let pool = Backend::parse(name).unwrap().build_pool(&g, &Uniform, 5, 2);
            let workers: Vec<&dyn WalkEngine> = pool.iter().map(|e| e.as_ref()).collect();
            let mut service = WalkService::new(workers, ServiceConfig::default());
            let ppr = QuerySet::n_queries(&g, 24, 16, 3).with_program(WalkProgram::ppr(0.3, 16));
            let fixed = QuerySet::n_queries(&g, 24, 16, 3);
            let a = service.submit(JobSpec::tenant(0), ppr.clone());
            let b = service.submit(JobSpec::tenant(1), fixed);
            service.run_until_idle();
            let ppr_results = service.take_results(a).unwrap();
            assert_eq!(ppr_results.len(), ppr.len(), "{name}");
            for (q, p) in ppr.queries().iter().zip(ppr_results.iter()) {
                assert!(p.len() <= 17, "{name}: cap exceeded");
                assert_eq!(p[0], q.start, "{name}");
            }
            assert_eq!(service.take_results(b).unwrap().len(), 24, "{name}");
        }
    }

    #[test]
    fn every_backend_builds_a_working_engine() {
        let g = generators::rmat_dataset(7, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 1);
        for name in ["sim", "cpu", "reference", "sharded"] {
            let backend = Backend::parse(name).unwrap();
            let engine = backend.build(&g, &Uniform, 9);
            let results = engine.run_collected(&qs);
            assert_eq!(results.len(), qs.len(), "{name}");
            for p in results.iter() {
                validate_path(&g, &Uniform, p).unwrap();
            }
        }
    }
}
