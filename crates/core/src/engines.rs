//! Backend selection: construct any walk engine behind `&dyn WalkEngine`.
//!
//! The host layers (CLI, cluster, serving code) dispatch over the
//! engine-agnostic session trait of DESIGN.md §6; this module is the one
//! place that knows how to turn a backend name into a concrete engine —
//! the reference oracle, the ThunderRW-like CPU engine, or the simulated
//! accelerator.

use lightrw_baseline::{BaselineConfig, CpuEngine};
use lightrw_graph::Graph;
use lightrw_hwsim::{LightRwConfig, LightRwSim};
use lightrw_walker::{ReferenceEngine, SamplerKind, WalkApp, WalkEngine};

/// A walk execution backend, selectable by name (the CLI's `--engine`
/// flag) or constructed programmatically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// The sequential reference oracle (`lightrw_walker::ReferenceEngine`).
    Reference {
        /// Per-step weighted sampling method.
        sampler: SamplerKind,
    },
    /// The multi-threaded CPU engine (`lightrw_baseline::CpuEngine`).
    Cpu {
        /// Worker threads; 0 = one per core.
        threads: usize,
    },
    /// The simulated accelerator (`lightrw_hwsim::LightRwSim`).
    Sim {
        /// Board configuration (instances, k, cache, burst, ...).
        cfg: LightRwConfig,
    },
}

impl Backend {
    /// Parse a backend name: `sim`, `cpu` or `reference`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "sim" => Ok(Self::Sim {
                cfg: LightRwConfig::default(),
            }),
            "cpu" => Ok(Self::Cpu { threads: 0 }),
            "reference" => Ok(Self::Reference {
                sampler: SamplerKind::InverseTransform,
            }),
            other => Err(format!(
                "unknown --engine {other:?} (expected sim, cpu or reference)"
            )),
        }
    }

    /// Build the engine for `app` on `graph`, seeding every backend from
    /// the same `seed` namespace.
    pub fn build<'g>(
        &self,
        graph: &'g Graph,
        app: &'g dyn WalkApp,
        seed: u64,
    ) -> Box<dyn WalkEngine + 'g> {
        match *self {
            Self::Reference { sampler } => {
                Box::new(ReferenceEngine::new(graph, app, sampler, seed))
            }
            Self::Cpu { threads } => Box::new(CpuEngine::new(
                graph,
                app,
                BaselineConfig {
                    threads,
                    seed,
                    ..Default::default()
                },
            )),
            Self::Sim { cfg } => {
                Box::new(LightRwSim::new(graph, app, LightRwConfig { seed, ..cfg }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::generators;
    use lightrw_walker::path::validate_path;
    use lightrw_walker::{QuerySet, Uniform, WalkEngineExt};

    #[test]
    fn parse_covers_all_backends_and_rejects_junk() {
        assert!(matches!(Backend::parse("sim"), Ok(Backend::Sim { .. })));
        assert!(matches!(
            Backend::parse("cpu"),
            Ok(Backend::Cpu { threads: 0 })
        ));
        assert!(matches!(
            Backend::parse("reference"),
            Ok(Backend::Reference { .. })
        ));
        assert!(Backend::parse("fpga").unwrap_err().contains("--engine"));
    }

    #[test]
    fn every_backend_builds_a_working_engine() {
        let g = generators::rmat_dataset(7, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 1);
        for name in ["sim", "cpu", "reference"] {
            let backend = Backend::parse(name).unwrap();
            let engine = backend.build(&g, &Uniform, 9);
            let results = engine.run_collected(&qs);
            assert_eq!(results.len(), qs.len(), "{name}");
            for p in results.iter() {
                validate_path(&g, &Uniform, p).unwrap();
            }
        }
    }
}
