//! Power and energy-efficiency model — the Table 3 analysis.
//!
//! The paper measures board power with `xbutil` and CPU package power with
//! CPU Energy Meter, then reports *power efficiency improvement*: the
//! ratio of (execution time × watts) between ThunderRW and LightRW. We
//! keep the measured power constants (platform data) and combine them
//! with runtimes from the simulator / measured baseline.

use serde::Serialize;

use crate::platform::{AppKind, CpuPlatform, FpgaPlatform};

/// A (runtime, power) pair and its energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyEstimate {
    /// Execution seconds.
    pub seconds: f64,
    /// Average watts.
    pub watts: f64,
    /// Joules = seconds × watts.
    pub joules: f64,
}

impl EnergyEstimate {
    /// Build from runtime and power.
    pub fn new(seconds: f64, watts: f64) -> Self {
        Self {
            seconds,
            watts,
            joules: seconds * watts,
        }
    }
}

/// The Table 3 comparison for one (app, workload) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PowerComparison {
    /// Accelerator side.
    pub fpga: EnergyEstimate,
    /// CPU side.
    pub cpu: EnergyEstimate,
    /// Energy ratio cpu/fpga — the paper's "power efficiency improvement".
    pub efficiency_improvement: f64,
}

/// Compare energy for an app given both runtimes.
pub fn compare(
    app: AppKind,
    fpga: &FpgaPlatform,
    cpu: &CpuPlatform,
    fpga_seconds: f64,
    cpu_seconds: f64,
) -> PowerComparison {
    let f = EnergyEstimate::new(fpga_seconds, fpga.power_w(app));
    let c = EnergyEstimate::new(cpu_seconds, cpu.power_w(app));
    PowerComparison {
        fpga: f,
        cpu: c,
        efficiency_improvement: if f.joules > 0.0 {
            c.joules / f.joules
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{U250_PLATFORM, XEON_6246R};

    #[test]
    fn energy_is_time_times_power() {
        let e = EnergyEstimate::new(2.0, 43.0);
        assert_eq!(e.joules, 86.0);
    }

    #[test]
    fn paper_scale_example() {
        // Paper reasoning check (§6.5.4): power ratio ≈ 2.6×, speedup up
        // to 9.55× ⇒ efficiency improvement ≈ 25× for MetaPath.
        let cmp = compare(AppKind::MetaPath, &U250_PLATFORM, &XEON_6246R, 1.0, 9.55);
        assert!(
            (20.0..30.0).contains(&cmp.efficiency_improvement),
            "{}",
            cmp.efficiency_improvement
        );
    }

    #[test]
    fn equal_runtime_still_favors_fpga() {
        // Lower watts alone give > 2x improvement at equal runtime.
        let cmp = compare(AppKind::Node2Vec, &U250_PLATFORM, &XEON_6246R, 1.0, 1.0);
        assert!(cmp.efficiency_improvement > 2.0);
        assert!(cmp.efficiency_improvement < 4.0);
    }

    #[test]
    fn zero_fpga_time_yields_zero_ratio() {
        let cmp = compare(AppKind::MetaPath, &U250_PLATFORM, &XEON_6246R, 0.0, 1.0);
        assert_eq!(cmp.efficiency_improvement, 0.0);
    }
}
