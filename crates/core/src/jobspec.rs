//! Job-trace specs for the `serve` subcommand.
//!
//! A trace is a JSON document describing the jobs a
//! [`lightrw_walker::service::WalkService`] replays against a graph:
//!
//! ```json
//! {
//!   "threads": 4,
//!   "jobs": [
//!     {"tenant": 0, "queries": 64, "length": 20},
//!     {"tenant": 1, "queries": 32, "length": 10, "weight": 2,
//!      "seed": 7, "deadline": 0.25},
//!     {"tenant": 2, "queries": 16,
//!      "program": {"kind": "ppr", "alpha": 0.15, "max": 80}},
//!     {"tenant": 2, "queries": 16, "program": "ppr:alpha=0.2,max=40"}
//!   ]
//! }
//! ```
//!
//! The optional top-level `threads` field sizes each CPU worker's lane
//! plan (`0` = one per core) — it flows into `Backend::with_threads`
//! before `Backend::build_pool`, so a replayed trace and the CLI agree on
//! worker counts by construction (`--threads` on the command line takes
//! precedence). It is a property of the *trace*, not of a job, because
//! every job in a service run shares the same engine pool.
//!
//! `tenant` and `queries` are required, plus exactly one of `length` (a
//! fixed-length walk) or `program` (a composable
//! [`lightrw_walker::WalkProgram`], DESIGN.md §8 — given either as an
//! object with `kind`/`alpha`/`max`/`len`/`deadend` fields or as the
//! CLI's compact program string). `weight` defaults to 1, `seed` to the
//! job's index, and the two deadlines — `deadline` (model-or-wall
//! seconds, an execution budget) and `deadline_ms` (wall-clock
//! milliseconds from submission, the end-to-end promise the network
//! front door schedules against; DESIGN.md §13) — to none. A bare
//! top-level array is accepted as shorthand for the object form. Numeric
//! fields are strictly validated: negatives, fractions and out-of-range
//! values are errors, never silent truncations — in particular `seed`
//! must stay ≤ 2^53, the largest integer a JSON double carries exactly —
//! and malformed programs (unknown kind or key, α outside `(0, 1]`,
//! `max = 0`) fail with the program parser's actionable messages.
//!
//! The vendored `serde_json` stand-in only serializes (see DESIGN.md §4),
//! so parsing is a small recursive-descent reader over exactly the JSON
//! subset above — objects, arrays, numbers, strings, booleans and null —
//! with line-precise errors. [`synthetic_trace`] generates the homogeneous
//! traces the CI soak and the saturation bench replay.

use std::fmt::Write as _;

use lightrw_walker::WalkProgram;

/// A parsed trace: the jobs plus the trace-wide engine settings.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// CPU worker threads per pool engine (`0` = one per core); `None`
    /// leaves the backend's own default in place.
    pub threads: Option<usize>,
    /// Shard count per pool engine for a sharded backend (`>= 1`);
    /// `None` leaves the backend's default. Only meaningful with
    /// `--engine sharded` — ignored by the other backends, mirroring
    /// how `threads` only shapes the CPU engine.
    pub shards: Option<usize>,
    /// Executor threads per sharded pool engine (`0` = one per shard,
    /// `1` = the sequential interleave); `None` leaves the backend's
    /// default. Only meaningful with `--engine sharded`.
    pub shard_threads: Option<usize>,
    /// Graph the trace should run on (any path `lightrw-cli` accepts,
    /// including `packed:` files); the CLI positional overrides it, and
    /// a positional of `-` explicitly defers to this field.
    pub graph: Option<String>,
    /// The jobs, in submission order.
    pub jobs: Vec<TraceJob>,
}

impl Trace {
    /// Wrap bare jobs with no trace-wide settings.
    pub fn from_jobs(jobs: Vec<TraceJob>) -> Self {
        Self {
            threads: None,
            shards: None,
            shard_threads: None,
            graph: None,
            jobs,
        }
    }
}

/// One job of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceJob {
    /// Quota/accounting tenant.
    pub tenant: u32,
    /// Fair-share weight (≥ 1).
    pub weight: u32,
    /// Number of walk queries (distinct start vertices, cycling).
    pub queries: usize,
    /// Requested step budget per walk. For a plain `length` job this is
    /// the fixed walk length; for a `program` job it mirrors the
    /// program's `max` cap.
    pub length: u32,
    /// Start-vertex shuffle seed.
    pub seed: u64,
    /// Optional deadline in model-or-wall seconds.
    pub deadline: Option<f64>,
    /// Optional wall-clock deadline in milliseconds from submission
    /// (`"deadline_ms"`): the end-to-end latency promise a network
    /// client declares, covering queue time as well as execution — see
    /// `JobSpec::wall_deadline_ms` in `lightrw_walker::service`.
    pub deadline_ms: Option<u64>,
    /// Optional walk program (restarts, variable length, dead-end
    /// policy); `None` runs the fixed-length `length` walk.
    pub program: Option<WalkProgram>,
}

/// A homogeneous trace: `jobs_per_tenant` jobs for each of `tenants`
/// tenants, every job `queries` × `length` steps, with per-job derived
/// seeds — the workload shape the `service-soak` CI step and the
/// `service_saturation` bench sweep replay.
pub fn synthetic_trace(
    tenants: u32,
    jobs_per_tenant: usize,
    queries: usize,
    length: u32,
) -> Vec<TraceJob> {
    (0..tenants)
        .flat_map(|tenant| {
            (0..jobs_per_tenant).map(move |j| TraceJob {
                tenant,
                weight: 1,
                queries,
                length,
                // Distinct per (tenant, job) and comfortably below the
                // spec format's 2^53 exact-seed ceiling for any tenant id
                // (collisions would need > 2^20 jobs per tenant).
                seed: ((tenant as u64) << 20) + j as u64,
                deadline: None,
                deadline_ms: None,
                program: None,
            })
        })
        .collect()
}

/// Render a trace as the JSON document [`parse_trace`] reads. Programs
/// serialize in their compact string form (the canonical
/// `WalkProgram::to_string`), which round-trips through the parser for
/// every program [`parse_trace`] can produce. A hand-built [`TraceJob`]
/// whose program carries a *target set* is the one exception: target
/// sets are not expressible in the trace format (see
/// [`WalkProgram::parse`]), so its serialized form will not re-parse —
/// attach targets programmatically via `QuerySet::with_program` instead
/// of routing them through a trace.
pub fn to_json(trace: &Trace) -> String {
    let mut out = String::from("{\n");
    if let Some(t) = trace.threads {
        let _ = writeln!(out, "  \"threads\": {t},");
    }
    if let Some(k) = trace.shards {
        let _ = writeln!(out, "  \"shards\": {k},");
    }
    if let Some(t) = trace.shard_threads {
        let _ = writeln!(out, "  \"shard_threads\": {t},");
    }
    if let Some(g) = &trace.graph {
        let _ = writeln!(out, "  \"graph\": \"{g}\",");
    }
    out.push_str("  \"jobs\": [\n");
    for (i, j) in trace.jobs.iter().enumerate() {
        let sep = if i + 1 < trace.jobs.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{sep}", job_to_json(j));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render one job as the single-line JSON object [`parse_job`] (and a
/// trace's `jobs` array) reads — the `POST /jobs` request body of the
/// network front door. Shares [`to_json`]'s caveat about program target
/// sets.
pub fn job_to_json(j: &TraceJob) -> String {
    let deadline = j
        .deadline
        .map(|d| format!(", \"deadline\": {d}"))
        .unwrap_or_default();
    let deadline_ms = j
        .deadline_ms
        .map(|ms| format!(", \"deadline_ms\": {ms}"))
        .unwrap_or_default();
    let (len_or_program, len_value) = match &j.program {
        Some(p) => ("program", format!("\"{p}\"")),
        None => ("length", j.length.to_string()),
    };
    format!(
        "{{\"tenant\": {}, \"weight\": {}, \"queries\": {}, \"{len_or_program}\": \
         {len_value}, \"seed\": {}{deadline}{deadline_ms}}}",
        j.tenant, j.weight, j.queries, j.seed
    )
}

/// Parse a single job object — the `POST /jobs` request body. Same
/// fields and validation as a trace's `jobs` entries; the default seed
/// is 0 (there is no trace index to derive one from, so network clients
/// that want distinct walks should send explicit seeds).
pub fn parse_job(text: &str) -> Result<TraceJob, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let root = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after the job object"));
    }
    trace_job(0, root)
}

/// Parse a trace document. Errors carry the offending line number.
pub fn parse_trace(text: &str) -> Result<Trace, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let root = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after the trace document"));
    }
    let mut threads = None;
    let mut shards = None;
    let mut shard_threads = None;
    let mut graph = None;
    let jobs_value = match root {
        Value::Array(items) => items,
        Value::Object(fields) => {
            let mut jobs_value = None;
            for (key, value) in fields {
                match key.as_str() {
                    "jobs" => jobs_value = Some(value),
                    "threads" => match value {
                        Value::Number(n)
                            if n.is_finite()
                                && n >= 0.0
                                && n.fract() == 0.0
                                && n <= MAX_TRACE_THREADS as f64 =>
                        {
                            threads = Some(n as usize)
                        }
                        _ => {
                            return Err(format!(
                                "trace \"threads\" must be an integer in \
                                 0..={MAX_TRACE_THREADS} (0 = one per core)"
                            ))
                        }
                    },
                    "shards" => match value {
                        Value::Number(n)
                            if n.is_finite()
                                && n >= 1.0
                                && n.fract() == 0.0
                                && n <= MAX_TRACE_SHARDS as f64 =>
                        {
                            shards = Some(n as usize)
                        }
                        _ => {
                            return Err(format!(
                                "trace \"shards\" must be an integer in 1..={MAX_TRACE_SHARDS}"
                            ))
                        }
                    },
                    "shard_threads" => match value {
                        Value::Number(n)
                            if n.is_finite()
                                && n >= 0.0
                                && n.fract() == 0.0
                                && n <= MAX_TRACE_SHARDS as f64 =>
                        {
                            shard_threads = Some(n as usize)
                        }
                        _ => {
                            return Err(format!(
                                "trace \"shard_threads\" must be an integer in \
                                 0..={MAX_TRACE_SHARDS} (0 = one per shard)"
                            ))
                        }
                    },
                    "graph" => match value {
                        Value::String(s) if !s.is_empty() => graph = Some(s),
                        _ => return Err("trace \"graph\" must be a non-empty string".into()),
                    },
                    other => return Err(format!("unknown trace field {other:?}")),
                }
            }
            match jobs_value.ok_or("trace object needs a \"jobs\" array")? {
                Value::Array(items) => items,
                _ => return Err("\"jobs\" must be an array".into()),
            }
        }
        _ => return Err("trace must be an object with \"jobs\" or a bare array".into()),
    };
    let jobs = jobs_value
        .into_iter()
        .enumerate()
        .map(|(i, v)| trace_job(i, v))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Trace {
        threads,
        shards,
        shard_threads,
        graph,
        jobs,
    })
}

/// Largest `threads` value a trace may request: beyond 1024 workers the
/// spec is a config mistake (and matches the affinity mask's CPU ceiling).
const MAX_TRACE_THREADS: u64 = 1024;

/// Largest `shards` value a trace may request — same config-mistake
/// ceiling as `threads`.
const MAX_TRACE_SHARDS: u64 = 1024;

/// Largest `queries` value a spec may request: beyond ~16M queries per
/// job the workload is a config mistake, not a trace (and `as`-casting
/// arbitrary doubles would silently saturate instead of erroring).
const MAX_QUERIES_PER_JOB: u64 = 1 << 24;

/// Largest `seed` a spec may carry: JSON numbers parse through f64,
/// which represents integers exactly only up to 2^53 — and 2^53 itself
/// must be excluded, because 2^53 + 1 rounds *to* 2^53 during parsing
/// and would otherwise slip through the equality-based checks.
const MAX_EXACT_SEED: u64 = (1 << 53) - 1;

/// Largest `deadline_ms` a spec may carry: 24 hours. A longer wall-clock
/// deadline on a walk job is a config mistake (use no deadline instead).
const MAX_DEADLINE_MS: u64 = 86_400_000;

/// Build a [`WalkProgram`] from a trace `program` value: either the
/// compact string form or an object with `kind` plus the program's keys.
/// Both funnel through [`WalkProgram::parse`], so the validation (and its
/// actionable errors) is shared with the CLI `--program` flag.
fn program_value(index: usize, v: Value) -> Result<WalkProgram, String> {
    let text = match v {
        Value::String(s) => s,
        Value::Object(fields) => {
            let mut kind: Option<String> = None;
            let mut pairs: Vec<String> = Vec::new();
            for (key, value) in fields {
                let rendered = match value {
                    Value::Number(n) => n.to_string(),
                    Value::String(s) => s,
                    _ => {
                        return Err(format!(
                            "job #{index}: program {key:?} must be a number or string"
                        ))
                    }
                };
                if key == "kind" {
                    kind = Some(rendered);
                } else {
                    pairs.push(format!("{key}={rendered}"));
                }
            }
            let kind = kind.ok_or_else(|| {
                format!("job #{index}: program object needs a \"kind\" (\"fixed\" or \"ppr\")")
            })?;
            if pairs.is_empty() {
                kind
            } else {
                format!("{kind}:{}", pairs.join(","))
            }
        }
        _ => {
            return Err(format!(
                "job #{index}: program must be an object or a program string \
                 (e.g. \"ppr:alpha=0.15,max=80\")"
            ))
        }
    };
    WalkProgram::parse(&text).map_err(|e| format!("job #{index}: {e}"))
}

fn trace_job(index: usize, v: Value) -> Result<TraceJob, String> {
    let Value::Object(fields) = v else {
        return Err(format!("job #{index}: expected an object"));
    };
    let mut job = TraceJob {
        tenant: 0,
        weight: 1,
        queries: 0,
        length: 0,
        seed: index as u64,
        deadline: None,
        deadline_ms: None,
        program: None,
    };
    let (mut saw_tenant, mut saw_queries, mut saw_length) = (false, false, false);
    for (key, value) in fields {
        if key == "program" {
            job.program = Some(program_value(index, value)?);
            continue;
        }
        let num = |what: &str| match value {
            Value::Number(n) => Ok(n),
            _ => Err(format!("job #{index}: {what} must be a number")),
        };
        // Checked integer extraction: rejects negatives, fractions and
        // out-of-range values instead of silently truncating them.
        let int = |what: &str, max: u64| -> Result<u64, String> {
            let n = num(what)?;
            if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= max as f64) {
                return Err(format!(
                    "job #{index}: {what} must be an integer in 0..={max} (got {n})"
                ));
            }
            Ok(n as u64)
        };
        match key.as_str() {
            "tenant" => {
                job.tenant = int("tenant", u32::MAX as u64)? as u32;
                saw_tenant = true;
            }
            "weight" => job.weight = (int("weight", u32::MAX as u64)? as u32).max(1),
            "queries" => {
                job.queries = int("queries", MAX_QUERIES_PER_JOB)? as usize;
                saw_queries = true;
            }
            "length" => {
                job.length = int("length", u32::MAX as u64)? as u32;
                saw_length = true;
            }
            // Numbers travel through f64, which is exact only up to 2^53;
            // larger seeds would be silently rounded, so reject them.
            "seed" => job.seed = int("seed", MAX_EXACT_SEED)?,
            "deadline" => {
                let d = num("deadline")?;
                if !(d.is_finite() && d >= 0.0) {
                    return Err(format!(
                        "job #{index}: deadline must be a non-negative number of seconds"
                    ));
                }
                job.deadline = Some(d);
            }
            // Wall-clock deadlines must be positive: a 0 ms budget is
            // already over at submission, which is a spec mistake, not a
            // job.
            "deadline_ms" => {
                let ms = int("deadline_ms", MAX_DEADLINE_MS)?;
                if ms == 0 {
                    return Err(format!(
                        "job #{index}: deadline_ms must be a positive integer \
                         in 1..={MAX_DEADLINE_MS} milliseconds"
                    ));
                }
                job.deadline_ms = Some(ms);
            }
            other => return Err(format!("job #{index}: unknown field {other:?}")),
        }
    }
    if !(saw_tenant && saw_queries) {
        return Err(format!(
            "job #{index}: \"tenant\" and \"queries\" are required"
        ));
    }
    match (&job.program, saw_length) {
        (Some(_), true) => {
            return Err(format!(
                "job #{index}: \"length\" conflicts with \"program\" \
                 (the program carries its own step cap)"
            ))
        }
        // The program's cap doubles as the per-walk budget the service
        // admits quota against.
        (Some(p), false) => job.length = p.max_steps(),
        (None, false) => {
            return Err(format!(
                "job #{index}: either \"length\" or \"program\" is required"
            ))
        }
        (None, true) => {}
    }
    if job.queries == 0 || job.length == 0 {
        return Err(format!(
            "job #{index}: \"queries\" and \"length\" must be positive \
             (zero-length walk queries are rejected set-wide)"
        ));
    }
    Ok(job)
}

/// Minimal JSON value tree (objects keep insertion order).
enum Value {
    Null,
    Bool(#[allow(dead_code)] bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        format!("trace line {line}: {msg}")
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        // Accumulate raw bytes: unescaped spans are copied verbatim (the
        // input is a &str, so they are valid UTF-8 already) and escapes
        // only ever insert ASCII, so the final from_utf8 cannot fail.
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(String::from_utf8(out).expect("copied valid UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    out.push(match esc {
                        b'"' => b'"',
                        b'\\' => b'\\',
                        b'/' => b'/',
                        b'n' => b'\n',
                        b't' => b'\t',
                        _ => return Err(self.err("unsupported string escape")),
                    });
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_object_form_with_all_fields() {
        let jobs = &parse_trace(
            r#"{ "jobs": [
                {"tenant": 0, "queries": 64, "length": 20},
                {"tenant": 1, "weight": 2, "queries": 32, "length": 10,
                 "seed": 7, "deadline": 0.25}
            ] }"#,
        )
        .unwrap()
        .jobs;
        assert_eq!(jobs.len(), 2);
        assert_eq!(
            jobs[0],
            TraceJob {
                tenant: 0,
                weight: 1,
                queries: 64,
                length: 20,
                seed: 0,
                deadline: None,
                deadline_ms: None,
                program: None
            }
        );
        assert_eq!(jobs[1].weight, 2);
        assert_eq!(jobs[1].seed, 7);
        assert_eq!(jobs[1].deadline, Some(0.25));
    }

    #[test]
    fn parses_bare_array_form() {
        let trace = parse_trace(r#"[{"tenant": 3, "queries": 1, "length": 5}]"#).unwrap();
        assert_eq!(trace.jobs.len(), 1);
        assert_eq!(trace.jobs[0].tenant, 3);
        assert_eq!(trace.threads, None, "bare arrays carry no trace settings");
    }

    #[test]
    fn roundtrips_through_to_json() {
        let mut trace = Trace::from_jobs(synthetic_trace(3, 2, 16, 8));
        trace.threads = Some(4);
        trace.jobs[4].deadline = Some(1.5);
        trace.jobs[3].deadline_ms = Some(250);
        trace.jobs[5].weight = 4;
        // A program job serializes as the compact string form; `length`
        // mirrors the program's cap on the way back in.
        trace.jobs[2].program = Some(WalkProgram::ppr(0.15, 8));
        let parsed = parse_trace(&to_json(&trace)).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn trace_threads_field_is_parsed_and_validated() {
        let trace =
            parse_trace(r#"{"threads": 8, "jobs": [{"tenant": 0, "queries": 1, "length": 2}]}"#)
                .unwrap();
        assert_eq!(trace.threads, Some(8));
        // 0 is meaningful: one worker per core, the engine default.
        let auto =
            parse_trace(r#"{"threads": 0, "jobs": [{"tenant": 0, "queries": 1, "length": 2}]}"#)
                .unwrap();
        assert_eq!(auto.threads, Some(0));
        for bad in [
            r#"{"threads": -1, "jobs": []}"#,
            r#"{"threads": 2.5, "jobs": []}"#,
            r#"{"threads": 4096, "jobs": []}"#,
            r#"{"threads": "four", "jobs": []}"#,
        ] {
            let err = parse_trace(bad).unwrap_err();
            assert!(err.contains("threads"), "{bad}: {err}");
        }
        let err = parse_trace(r#"{"workers": 2, "jobs": []}"#).unwrap_err();
        assert!(err.contains("unknown trace field"), "{err}");
    }

    #[test]
    fn parses_program_objects_and_strings() {
        let jobs = parse_trace(
            r#"{ "jobs": [
                {"tenant": 0, "queries": 8,
                 "program": {"kind": "ppr", "alpha": 0.25, "max": 40}},
                {"tenant": 1, "queries": 4, "program": "fixed:len=6,deadend=restart"},
                {"tenant": 2, "queries": 4,
                 "program": {"kind": "fixed", "len": 12, "deadend": "restart"}}
            ] }"#,
        )
        .unwrap()
        .jobs;
        assert_eq!(jobs[0].program, Some(WalkProgram::ppr(0.25, 40)));
        assert_eq!(jobs[0].length, 40, "length mirrors the program cap");
        let restart_fixed = lightrw_walker::WalkProgram::parse("fixed:len=6,deadend=restart");
        assert_eq!(jobs[1].program, Some(restart_fixed.unwrap()));
        assert_eq!(jobs[2].program.as_ref().unwrap().max_steps(), 12);
    }

    #[test]
    fn malformed_programs_are_rejected_with_context() {
        for (bad, needle) in [
            (
                r#"[{"tenant": 0, "queries": 4, "length": 5, "program": "ppr:alpha=0.1,max=5"}]"#,
                "conflicts",
            ),
            (
                r#"[{"tenant": 0, "queries": 4, "program": "ppr:alpha=0,max=5"}]"#,
                "(0, 1]",
            ),
            (
                r#"[{"tenant": 0, "queries": 4, "program": "ppr:alpha=0.5,max=0"}]"#,
                "at least one step",
            ),
            (
                r#"[{"tenant": 0, "queries": 4, "program": "warp:max=5"}]"#,
                "unknown program",
            ),
            (
                r#"[{"tenant": 0, "queries": 4, "program": {"alpha": 0.5}}]"#,
                "kind",
            ),
            (
                r#"[{"tenant": 0, "queries": 4, "program": 7}]"#,
                "object or a program string",
            ),
            (r#"[{"tenant": 0, "queries": 4}]"#, "required"),
        ] {
            let err = parse_trace(bad).unwrap_err();
            assert!(err.contains("job #0"), "{bad}: {err}");
            assert!(err.contains(needle), "{bad}: {err}");
        }
    }

    #[test]
    fn deadline_ms_is_parsed_and_strictly_validated() {
        let jobs = parse_trace(
            r#"[{"tenant": 0, "queries": 4, "length": 5, "deadline_ms": 250},
                {"tenant": 1, "queries": 4, "length": 5}]"#,
        )
        .unwrap()
        .jobs;
        assert_eq!(jobs[0].deadline_ms, Some(250));
        assert_eq!(jobs[1].deadline_ms, None);
        // Both deadlines may coexist: the model budget caps execution,
        // the wall budget caps end-to-end latency.
        let both = parse_trace(
            r#"[{"tenant": 0, "queries": 4, "length": 5,
                 "deadline": 0.5, "deadline_ms": 100}]"#,
        )
        .unwrap();
        assert_eq!(both.jobs[0].deadline, Some(0.5));
        assert_eq!(both.jobs[0].deadline_ms, Some(100));
        for bad in [
            r#"[{"tenant": 0, "queries": 4, "length": 5, "deadline_ms": 0}]"#,
            r#"[{"tenant": 0, "queries": 4, "length": 5, "deadline_ms": -5}]"#,
            r#"[{"tenant": 0, "queries": 4, "length": 5, "deadline_ms": 1.5}]"#,
            r#"[{"tenant": 0, "queries": 4, "length": 5, "deadline_ms": 86400001}]"#,
            r#"[{"tenant": 0, "queries": 4, "length": 5, "deadline_ms": "soon"}]"#,
        ] {
            let err = parse_trace(bad).unwrap_err();
            assert!(err.contains("deadline_ms"), "{bad}: {err}");
        }
    }

    #[test]
    fn parse_job_reads_a_single_job_object() {
        let job =
            parse_job(r#"{"tenant": 7, "queries": 16, "length": 10, "deadline_ms": 900}"#).unwrap();
        assert_eq!((job.tenant, job.queries, job.length), (7, 16, 10));
        assert_eq!(job.deadline_ms, Some(900));
        assert_eq!(job.seed, 0, "no trace index: seed defaults to 0");
        // job_to_json round-trips through parse_job.
        assert_eq!(parse_job(&job_to_json(&job)).unwrap(), job);
        let program =
            parse_job(r#"{"tenant": 0, "queries": 2, "program": "ppr:alpha=0.2,max=9"}"#).unwrap();
        assert_eq!(parse_job(&job_to_json(&program)).unwrap(), program);
        // The same strict validation as trace entries, plus no trailing
        // content.
        for bad in [
            r#"{"tenant": 0, "queries": 4}"#,
            r#"{"tenant": 0, "queries": 4, "length": 0}"#,
            r#"[{"tenant": 0, "queries": 4, "length": 5}]"#,
            r#"{"tenant": 0, "queries": 4, "length": 5} extra"#,
            "",
        ] {
            assert!(parse_job(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn synthetic_trace_covers_all_tenants_with_distinct_seeds() {
        let trace = synthetic_trace(4, 3, 8, 10);
        assert_eq!(trace.len(), 12);
        let mut seeds: Vec<u64> = trace.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "per-job seeds must be distinct");
        for t in 0..4u32 {
            assert_eq!(trace.iter().filter(|j| j.tenant == t).count(), 3);
        }
    }

    #[test]
    fn errors_carry_line_numbers_and_field_context() {
        let err = parse_trace("{\n  \"jobs\": [\n    {\"tenant\": }\n  ]\n}").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        let err = parse_trace(r#"{"jobs": [{"tenant": 0, "queries": 4}]}"#).unwrap_err();
        assert!(err.contains("required"), "{err}");
        let err =
            parse_trace(r#"{"jobs": [{"tenant": 0, "queries": 4, "length": 0}]}"#).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse_trace(r#"{"jobs": [{"nope": 1}]}"#).unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
        let err = parse_trace("[1, 2]").unwrap_err();
        assert!(err.contains("expected an object"), "{err}");
        // Checked integer extraction: negatives, fractions and absurd
        // magnitudes are rejected, never silently truncated.
        for bad in [
            r#"[{"tenant": -1, "queries": 4, "length": 5}]"#,
            r#"[{"tenant": 0, "queries": 2.7, "length": 5}]"#,
            r#"[{"tenant": 0, "queries": 1e12, "length": 5}]"#,
            r#"[{"tenant": 0, "queries": 4, "length": 5, "weight": 5000000000}]"#,
            r#"[{"tenant": 0, "queries": 4, "length": 5, "deadline": -2}]"#,
            // Above 2^53 a JSON double can no longer carry the seed
            // exactly; rejected rather than silently rounded.
            r#"[{"tenant": 0, "queries": 4, "length": 5, "seed": 9007199254740993}]"#,
        ] {
            let err = parse_trace(bad).unwrap_err();
            assert!(err.contains("must be"), "{bad}: {err}");
        }
        // Non-ASCII field names survive into the error message intact.
        let err = parse_trace("[{\"t\u{e9}nant\": 1}]").unwrap_err();
        assert!(err.contains("t\u{e9}nant"), "{err}");
        let err = parse_trace("42").unwrap_err();
        assert!(err.contains("bare array"), "{err}");
        let err = parse_trace("{\"jobs\": []} extra").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
