//! FPGA resource-utilization model — the Table 5 analysis.
//!
//! Synthesis reports are a property of the RTL, not of execution, so they
//! cannot be *measured* in software. Instead we provide a parametric model
//! anchored to the paper's Table 5 numbers at the paper's configuration
//! (k = 16, b1+b32, 2^12-entry cache, 4 instances) and scale the
//! per-component costs with the configuration knobs:
//!
//! - each WRS lane adds prefix-sum adders, one DSP-based comparator and a
//!   decorrelator (LUT + DSP);
//! - the row cache consumes URAM/BRAM proportional to its entry count;
//! - the dynamic burst engine's two access pipelines and crossbar cost
//!   LUTs, plus BRAM for burst reorder buffers proportional to S1;
//! - Node2Vec's bitstream spends more BRAM (neighbor-stream buffers for
//!   the merge join) but less logic (no relation matching path), matching
//!   the paper's inversion between the two rows of Table 5.
//!
//! The model is for capacity planning ("does a bigger k fit?"), not
//! timing closure; the paper reports 300 MHz for both apps and we keep
//! that constant below 64 lanes.

use serde::Serialize;

use crate::platform::AppKind;
use lightrw_hwsim::LightRwConfig;

/// Utilization of the four resource classes, as percentages of the U250.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ResourceEstimate {
    /// LUT percentage.
    pub luts_pct: f64,
    /// Register percentage.
    pub regs_pct: f64,
    /// BRAM percentage.
    pub brams_pct: f64,
    /// DSP percentage.
    pub dsps_pct: f64,
    /// Achievable kernel clock in MHz.
    pub freq_mhz: f64,
}

/// Per-instance, per-lane and per-entry cost coefficients (percent of the
/// U250 per unit), calibrated so the paper configuration reproduces
/// Table 5.
mod coeff {
    /// Static shell + controller per instance: LUT%.
    pub const BASE_LUT: f64 = 2.00;
    /// Static shell + controller per instance: REG%.
    pub const BASE_REG: f64 = 1.60;
    /// Static BRAM per instance (inter-stage FIFOs).
    pub const BASE_BRAM: f64 = 2.83;
    /// LUT% per WRS lane (prefix adder + selector + decorrelator).
    pub const LANE_LUT: f64 = 0.30;
    /// REG% per WRS lane.
    pub const LANE_REG: f64 = 0.33;
    /// DSP% per WRS lane (acceptance-test multiply-add).
    pub const LANE_DSP: f64 = 0.0806;
    /// BRAM% per 2^10 cache entries.
    pub const CACHE_BRAM_PER_KENTRY: f64 = 0.26;
    /// LUT% for the dual burst pipelines + crossbar.
    pub const BURST_LUT: f64 = 0.88;
    /// BRAM% per 16 beats of long-burst buffering.
    pub const BURST_BRAM_PER_16B: f64 = 0.22;
    /// Extra LUT% for MetaPath's relation-matching weight updater.
    pub const METAPATH_LUT: f64 = 0.70;
    /// Extra BRAM% for Node2Vec's second neighbor stream buffers.
    pub const NODE2VEC_BRAM: f64 = 4.72;
    /// Extra REG% for MetaPath's wider path state.
    pub const METAPATH_REG: f64 = 0.56;
    /// Node2Vec datapath slimming vs MetaPath (no relation matching):
    /// LUT, REG and DSP scale factors calibrated to Table 5.
    pub const NODE2VEC_LUT_SCALE: f64 = 0.68;
    /// REG scale factor.
    pub const NODE2VEC_REG_SCALE: f64 = 0.66;
    /// DSP scale factor.
    pub const NODE2VEC_DSP_SCALE: f64 = 0.51;
}

/// Estimate utilization for `cfg` running an `app` bitstream.
pub fn estimate(cfg: &LightRwConfig, app: AppKind) -> ResourceEstimate {
    let inst = cfg.instances as f64;
    let k = cfg.k as f64;
    let cache_kentries = (1u64 << cfg.cache_index_bits) as f64 / 1024.0;
    let long = cfg.burst.long_beats as f64;

    let mut lut = inst * (coeff::BASE_LUT + k * coeff::LANE_LUT + coeff::BURST_LUT);
    let mut reg = inst * (coeff::BASE_REG + k * coeff::LANE_REG);
    let mut bram = inst
        * (coeff::BASE_BRAM
            + cache_kentries * coeff::CACHE_BRAM_PER_KENTRY
            + long / 16.0 * coeff::BURST_BRAM_PER_16B);
    let dsp = inst * k * coeff::LANE_DSP;

    match app {
        AppKind::MetaPath | AppKind::Other => {
            lut += inst * coeff::METAPATH_LUT;
            reg += inst * coeff::METAPATH_REG;
        }
        AppKind::Node2Vec => {
            bram += inst * coeff::NODE2VEC_BRAM;
        }
    }
    // Node2Vec's simpler per-edge logic (no relation compare) trims the
    // datapath; the paper's Table 5 shows it using ~38% fewer LUTs.
    let (lut, reg, dsp) = if matches!(app, AppKind::Node2Vec) {
        (
            lut * coeff::NODE2VEC_LUT_SCALE,
            reg * coeff::NODE2VEC_REG_SCALE,
            dsp * coeff::NODE2VEC_DSP_SCALE,
        )
    } else {
        (lut, reg, dsp)
    };

    ResourceEstimate {
        luts_pct: lut,
        regs_pct: reg,
        brams_pct: bram,
        dsps_pct: dsp,
        // Place-and-route holds 300 MHz up to 64 lanes (§6.6.2), then the
        // prefix network's depth starts costing frequency.
        freq_mhz: if cfg.k <= 64 { 300.0 } else { 250.0 },
    }
}

/// Whether the configuration fits the board with headroom for downstream
/// logic (the paper's point that LightRW leaves room for graph learning).
pub fn fits_u250(est: &ResourceEstimate) -> bool {
    est.luts_pct < 90.0 && est.regs_pct < 90.0 && est.brams_pct < 90.0 && est.dsps_pct < 90.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_hwsim::LightRwConfig;

    fn paper_cfg() -> LightRwConfig {
        LightRwConfig::default() // k=16, b1+b32, 2^12 cache, 4 instances
    }

    #[test]
    fn metapath_anchors_near_table5() {
        // Table 5: MetaPath 33.52% LUT, 29.76% REG, 17.24% BRAM, 5.16% DSP.
        // Model must land within ±6 points of every anchor.
        let e = estimate(&paper_cfg(), AppKind::MetaPath);
        assert!((e.luts_pct - 33.52).abs() < 6.0, "lut {}", e.luts_pct);
        assert!((e.regs_pct - 29.76).abs() < 6.0, "reg {}", e.regs_pct);
        assert!((e.brams_pct - 17.24).abs() < 6.0, "bram {}", e.brams_pct);
        assert!((e.dsps_pct - 5.16).abs() < 3.0, "dsp {}", e.dsps_pct);
        assert_eq!(e.freq_mhz, 300.0);
    }

    #[test]
    fn node2vec_anchors_near_table5() {
        // Table 5: Node2Vec 20.84% LUT, 18.20% REG, 36.12% BRAM, 2.62% DSP.
        let e = estimate(&paper_cfg(), AppKind::Node2Vec);
        assert!((e.luts_pct - 20.84).abs() < 6.0, "lut {}", e.luts_pct);
        assert!((e.regs_pct - 18.20).abs() < 6.0, "reg {}", e.regs_pct);
        assert!((e.brams_pct - 36.12).abs() < 8.0, "bram {}", e.brams_pct);
        assert!((e.dsps_pct - 2.62).abs() < 3.0, "dsp {}", e.dsps_pct);
    }

    #[test]
    fn node2vec_inversion_matches_paper() {
        // Table 5's signature shape: Node2Vec uses more BRAM but less of
        // everything else.
        let mp = estimate(&paper_cfg(), AppKind::MetaPath);
        let nv = estimate(&paper_cfg(), AppKind::Node2Vec);
        assert!(nv.brams_pct > mp.brams_pct);
        assert!(nv.luts_pct < mp.luts_pct);
        assert!(nv.dsps_pct < mp.dsps_pct);
    }

    #[test]
    fn utilization_scales_with_k_and_cache() {
        let base = estimate(&paper_cfg(), AppKind::MetaPath);
        let bigger_k = estimate(
            &LightRwConfig {
                k: 32,
                ..paper_cfg()
            },
            AppKind::MetaPath,
        );
        assert!(bigger_k.luts_pct > base.luts_pct);
        assert!(bigger_k.dsps_pct > base.dsps_pct);
        let bigger_cache = estimate(
            &LightRwConfig {
                cache_index_bits: 16,
                ..paper_cfg()
            },
            AppKind::MetaPath,
        );
        assert!(bigger_cache.brams_pct > base.brams_pct);
    }

    #[test]
    fn paper_config_leaves_headroom() {
        assert!(fits_u250(&estimate(&paper_cfg(), AppKind::MetaPath)));
        assert!(fits_u250(&estimate(&paper_cfg(), AppKind::Node2Vec)));
    }

    #[test]
    fn extreme_config_overflows() {
        let huge = LightRwConfig {
            k: 512,
            instances: 16,
            cache_index_bits: 20,
            ..LightRwConfig::default()
        };
        let e = estimate(&huge, AppKind::MetaPath);
        assert!(!fits_u250(&e));
        assert_eq!(e.freq_mhz, 250.0);
    }
}
