//! The `lightrw-cli` command implementations.
//!
//! What an open-source release ships alongside the library: generate or
//! convert graphs, inspect them, and run walk workloads on either engine
//! from the shell. The logic lives here (unit-testable against temp
//! files); `src/bin/lightrw_cli.rs` is a thin argv shim.
//!
//! ```text
//! lightrw-cli generate --kind rmat --scale 12 --seed 7 -o g.bin
//! lightrw-cli generate --kind standin --dataset liveJournal --scale 12 -o lj.bin
//! lightrw-cli convert --input edges.txt --directed -o g.bin
//! lightrw-cli info g.bin
//! lightrw-cli walk g.bin --app node2vec --length 80 --engine sim -o walks.txt
//! lightrw-cli walk g.bin --engine reference --batch 64
//! lightrw-cli walk g.bin --program ppr:alpha=0.15,max=80 --engine cpu
//! lightrw-cli serve g.bin --jobs spec.json --engine cpu --workers 2
//! lightrw-cli serve g.bin --synthetic-tenants 4 --jobs-per-tenant 2
//! lightrw-cli serve g.bin --listen 127.0.0.1:0 --workers 2
//! lightrw-cli client --addr 127.0.0.1:8080 --synthetic-tenants 2
//! ```
//!
//! `walk` dispatches over the engine-agnostic session layer
//! (DESIGN.md §6): the backend behind `--engine` is a `&dyn WalkEngine`,
//! and `--batch` sets the per-batch step budget the driver hands each
//! `advance` call — walks are bit-identical for every batch size.
//! `--program` runs a composable walk program (DESIGN.md §8) instead of
//! the default fixed-length walk: `fixed:len=N` (today's behavior),
//! `ppr:alpha=A,max=N` (personalized PageRank restarts), either with
//! `,deadend=restart`. Malformed programs fail with actionable errors;
//! `--program` and `--length` are mutually exclusive because the program
//! carries its own step cap.
//!
//! `serve` replays a multi-tenant job trace (see [`crate::jobspec`])
//! through a [`lightrw_walker::service::WalkService`] over a pool of
//! backend workers (DESIGN.md §7), then audits the output — every job
//! must emit exactly one path per query, in order — and prints per-tenant
//! throughput plus p50/p99 job latency. A dropped or duplicated path is a
//! hard error, which is what the CI `service-soak` step relies on.
//!
//! `serve --listen ADDR` swaps the trace replay for the network front
//! door ([`crate::http`], DESIGN.md §13): `POST /jobs` streams a job's
//! paths back as chunked NDJSON while it runs, `GET /stats` reports the
//! live scheduler snapshot, and over-limit submissions are shed with
//! `429` + `Retry-After`. `client` is the matching load driver: it
//! submits a trace's jobs concurrently over real sockets and audits the
//! same exactly-once contract on the wire (the CI `serve-soak` step).
//! Both serve modes drain gracefully on SIGINT/SIGTERM
//! (`lightrw_baseline::signal`): in-flight jobs get up to `--drain-ms`
//! to finish, then are cancelled with their partial paths flushed —
//! degrade, never fail.

use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

use crate::prelude::*;
use lightrw_graph::reorder::Relabeling;
use lightrw_graph::{components, io as gio, pack, packed, stats, LoadMode};
use lightrw_walker::corpus_io;

/// A parsed command line: positional arguments and `--key value` /
/// `--flag` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// Options; valueless flags map to `"true"`.
    pub options: HashMap<String, String>,
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &[
    "directed",
    "undirected",
    "binary",
    "help",
    "relabel",
    "no-prefix",
    "in-memory",
    "compress",
    "repartition",
];

impl Args {
    /// Parse raw arguments (not including program name / subcommand).
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&name) {
                    args.options.insert(name.to_string(), "true".to_string());
                } else {
                    i += 1;
                    let v = raw
                        .get(i)
                        .ok_or_else(|| format!("option --{name} needs a value"))?;
                    args.options.insert(name.to_string(), v.clone());
                }
            } else if a == "-" {
                // Bare `-` is a positional (serve uses it to defer to the
                // trace's "graph" field).
                args.positional.push(a.clone());
            } else if let Some(name) = a.strip_prefix('-') {
                // -o FILE shorthand.
                if name == "o" {
                    i += 1;
                    let v = raw.get(i).ok_or("option -o needs a value")?;
                    args.options.insert("out".to_string(), v.clone());
                } else {
                    return Err(format!("unknown short option -{name}"));
                }
            } else {
                args.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} must be an integer")),
        }
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} must be a number")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }
}

/// Dispatch a subcommand; returns the human-readable output.
pub fn run(subcommand: &str, args: &Args) -> Result<String, String> {
    match subcommand {
        "generate" => cmd_generate(args),
        "convert" => cmd_convert(args),
        "graph" => cmd_graph(args),
        "info" => cmd_info(args),
        "walk" => cmd_walk(args),
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        "help" | "--help" => Ok(usage().to_string()),
        other => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> &'static str {
    "lightrw-cli — graph dynamic random walks (LightRW reproduction)\n\
     \n\
     subcommands:\n\
     generate --kind rmat|er|standin [--scale N] [--edge-factor N]\n\
     \x20        [--dataset NAME] [--seed N] -o FILE\n\
     convert  --input EDGELIST [--directed|--undirected] -o FILE\n\
     graph    pack (rmat:SCALE[:SEED] | GRAPH.bin) -o FILE.lrwpak\n\
     \x20        [--relabel] [--no-prefix] [--chunk-records N] [--compress]\n\
     \x20        [--shards K] [--strategy range|fennel|walk]\n\
     \x20        rmat inputs stream in bounded memory (external sort);\n\
     \x20        fennel/walk strategies materialize the graph instead\n\
     graph    stats FILE.lrwpak  — header, sections, degree histogram\n\
     \x20        (reads via mmap; never materializes the CSR on heap)\n\
     info     GRAPH.bin\n\
     walk     GRAPH.bin --app uniform|static|metapath|node2vec\n\
     \x20        [--length N | --program SPEC] [--queries N]\n\
     \x20        [--engine sim|cpu|reference] [--batch N] [--seed N]\n\
     \x20        [--threads N] [--sampler NAME] [--binary] [-o FILE]\n\
     \x20        SPEC: fixed:len=N | ppr:alpha=A,max=N [,deadend=restart]\n\
     \x20        NAME: inverse-transform|alias|sequential-wrs|pwrs|rejection\n\
     \x20              |a-expj\n\
     \x20        --threads is cpu-only (0 = one worker lane per core)\n\
     \x20        [--shards K] [--strategy NAME] [--flush-budget N]\n\
     \x20        [--shard-threads N] [--repartition]\n\
     \x20        --shards K walks on the sharded engine; --shard-threads\n\
     \x20        pins parallel per-shard executors (0 = one per shard);\n\
     \x20        --repartition overrides a mismatched packed partition\n\
     serve    GRAPH.bin (--jobs SPEC.json | --synthetic-tenants N\n\
     \x20        | --listen ADDR)\n\
     \x20        [--jobs-per-tenant N] [--queries N] [--length N]\n\
     \x20        [--app NAME] [--engine sim|cpu|reference] [--workers N]\n\
     \x20        [--threads N] [--sampler NAME] [--shards K]\n\
     \x20        [--shard-threads N] [--quantum N] [--tenant-budget N]\n\
     \x20        [--seed N] [--drain-ms N] [--shutdown-after-ticks N]\n\
     \x20        --listen ADDR serves HTTP (POST /jobs streams NDJSON\n\
     \x20        paths, GET /stats) instead of replaying a trace; use\n\
     \x20        port 0 to pick a free port (printed on stdout).\n\
     \x20        [--rate STEPS/S] [--burst STEPS] [--queue-high-water N]\n\
     \x20        [--io-timeout-ms N] tune admission control / shedding.\n\
     \x20        SIGINT/SIGTERM drain gracefully in both modes\n\
     client   --addr HOST:PORT (--jobs SPEC.json | --synthetic-tenants N)\n\
     \x20        [--jobs-per-tenant N] [--queries N] [--length N]\n\
     \x20        submits each trace job over HTTP concurrently, audits\n\
     \x20        exactly-once path delivery, then polls GET /stats\n\
     \n\
     walk, serve and info auto-detect packed (.lrwpak) graphs and load\n\
     them via mmap (use --in-memory to copy to heap, or a packed: prefix\n\
     to force the format); a serve positional of - defers to the trace's\n\
     \"graph\" field. Walks on --relabel-packed graphs are emitted in\n\
     original vertex ids.\n"
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let out = args.get("out").ok_or("generate requires -o FILE")?;
    let seed = args.get_u64("seed", 42)?;
    let scale = args.get_u64("scale", 12)? as u32;
    if !(4..=26).contains(&scale) {
        return Err("--scale must be in 4..=26".into());
    }
    let g = match args.get("kind").unwrap_or("rmat") {
        "rmat" => {
            let _ef = args.get_u64("edge-factor", 8)?;
            lightrw_graph::generators::rmat_dataset(scale, seed)
        }
        "er" => {
            let ef = args.get_u64("edge-factor", 8)? as usize;
            lightrw_graph::generators::erdos_renyi_gnm(1 << scale, ef << scale, seed)
        }
        "standin" => {
            let name = args.get("dataset").ok_or("standin requires --dataset")?;
            let profile = DatasetProfile::all_real()
                .into_iter()
                .find(|p| p.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| format!("unknown dataset {name:?} (see Table 2 names)"))?;
            profile.stand_in(scale, seed)
        }
        other => return Err(format!("unknown --kind {other:?}")),
    };
    gio::save_binary(&g, out).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({} vertices, {} edges, avg degree {:.1})",
        out,
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    ))
}

fn cmd_convert(args: &Args) -> Result<String, String> {
    let input = args.get("input").ok_or("convert requires --input FILE")?;
    let out = args.get("out").ok_or("convert requires -o FILE")?;
    let directed = if args.flag("undirected") {
        false
    } else {
        // Directed by default: mirrored input lines stay faithful.
        true
    };
    let g = gio::load_edge_list(input, directed).map_err(|e| e.to_string())?;
    gio::save_binary(&g, out).map_err(|e| e.to_string())?;
    Ok(format!(
        "converted {} -> {} ({} vertices, {} edges)",
        input,
        out,
        g.num_vertices(),
        g.num_edges()
    ))
}

/// A loaded graph plus its provenance: `relabeling` maps a pack-time
/// degree renumbering back to original vertex ids (so emitted walks can
/// be translated), `mapped` is true when the CSR sections borrow an
/// mmap region instead of living on the heap.
struct LoadedGraph {
    graph: Graph,
    relabeling: Option<Relabeling>,
    mapped: bool,
}

/// Load any graph the CLI accepts: a classic CSR image, or a packed
/// (.lrwpak) file served via mmap. The format is sniffed from the magic
/// bytes; a `packed:` prefix forces the packed loader, `in_memory`
/// forces a heap copy instead of the mapping.
fn load_graph_spec(spec: &str, in_memory: bool) -> Result<LoadedGraph, String> {
    let (path, force_packed) = match spec.strip_prefix("packed:") {
        Some(p) => (p, true),
        None => (spec, false),
    };
    if !Path::new(path).exists() {
        return Err(format!("no such file: {path}"));
    }
    if force_packed || packed::is_packed_file(path) {
        let mode = if in_memory {
            LoadMode::Heap
        } else {
            LoadMode::Auto
        };
        let p = packed::load_packed(path, mode).map_err(|e| e.to_string())?;
        Ok(LoadedGraph {
            mapped: p.mapped,
            relabeling: p.relabeling,
            graph: p.graph,
        })
    } else {
        let graph = gio::load_binary(path).map_err(|e| e.to_string())?;
        Ok(LoadedGraph {
            graph,
            relabeling: None,
            mapped: false,
        })
    }
}

fn load_graph(args: &Args) -> Result<LoadedGraph, String> {
    let spec = args
        .positional
        .first()
        .ok_or("this subcommand requires a graph file argument")?;
    load_graph_spec(spec, args.flag("in-memory"))
}

fn cmd_graph(args: &Args) -> Result<String, String> {
    match args.positional.first().map(|s| s.as_str()) {
        Some("pack") => cmd_graph_pack(args),
        Some("stats") => cmd_graph_stats(args),
        other => Err(format!(
            "graph needs a subcommand (pack or stats), got {other:?}"
        )),
    }
}

/// Parse the shared `--strategy` option (shard assignment policy).
fn parse_strategy(args: &Args) -> Result<lightrw_graph::ShardStrategy, String> {
    match args.get("strategy") {
        None => Ok(lightrw_graph::ShardStrategy::Range),
        Some(name) => lightrw_graph::ShardStrategy::parse(name).ok_or_else(|| {
            format!("unknown --strategy {name:?} (expected range, fennel, or walk)")
        }),
    }
}

fn cmd_graph_pack(args: &Args) -> Result<String, String> {
    let input = args
        .positional
        .get(1)
        .ok_or("graph pack requires an input: rmat:SCALE[:SEED] or GRAPH.bin")?;
    let out = args.get("out").ok_or("graph pack requires -o FILE")?;
    let relabel = args.flag("relabel");
    let shards = args.get_u64("shards", 0)? as usize;
    let strategy = parse_strategy(args)?;
    let compress = args.flag("compress");
    let t = Instant::now();

    if let Some(rest) = input.strip_prefix("rmat:") {
        // The out-of-core path: the rmat edge stream is packed through
        // the external-sort pipeline without ever materializing the
        // graph — memory stays bounded by --chunk-records.
        let mut parts = rest.split(':');
        let scale: u32 = parts
            .next()
            .unwrap_or_default()
            .parse()
            .map_err(|_| format!("bad rmat spec {input:?} (want rmat:SCALE[:SEED])"))?;
        if !(4..=26).contains(&scale) {
            return Err("rmat scale must be in 4..=26".into());
        }
        let seed: u64 = match parts.next() {
            None => 42,
            Some(s) => s
                .parse()
                .map_err(|_| format!("bad rmat seed in {input:?}"))?,
        };
        if parts.next().is_some() {
            return Err(format!("bad rmat spec {input:?} (want rmat:SCALE[:SEED])"));
        }
        if shards > 0 && strategy != lightrw_graph::ShardStrategy::Range {
            // Fennel/walk placement needs the whole adjacency in memory,
            // so the streaming pipeline can't serve it; materialize the
            // same synthetic dataset and pack it whole instead.
            let mut g = lightrw_graph::generators::rmat_dataset(scale, seed);
            let bytes =
                pack::pack_graph_with(&mut g, relabel, shards, strategy, compress, Path::new(out))
                    .map_err(|e| e.to_string())?;
            return Ok(format!(
                "packed rmat-{scale} (seed {seed}, materialized for --strategy {}) -> {out}: \
                 {} vertices, {} edges, {bytes} bytes, relabel={relabel}, shards={shards}, \
                 compress={compress}, {:.3} s",
                strategy.name(),
                g.num_vertices(),
                g.num_edges(),
                t.elapsed().as_secs_f64(),
            ));
        }
        let opts = pack::PackOptions {
            relabel,
            chunk_records: args.get_u64("chunk-records", 4 << 20)?.max(2) as usize,
            prefix_cache: !args.flag("no-prefix"),
            shards,
            compress,
        };
        let st = pack::pack_rmat_dataset(scale, seed, Path::new(out), &opts)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "packed rmat-{scale} (seed {seed}) -> {out}: {} vertices, {} edges, \
             {} duplicate records collapsed, {} spilled runs, {} bytes, \
             relabel={relabel}, shards={shards}, compress={compress}, {:.3} s",
            st.vertices,
            st.edges,
            st.duplicates,
            st.runs,
            st.file_bytes,
            t.elapsed().as_secs_f64(),
        ))
    } else {
        // Small-graph convenience: load a CSR image and pack it whole.
        if !Path::new(input).exists() {
            return Err(format!("no such file: {input}"));
        }
        let mut g = gio::load_binary(input).map_err(|e| e.to_string())?;
        let bytes =
            pack::pack_graph_with(&mut g, relabel, shards, strategy, compress, Path::new(out))
                .map_err(|e| e.to_string())?;
        Ok(format!(
            "packed {input} -> {out}: {} vertices, {} edges, {bytes} bytes, \
             relabel={relabel}, shards={shards}, compress={compress}, {:.3} s",
            g.num_vertices(),
            g.num_edges(),
            t.elapsed().as_secs_f64(),
        ))
    }
}

fn cmd_graph_stats(args: &Args) -> Result<String, String> {
    let path = args
        .positional
        .get(1)
        .ok_or("graph stats requires a packed graph file")?;
    if !Path::new(path.as_str()).exists() {
        return Err(format!("no such file: {path}"));
    }
    // Always map (with the non-mmap fallback reading into an aligned
    // buffer): stats never promotes a section to heap, so huge files are
    // inspected at page-cache cost only.
    let p = packed::load_packed(path, LoadMode::Auto).map_err(|e| e.to_string())?;
    let g = &p.graph;
    let mut out = format!(
        "{path}\n\
         packed file     : {} bytes\n\
         loaded via      : {}\n\
         vertices        : {}\n\
         stored edges    : {}\n\
         directed        : {}\n\
         avg degree      : {:.2}\n\
         max degree      : {}\n\
         vertex labels   : {}\n\
         edge relations  : {}\n\
         prefix cache    : {}\n\
         degree-relabeled: {}\n",
        p.file_bytes,
        if p.mapped {
            "mmap"
        } else {
            "heap (no mmap on this platform)"
        },
        g.num_vertices(),
        g.num_edges(),
        g.is_directed(),
        g.avg_degree(),
        g.max_degree(),
        g.has_vertex_labels(),
        g.has_edge_labels(),
        g.has_prefix_cache(),
        p.relabeling.is_some(),
    );
    out += "sections:\n";
    for &(id, offset, len) in &p.sections {
        out += &format!(
            "  {:<14} {:>14} bytes @ {offset}\n",
            packed::section_name(id),
            len
        );
    }
    if let Some(meta) = &p.shard_meta {
        out += &format!(
            "shard partition : {} shards ({}), expected crossing rate {:.4}\n",
            meta.k(),
            meta.strategy.name(),
            meta.crossing_rate(),
        );
        // The raw crossing rate above counts boundary edges uniformly; a
        // walker doesn't visit edges uniformly. Weight the boundary by the
        // estimated stationary visit distribution to predict what fraction
        // of *walk steps* will hand off (lightrw_graph::partition).
        if let Ok(sp) = packed::load_packed_sharded(path, LoadMode::Auto) {
            out += &format!(
                "                  expected walk crossing rate {:.4} \
                 (stationary-weighted boundary)\n",
                lightrw_graph::expected_walk_crossing(g, &sp.sharded.ownership),
            );
        }
        out += "  shard     vertices        edges     boundary\n";
        for (s, c) in meta.shards.iter().enumerate() {
            out += &format!(
                "  {s:<5} {:>12} {:>12} {:>12}\n",
                c.owned_vertices, c.owned_edges, c.boundary_edges
            );
        }
    }
    out += "degree histogram (log2 buckets):\n";
    for b in stats::degree_histogram(g) {
        let lo = if b.bucket == 0 { 0 } else { 1u64 << b.bucket };
        let hi = (1u64 << (b.bucket + 1)) - 1;
        out += &format!(
            "  degree {lo:>8}..{hi:<10} {:>12} vertices {:>14} edges\n",
            b.count, b.edges
        );
    }
    Ok(out)
}

fn cmd_info(args: &Args) -> Result<String, String> {
    let path = args
        .positional
        .first()
        .ok_or("info requires a graph file argument")?;
    let g = load_graph(args)?.graph;
    let s = stats::summarize(&g);
    let comps = components::num_components(&g);
    Ok(format!(
        "{path}\n\
         vertices        : {}\n\
         stored edges    : {}\n\
         directed        : {}\n\
         avg degree      : {:.2}\n\
         max degree      : {}\n\
         top-1% edge share: {:.1}%\n\
         degree gini     : {:.3}\n\
         weak components : {comps}\n\
         vertex labels   : {}\n\
         edge relations  : {}\n\
         CSR image       : {} bytes",
        s.vertices,
        s.edges,
        g.is_directed(),
        s.avg_degree,
        s.max_degree,
        s.top1pct_edge_share * 100.0,
        s.degree_gini,
        g.has_vertex_labels(),
        g.has_edge_labels(),
        g.csr_bytes(),
    ))
}

/// Parse the shared `--app` option against a loaded graph.
fn parse_app(args: &Args, g: &Graph) -> Result<Box<dyn WalkApp>, String> {
    match args.get("app").unwrap_or("uniform") {
        "uniform" => Ok(Box::new(Uniform)),
        "static" => Ok(Box::new(StaticWeighted)),
        "metapath" => {
            if !g.has_edge_labels() {
                return Err("metapath needs a graph with edge relations".into());
            }
            Ok(Box::new(MetaPath::new(vec![0, 1, 0, 1, 0])))
        }
        "node2vec" => Ok(Box::new(Node2Vec::paper_params())),
        other => Err(format!("unknown --app {other:?}")),
    }
}

fn cmd_walk(args: &Args) -> Result<String, String> {
    if args.positional.is_empty() {
        return Err("walk requires a graph file argument".into());
    }
    let loaded = load_graph(args)?;
    let g = loaded.graph;
    // The walk definition: a fixed-length program from --length (the
    // default), or any composable program from --program (DESIGN.md §8).
    let program = match args.get("program") {
        Some(spec) => {
            if args.get("length").is_some() {
                return Err(
                    "--program and --length are mutually exclusive (the program \
                     carries its own step cap, e.g. ppr:alpha=0.15,max=80)"
                        .into(),
                );
            }
            WalkProgram::parse(spec)?
        }
        None => {
            let length = args.get_u64("length", 20)? as u32;
            if length == 0 {
                return Err("--length must be at least 1 (zero-step walks are rejected)".into());
            }
            WalkProgram::fixed(length)
        }
    };
    let length = program.max_steps();
    let seed = args.get_u64("seed", 42)?;
    let n_queries = args.get_u64("queries", 0)? as usize;
    let queries = if n_queries == 0 {
        QuerySet::per_nonisolated_vertex(&g, length, seed)
    } else {
        QuerySet::n_queries(&g, n_queries, length, seed)
    }
    .with_program(program.clone());

    let app = parse_app(args, &g)?;

    // Engine-agnostic dispatch: any backend behind `&dyn WalkEngine`,
    // driven as a batched session (DESIGN.md §6). `--shards K` selects
    // the sharded engine without requiring an explicit `--engine`.
    let shards = args.get_u64("shards", 0)? as usize;
    let engine_name = match args.get("engine") {
        Some(name) => name,
        None if shards > 0 => "sharded",
        None => "sim",
    };
    let mut backend = Backend::parse(engine_name)?;
    if let Some(t) = args.get("threads") {
        let t: usize = t.parse().map_err(|_| "--threads must be an integer")?;
        backend = backend.with_threads(t)?;
    }
    if shards > 0 {
        backend = backend.with_shards(
            shards,
            parse_strategy(args)?,
            args.get_u64(
                "flush-budget",
                crate::sharded::ShardedEngine::DEFAULT_FLUSH_BUDGET as u64,
            )?
            .max(1) as usize,
        )?;
    }
    if let Some(t) = args.get("shard-threads") {
        let t: usize = t
            .parse()
            .map_err(|_| "--shard-threads must be an integer (0 = one thread per shard)")?;
        backend = backend.with_shard_threads(t)?;
    }
    if let Some(name) = args.get("sampler") {
        backend = backend.with_sampler(Backend::parse_sampler(name)?);
    }
    let batch = args.get_u64("batch", 1 << 16)?;
    // A sharded backend over a file that was packed with a matching
    // partition runs straight off the file's shard sections (mmap-cheap:
    // shard rows are served zero-copy) instead of re-partitioning the
    // loaded graph in memory.
    let mut shard_source = String::new();
    let engine: Box<dyn WalkEngine + '_> = match backend {
        Backend::Sharded {
            shards,
            strategy,
            sampler,
            flush_budget,
            shard_threads,
        } => {
            let spec = args.positional.first().unwrap();
            let path = spec.strip_prefix("packed:").unwrap_or(spec);
            let mode = if args.flag("in-memory") {
                LoadMode::Heap
            } else {
                LoadMode::Auto
            };
            // Only flags the user actually pinned can conflict with the
            // file's persisted partition; defaults adopt whatever the
            // file carries.
            let shards_pinned = args.get("shards").is_some();
            let strategy_pinned = args.get("strategy").is_some();
            match packed::load_packed_sharded(path, mode) {
                Ok(p)
                    if (!shards_pinned || p.sharded.k() == shards)
                        && (!strategy_pinned || p.sharded.strategy == strategy) =>
                {
                    shard_source = ", shard partition from file".into();
                    Box::new(
                        crate::sharded::ShardedEngine::new(p.sharded, app.as_ref(), sampler, seed)
                            .with_flush_budget(flush_budget)
                            .with_shard_threads(shard_threads),
                    )
                }
                Ok(p) => {
                    // The file's persisted partition contradicts the
                    // request. Rebuilding in memory silently would walk a
                    // partition the user never asked to pay for, so this
                    // is opt-in via --repartition.
                    let file_k = p.sharded.k();
                    let file_strategy = p.sharded.strategy.name();
                    if !args.flag("repartition") {
                        return Err(format!(
                            "{path} was packed with a shard partition of k={file_k} \
                             strategy={file_strategy}, but this run asked for k={shards} \
                             strategy={}; re-run with `--shards {file_k} --strategy \
                             {file_strategy}` to use the file's partition, or pass \
                             --repartition to rebuild the requested one in memory",
                            strategy.name(),
                        ));
                    }
                    // The engine's partition note already narrates the
                    // rebuild in diagnostics; no summary suffix needed.
                    Box::new(
                        crate::sharded::ShardedEngine::partition(
                            &g,
                            shards,
                            strategy,
                            app.as_ref(),
                            sampler,
                            seed,
                        )
                        .with_flush_budget(flush_budget)
                        .with_shard_threads(shard_threads)
                        .with_partition_note(format!(
                            "repartitioned in memory (file partition was k={file_k} \
                             strategy={file_strategy})"
                        )),
                    )
                }
                Err(_) => backend.build(&g, app.as_ref(), seed),
            }
        }
        _ => backend.build(&g, app.as_ref(), seed),
    };
    let engine: &dyn WalkEngine = engine.as_ref();

    let mut walks = WalkResults::with_capacity(queries.len(), length as usize + 1);
    let t = Instant::now();
    let mut sessions = vec![engine.start_session(&queries)];
    let mut batches = 0u64;
    {
        let mut sinks: Vec<&mut dyn WalkSink> = vec![&mut walks];
        lightrw_walker::multiplex_sessions(&mut sessions, &mut sinks, batch, |_, _, _| {
            batches += 1
        });
    }
    let wall_s = t.elapsed().as_secs_f64();
    let session = &sessions[0];
    let steps = session.steps_done();
    let mut summary = format!(
        "engine {engine_name}: program {program}, {steps} steps in {batches} batches via {}, \
         {:.3} ms wall",
        engine.label(),
        wall_s * 1e3,
    );
    match session.model_seconds() {
        Some(model_s) => {
            let rate = if model_s > 0.0 {
                steps as f64 / model_s
            } else {
                0.0
            };
            summary += &format!(
                ", {:.3} ms simulated ({:.1} M steps/s)",
                model_s * 1e3,
                rate / 1e6
            );
        }
        None => {
            let rate = if wall_s > 0.0 {
                steps as f64 / wall_s
            } else {
                0.0
            };
            summary += &format!(" ({:.1} M steps/s)", rate / 1e6);
        }
    }
    if let Some(diag) = session.diagnostics() {
        summary += &format!(", {diag}");
    }
    summary += &shard_source;
    if loaded.mapped {
        summary += ", graph mmap-backed";
    }

    let mut out_line = String::new();
    if let Some(out) = args.get("out") {
        // A relabel-packed graph walks in its renumbered id space; emit
        // the corpus in *original* ids so downstream consumers never see
        // the pack-time permutation.
        let walks = match &loaded.relabeling {
            Some(map) => {
                let mut original = WalkResults::with_capacity(walks.len(), length as usize + 1);
                for p in walks.iter() {
                    for &v in p {
                        original.push_vertex(map.old_id(v));
                    }
                    original.end_path();
                }
                original
            }
            None => walks,
        };
        let f = std::fs::File::create(out).map_err(|e| e.to_string())?;
        if args.flag("binary") {
            corpus_io::write_binary(&walks, f).map_err(|e| e.to_string())?;
        } else {
            corpus_io::write_text(&walks, f).map_err(|e| e.to_string())?;
        }
        out_line = format!("\nwrote {} walks to {out}", walks.len());
    }
    Ok(format!("{summary}{out_line}"))
}

/// Build the worker backend from the CLI flags, falling back to the
/// trace's own sizing fields (`threads`, `shards`, `shard_threads`)
/// when replaying one. The listen mode passes no trace — flags only.
fn configure_backend(
    args: &Args,
    trace: Option<&crate::jobspec::Trace>,
) -> Result<Backend, String> {
    let mut backend = Backend::parse(args.get("engine").unwrap_or("cpu"))?;
    // Worker sizing flows through one knob: an explicit --threads wins,
    // else the trace's own `threads` field — both land in
    // Backend::with_threads, so every pool engine's LanePlan agrees with
    // what the spec asked for.
    let threads = match args.get("threads") {
        Some(t) => Some(
            t.parse::<usize>()
                .map_err(|_| "--threads must be an integer".to_string())?,
        ),
        None => trace.and_then(|t| t.threads),
    };
    if let Some(t) = threads {
        backend = backend.with_threads(t)?;
    }
    // Shard sizing mirrors thread sizing: an explicit --shards wins,
    // else the trace's `shards` field — which, like `threads` for
    // non-CPU backends, is ignored unless the engine is sharded.
    let shards = match args.get("shards") {
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|_| "--shards must be an integer".to_string())?,
        ),
        None => trace
            .and_then(|t| t.shards)
            .filter(|_| matches!(backend, Backend::Sharded { .. })),
    };
    if let Some(k) = shards {
        backend = backend.with_shards(
            k,
            parse_strategy(args)?,
            args.get_u64(
                "flush-budget",
                crate::sharded::ShardedEngine::DEFAULT_FLUSH_BUDGET as u64,
            )?
            .max(1) as usize,
        )?;
    }
    // Executor-thread sizing for sharded backends follows the same
    // precedence: an explicit --shard-threads wins, else the trace's
    // `shard_threads` field.
    let shard_threads = match args.get("shard-threads") {
        Some(t) => Some(t.parse::<usize>().map_err(|_| {
            "--shard-threads must be an integer (0 = one thread per shard)".to_string()
        })?),
        None => trace
            .and_then(|t| t.shard_threads)
            .filter(|_| matches!(backend, Backend::Sharded { .. })),
    };
    if let Some(t) = shard_threads {
        backend = backend.with_shard_threads(t)?;
    }
    if let Some(name) = args.get("sampler") {
        backend = backend.with_sampler(Backend::parse_sampler(name)?);
    }
    Ok(backend)
}

fn cmd_serve(args: &Args) -> Result<String, String> {
    use crate::jobspec;
    use lightrw_walker::service::{JobSpec, ServiceConfig, WalkService};

    if let Some(addr) = args.get("listen") {
        return cmd_serve_listen(args, addr);
    }

    let positional = args
        .positional
        .first()
        .ok_or("serve requires a graph file argument (or - to use the trace's \"graph\" field)")?;

    // The trace: an explicit spec file, or a synthetic homogeneous one.
    let trace: jobspec::Trace = match args.get("jobs") {
        Some(spec_path) => {
            let text = std::fs::read_to_string(spec_path)
                .map_err(|e| format!("read --jobs {spec_path}: {e}"))?;
            jobspec::parse_trace(&text)?
        }
        None => {
            let tenants = args.get_u64("synthetic-tenants", 0)? as u32;
            if tenants == 0 {
                return Err("serve needs --jobs SPEC.json or --synthetic-tenants N".into());
            }
            jobspec::Trace::from_jobs(jobspec::synthetic_trace(
                tenants,
                args.get_u64("jobs-per-tenant", 2)? as usize,
                args.get_u64("queries", 64)? as usize,
                args.get_u64("length", 10)? as u32,
            ))
        }
    };
    if trace.jobs.is_empty() {
        return Err("the job trace is empty".into());
    }

    // Graph resolution: the CLI positional wins; `-` explicitly defers
    // to the trace's own "graph" field.
    let gspec = if positional == "-" {
        trace.graph.as_deref().ok_or(
            "serve positional is - but the trace has no \"graph\" field; \
             name a graph in the spec or on the command line",
        )?
    } else {
        positional.as_str()
    };
    let loaded = load_graph_spec(gspec, args.flag("in-memory"))?;
    let g = loaded.graph;
    let app = parse_app(args, &g)?;

    let backend = configure_backend(args, Some(&trace))?;
    let workers = args.get_u64("workers", 2)? as usize;
    let seed = args.get_u64("seed", 42)?;
    let cfg = ServiceConfig {
        quantum: args.get_u64("quantum", 4096)?.max(1),
        tenant_pending_steps: args.get_u64("tenant-budget", u64::MAX)?,
    };

    let pool = backend.build_pool(&g, app.as_ref(), seed, workers.max(1));
    let mut service = WalkService::new(pool.iter().map(|e| e.as_ref()).collect(), cfg);

    // Submit the whole trace, remembering each job's expected output shape
    // for the exactly-once audit below.
    let t_wall = Instant::now();
    let mut handles = Vec::with_capacity(trace.jobs.len());
    for job in &trace.jobs {
        let mut queries = QuerySet::n_queries(&g, job.queries, job.length, job.seed);
        if let Some(program) = &job.program {
            queries = queries.with_program(program.clone());
        }
        let starts: Vec<u32> = queries.queries().iter().map(|q| q.start).collect();
        let mut spec = JobSpec::tenant(job.tenant).weight(job.weight);
        if let Some(d) = job.deadline {
            spec = spec.deadline(d);
        }
        if let Some(ms) = job.deadline_ms {
            spec = spec.wall_deadline_ms(ms);
        }
        handles.push((service.submit(spec, queries), starts));
    }

    // Replay with graceful shutdown (DESIGN.md §13): a SIGINT/SIGTERM
    // (or the --shutdown-after-ticks testing knob) stops scheduling —
    // in-flight jobs get up to --drain-ms to finish on their own, then
    // are cancelled with their partial paths flushed. Degrade, never
    // fail: the command still audits and reports what did complete.
    lightrw_baseline::signal::install_shutdown_handler();
    let shutdown_after = args.get_u64("shutdown-after-ticks", u64::MAX)?;
    let drain = std::time::Duration::from_millis(args.get_u64("drain-ms", 0)?);
    let mut drain_started: Option<Instant> = None;
    let mut interrupted = false;
    let mut ticks = 0u64;
    loop {
        if (lightrw_baseline::signal::shutdown_requested() || ticks >= shutdown_after)
            && drain_started.is_none()
        {
            drain_started = Some(Instant::now());
        }
        if let Some(t0) = drain_started {
            if t0.elapsed() >= drain {
                interrupted = true;
                for id in service.active_jobs() {
                    service.cancel(id);
                }
            }
        }
        if service.is_idle() {
            break;
        }
        service.tick();
        ticks += 1;
    }
    let wall_s = t_wall.elapsed().as_secs_f64();

    // The soak audit: every completed job must have emitted exactly one
    // path per query, in query order (fewer = dropped, more =
    // duplicated, wrong start = misrouted). Model-deadline-expired jobs
    // still flush every path; jobs cancelled by a shutdown drain or
    // wall-expired while waiting legitimately flush fewer — those are
    // only checked for the never-duplicate, never-misroute half.
    let mut audited_paths = 0usize;
    for (i, (job, starts)) in handles.iter().enumerate() {
        let status = service.status(*job);
        let results = service
            .take_results(*job)
            .ok_or_else(|| format!("job #{i}: no result set"))?;
        let exact =
            status == JobStatus::Completed || (!interrupted && trace.jobs[i].deadline_ms.is_none());
        if exact && results.len() != starts.len() {
            return Err(format!(
                "job #{i}: dropped or duplicated paths ({} emitted, {} queries)",
                results.len(),
                starts.len()
            ));
        }
        if results.len() > starts.len() {
            return Err(format!(
                "job #{i}: duplicated paths ({} emitted, {} queries)",
                results.len(),
                starts.len()
            ));
        }
        for (qi, (&start, p)) in starts.iter().zip(results.iter()).enumerate() {
            if p.first() != Some(&start) {
                return Err(format!(
                    "job #{i} query {qi}: path misrouted (starts at {:?}, expected {start})",
                    p.first()
                ));
            }
        }
        audited_paths += results.len();
    }

    let stats = service.stats();
    let mut out = format!(
        "served {} jobs ({} tenants) over {} {} worker(s): \
         {} steps in {:.3} ms wall ({:.2} M steps/s)\n",
        trace.jobs.len(),
        stats.tenants.len(),
        pool.len(),
        pool[0].label(),
        stats.total_steps,
        wall_s * 1e3,
        if wall_s > 0.0 {
            stats.total_steps as f64 / wall_s / 1e6
        } else {
            0.0
        },
    );
    if loaded.mapped {
        out.insert_str(out.len() - 1, " [graph mmap-backed]");
    }
    out += &format!(
        "job latency p50 {:.3} ms, p99 {:.3} ms; scheduler turns {}\n",
        stats.p50_latency_s * 1e3,
        stats.p99_latency_s * 1e3,
        stats.ticks,
    );
    out += &format!(
        "latency split: queue wait p50 {:.3} ms / p99 {:.3} ms, \
         execution p50 {:.3} ms / p99 {:.3} ms\n",
        stats.p50_queue_wait_s * 1e3,
        stats.p99_queue_wait_s * 1e3,
        stats.p50_exec_s * 1e3,
        stats.p99_exec_s * 1e3,
    );
    out += "tenant   jobs done/cancel/expire        steps      steps/s\n";
    for t in &stats.tenants {
        out += &format!(
            "{:<8} {:>6} {:>4}/{:>6}/{:>6} {:>12} {:>12.0}\n",
            t.tenant,
            t.submitted,
            t.completed,
            t.cancelled,
            t.expired,
            t.steps,
            t.steps_per_sec(),
        );
    }
    if interrupted {
        out += &format!(
            "interrupted — drained and cancelled in-flight jobs; \
             audit: {} jobs, {} paths — no duplicated or misrouted paths",
            trace.jobs.len(),
            audited_paths
        );
    } else {
        out += &format!(
            "audit: {} jobs, {} paths — no dropped or duplicated paths",
            trace.jobs.len(),
            audited_paths
        );
    }
    Ok(out)
}

/// `serve --listen ADDR`: the network front door (DESIGN.md §13).
/// Binds, announces the bound address on stdout (CI binds port 0 and
/// greps for it), then blocks serving until SIGINT/SIGTERM drains the
/// scheduler.
fn cmd_serve_listen(args: &Args, addr: &str) -> Result<String, String> {
    use crate::http::{AdmissionConfig, ServeConfig};
    use lightrw_walker::service::ServiceConfig;

    let positional = args
        .positional
        .first()
        .ok_or("serve --listen requires a graph file argument")?;
    let loaded = load_graph_spec(positional, args.flag("in-memory"))?;
    let g = loaded.graph;
    let app = parse_app(args, &g)?;
    let backend = configure_backend(args, None)?;
    let workers = args.get_u64("workers", 2)? as usize;
    let seed = args.get_u64("seed", 42)?;
    let rate = args.get_f64("rate", 1e6)?;
    let burst = args.get_f64("burst", 2e6)?;
    if !rate.is_finite() || rate <= 0.0 || !burst.is_finite() || burst <= 0.0 {
        return Err("--rate and --burst must be positive".into());
    }
    let cfg = ServeConfig {
        service: ServiceConfig {
            quantum: args.get_u64("quantum", 4096)?.max(1),
            tenant_pending_steps: args.get_u64("tenant-budget", u64::MAX)?,
        },
        admission: AdmissionConfig {
            rate_steps_per_s: rate,
            burst_steps: burst,
            queue_high_water: args.get_u64("queue-high-water", 64)?.max(1) as usize,
        },
        drain: std::time::Duration::from_millis(args.get_u64("drain-ms", 5000)?),
        io_timeout: std::time::Duration::from_millis(args.get_u64("io-timeout-ms", 100)?.max(1)),
    };

    // Clear a stale latch *before* binding: once the listener exists a
    // supervisor (or test) may signal at any time, and that request
    // must not be erased.
    lightrw_baseline::signal::clear_shutdown();
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("cannot bind --listen {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot read the bound address: {e}"))?;
    // Announce before blocking — the CLI shim prints run()'s return
    // value only after the server exits, far too late for a client
    // waiting to learn which port `:0` picked.
    println!("listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let pool = backend.build_pool(&g, app.as_ref(), seed, workers.max(1));
    let summary = crate::http::serve(
        listener,
        pool.iter().map(|e| e.as_ref()).collect(),
        &g,
        &cfg,
    )?;
    Ok(format!(
        "front door drained{}: {} submissions — {} admitted, {} shed; \
         {} completed, {} cancelled, {} expired",
        if summary.drained_clean {
            " clean"
        } else {
            " (deadline cancellations)"
        },
        summary.submitted,
        summary.admitted,
        summary.shed,
        summary.completed,
        summary.cancelled,
        summary.expired,
    ))
}

/// Outcome of one `client` job submission over the wire.
enum ClientOutcome {
    /// Streamed to a terminal summary; `paths` is the audited count.
    Done { status: String, paths: usize },
    /// Shed by admission control (429) or a draining server (503).
    Shed { status: u16 },
}

/// Submit one job over HTTP and audit its NDJSON stream: every `path`
/// event must carry the next ascending query id, and a `done` event
/// must close the stream with a matching path count.
fn client_submit_one(addr: &str, body: &str, queries: usize) -> Result<ClientOutcome, String> {
    use crate::http::wire;
    use std::io::Write as _;

    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(60)));
    stream
        .write_all(
            format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .map_err(|e| format!("send job: {e}"))?;
    let mut reader = std::io::BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let resp = wire::read_response(&mut reader)?;
    if resp.status == 429 || resp.status == 503 {
        if resp.header("retry-after").is_none() {
            return Err(format!("{} response without Retry-After", resp.status));
        }
        return Ok(ClientOutcome::Shed {
            status: resp.status,
        });
    }
    if resp.status != 200 {
        return Err(format!(
            "unexpected status {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body).trim()
        ));
    }
    let text = std::str::from_utf8(&resp.body).map_err(|_| "stream is not UTF-8".to_string())?;
    let mut next_query = 0usize;
    let mut done: Option<(String, usize)> = None;
    for line in text.lines() {
        if line.starts_with("{\"event\": \"path\"") {
            if done.is_some() {
                return Err("path event after the done summary".into());
            }
            let want = format!("{{\"event\": \"path\", \"query\": {next_query}, ");
            if !line.starts_with(&want) {
                return Err(format!(
                    "out-of-order or duplicated path (expected query {next_query}): {line}"
                ));
            }
            next_query += 1;
        } else if line.starts_with("{\"event\": \"done\"") {
            let status = extract_json_str(line, "status")
                .ok_or_else(|| format!("done event without a status: {line}"))?;
            let paths = extract_json_uint(line, "paths")
                .ok_or_else(|| format!("done event without a path count: {line}"))?;
            done = Some((status, paths));
        }
    }
    let Some((status, paths)) = done else {
        return Err("stream ended without a done summary".into());
    };
    if paths != next_query {
        return Err(format!(
            "done summary claims {paths} paths but {next_query} were streamed"
        ));
    }
    if status == "completed" && paths != queries {
        return Err(format!("completed job streamed {paths} of {queries} paths"));
    }
    Ok(ClientOutcome::Done { status, paths })
}

/// Pull `"key": "value"` out of a single-line JSON object.
fn extract_json_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Pull `"key": 123` out of a single-line JSON object.
fn extract_json_uint(line: &str, key: &str) -> Option<usize> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let digits: String = line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// `client`: drive a running `serve --listen` front door — submit every
/// trace job concurrently over its own connection, audit exactly-once
/// path delivery on the wire, then poll `GET /stats`.
fn cmd_client(args: &Args) -> Result<String, String> {
    use crate::jobspec;

    let addr = args
        .get("addr")
        .ok_or("client needs --addr HOST:PORT (from the server's \"listening on\" line)")?;
    let trace: jobspec::Trace = match args.get("jobs") {
        Some(spec_path) => {
            let text = std::fs::read_to_string(spec_path)
                .map_err(|e| format!("read --jobs {spec_path}: {e}"))?;
            jobspec::parse_trace(&text)?
        }
        None => {
            let tenants = args.get_u64("synthetic-tenants", 0)? as u32;
            if tenants == 0 {
                return Err("client needs --jobs SPEC.json or --synthetic-tenants N".into());
            }
            jobspec::Trace::from_jobs(jobspec::synthetic_trace(
                tenants,
                args.get_u64("jobs-per-tenant", 2)? as usize,
                args.get_u64("queries", 64)? as usize,
                args.get_u64("length", 10)? as u32,
            ))
        }
    };
    if trace.jobs.is_empty() {
        return Err("the job trace is empty".into());
    }

    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = trace
            .jobs
            .iter()
            .map(|job| {
                let body = jobspec::job_to_json(job);
                let queries = job.queries;
                scope.spawn(move || client_submit_one(addr, &body, queries))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".into()))
            })
            .collect()
    });

    let mut completed = 0usize;
    let mut other_terminal = 0usize;
    let mut shed = 0usize;
    let mut shed_unavailable = 0usize;
    let mut paths = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(ClientOutcome::Done { status, paths: p }) => {
                paths += p;
                if status == "completed" {
                    completed += 1;
                } else {
                    other_terminal += 1;
                }
            }
            Ok(ClientOutcome::Shed { status }) => {
                shed += 1;
                if *status == 503 {
                    shed_unavailable += 1;
                }
            }
            Err(e) => return Err(format!("job #{i}: {e}")),
        }
    }

    // The stats poll exercises GET /stats over the same socket protocol.
    let stats = client_get_stats(addr)?;
    let mut out = format!(
        "client: {} jobs over {addr} — {} completed, {} other terminal, \
         {} shed ({} while draining); {} paths streamed, exactly-once verified\n",
        trace.jobs.len(),
        completed,
        other_terminal,
        shed,
        shed_unavailable,
        paths,
    );
    out += "server /stats:\n";
    out += stats.trim_end();
    Ok(out)
}

/// One `GET /stats` round-trip.
fn client_get_stats(addr: &str) -> Result<String, String> {
    use crate::http::wire;
    use std::io::Write as _;

    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("send stats request: {e}"))?;
    let mut reader = std::io::BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let resp = wire::read_response(&mut reader)?;
    if resp.status != 200 {
        return Err(format!("GET /stats returned {}", resp.status));
    }
    String::from_utf8(resp.body).map_err(|_| "stats body is not UTF-8".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lightrw_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn parse(raw: &[&str]) -> Args {
        Args::parse(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn arg_parser_handles_options_flags_and_positionals() {
        let a = parse(&["g.bin", "--scale", "12", "--directed", "-o", "out.bin"]);
        assert_eq!(a.positional, vec!["g.bin"]);
        assert_eq!(a.get("scale"), Some("12"));
        assert!(a.flag("directed"));
        assert_eq!(a.get("out"), Some("out.bin"));
    }

    #[test]
    fn arg_parser_rejects_missing_values() {
        let raw: Vec<String> = vec!["--scale".into()];
        assert!(Args::parse(&raw).is_err());
    }

    #[test]
    fn generate_info_walk_pipeline() {
        let gpath = tmp("pipeline.bin");
        let out = run(
            "generate",
            &parse(&[
                "--kind", "rmat", "--scale", "8", "--seed", "3", "-o", &gpath,
            ]),
        )
        .unwrap();
        assert!(out.contains("256 vertices"), "{out}");

        let info = run("info", &parse(&[&gpath])).unwrap();
        assert!(info.contains("vertices        : 256"), "{info}");
        assert!(info.contains("weak components"));

        let wpath = tmp("pipeline_walks.txt");
        let walk = run(
            "walk",
            &parse(&[
                &gpath, "--app", "node2vec", "--length", "5", "--engine", "sim", "-o", &wpath,
            ]),
        )
        .unwrap();
        assert!(walk.contains("engine sim"), "{walk}");
        let corpus = corpus_io::read_text(std::fs::File::open(&wpath).unwrap()).unwrap();
        assert!(!corpus.is_empty());
    }

    #[test]
    fn walk_on_cpu_engine() {
        let gpath = tmp("cpu.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        let out = run(
            "walk",
            &parse(&[
                &gpath,
                "--engine",
                "cpu",
                "--length",
                "4",
                "--queries",
                "32",
            ]),
        )
        .unwrap();
        assert!(out.contains("engine cpu"), "{out}");
    }

    #[test]
    fn walk_on_reference_engine_with_batches() {
        let gpath = tmp("reference.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        let out = run(
            "walk",
            &parse(&[
                &gpath,
                "--engine",
                "reference",
                "--length",
                "4",
                "--queries",
                "16",
                "--batch",
                "7",
            ]),
        )
        .unwrap();
        assert!(out.contains("engine reference"), "{out}");
        assert!(out.contains("batches"), "{out}");
        // Unknown engines surface the parse error.
        let err = run("walk", &parse(&[&gpath, "--engine", "fpga"])).unwrap_err();
        assert!(err.contains("unknown --engine"), "{err}");
    }

    #[test]
    fn walk_threads_and_sampler_flags() {
        let gpath = tmp("threads.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        let out = run(
            "walk",
            &parse(&[
                &gpath,
                "--engine",
                "cpu",
                "--threads",
                "2",
                "--length",
                "4",
                "--queries",
                "32",
            ]),
        )
        .unwrap();
        assert!(out.contains("worker lanes"), "{out}");
        let out = run(
            "walk",
            &parse(&[
                &gpath,
                "--engine",
                "cpu",
                "--sampler",
                "rejection",
                "--app",
                "node2vec",
                "--length",
                "4",
                "--queries",
                "16",
            ]),
        )
        .unwrap();
        assert!(out.contains("cpu(rejection)"), "{out}");
        // --threads only fits engines with a threads knob.
        let err = run(
            "walk",
            &parse(&[&gpath, "--engine", "sim", "--threads", "2"]),
        )
        .unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let err = run("walk", &parse(&[&gpath, "--sampler", "dice"])).unwrap_err();
        assert!(err.contains("--sampler"), "{err}");
    }

    #[test]
    fn serve_honors_trace_and_cli_thread_settings() {
        let gpath = tmp("serve_threads.bin");
        run(
            "generate",
            &parse(&["--kind", "rmat", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        let spec = tmp("serve_threads_spec.json");
        std::fs::write(
            &spec,
            r#"{ "threads": 2, "jobs": [
                {"tenant": 0, "queries": 12, "length": 5}
            ] }"#,
        )
        .unwrap();
        let out = run(
            "serve",
            &parse(&[&gpath, "--jobs", &spec, "--engine", "cpu"]),
        )
        .unwrap();
        assert!(out.contains("served 1 jobs"), "{out}");
        // A trace threads field only fits engines with a threads knob.
        let err = run(
            "serve",
            &parse(&[&gpath, "--jobs", &spec, "--engine", "reference"]),
        )
        .unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        // The CLI flag (and --sampler) override the trace's settings.
        let out = run(
            "serve",
            &parse(&[
                &gpath,
                "--jobs",
                &spec,
                "--engine",
                "cpu",
                "--threads",
                "1",
                "--sampler",
                "rejection",
            ]),
        )
        .unwrap();
        assert!(out.contains("cpu(rejection)"), "{out}");
    }

    #[test]
    fn walk_accepts_programs_on_every_engine() {
        let gpath = tmp("program.bin");
        run(
            "generate",
            &parse(&["--kind", "rmat", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        for engine in ["reference", "cpu", "sim"] {
            let out = run(
                "walk",
                &parse(&[
                    &gpath,
                    "--engine",
                    engine,
                    "--program",
                    "ppr:alpha=0.2,max=12",
                    "--queries",
                    "16",
                ]),
            )
            .unwrap();
            assert!(out.contains("program ppr:alpha=0.2,max=12"), "{out}");
        }
        // Fixed programs label the default path too.
        let out = run("walk", &parse(&[&gpath, "--length", "4"])).unwrap();
        assert!(out.contains("program fixed:len=4"), "{out}");
    }

    #[test]
    fn walk_rejects_malformed_or_conflicting_programs() {
        let gpath = tmp("program_err.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "6", "-o", &gpath]),
        )
        .unwrap();
        let err = run("walk", &parse(&[&gpath, "--program", "ppr:alpha=2,max=5"])).unwrap_err();
        assert!(err.contains("(0, 1]"), "{err}");
        let err = run(
            "walk",
            &parse(&[&gpath, "--program", "ppr:alpha=0.1,max=5", "--length", "9"]),
        )
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = run("walk", &parse(&[&gpath, "--program", "warp:len=3"])).unwrap_err();
        assert!(err.contains("unknown program"), "{err}");
    }

    #[test]
    fn serve_replays_program_jobs() {
        let gpath = tmp("serve_program.bin");
        run(
            "generate",
            &parse(&["--kind", "rmat", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        let spec = tmp("serve_program_spec.json");
        std::fs::write(
            &spec,
            r#"{ "jobs": [
                {"tenant": 0, "queries": 12,
                 "program": {"kind": "ppr", "alpha": 0.2, "max": 16}},
                {"tenant": 1, "queries": 8, "program": "fixed:len=6,deadend=restart"},
                {"tenant": 1, "queries": 8, "length": 5}
            ] }"#,
        )
        .unwrap();
        let out = run(
            "serve",
            &parse(&[&gpath, "--jobs", &spec, "--engine", "reference"]),
        )
        .unwrap();
        assert!(out.contains("served 3 jobs (2 tenants)"), "{out}");
        assert!(out.contains("no dropped or duplicated paths"), "{out}");
    }

    #[test]
    fn serve_replays_a_spec_file_and_audits_paths() {
        let gpath = tmp("serve.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        let spec = tmp("serve_spec.json");
        std::fs::write(
            &spec,
            r#"{ "jobs": [
                {"tenant": 0, "queries": 16, "length": 6},
                {"tenant": 0, "queries": 8, "length": 4, "weight": 2},
                {"tenant": 1, "queries": 12, "length": 5, "seed": 9}
            ] }"#,
        )
        .unwrap();
        let out = run(
            "serve",
            &parse(&[
                &gpath,
                "--jobs",
                &spec,
                "--engine",
                "reference",
                "--workers",
                "2",
                "--quantum",
                "7",
            ]),
        )
        .unwrap();
        assert!(out.contains("served 3 jobs (2 tenants)"), "{out}");
        assert!(out.contains("no dropped or duplicated paths"), "{out}");
        assert!(out.contains("p50"), "{out}");
    }

    #[test]
    fn serve_synthesizes_traces_and_respects_quotas() {
        let gpath = tmp("serve_syn.bin");
        run(
            "generate",
            &parse(&["--kind", "rmat", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        let out = run(
            "serve",
            &parse(&[
                &gpath,
                "--synthetic-tenants",
                "3",
                "--jobs-per-tenant",
                "2",
                "--queries",
                "10",
                "--length",
                "4",
                "--engine",
                "cpu",
                "--tenant-budget",
                "40",
            ]),
        )
        .unwrap();
        assert!(out.contains("served 6 jobs (3 tenants)"), "{out}");
        assert!(out.contains("audit: 6 jobs"), "{out}");
    }

    #[test]
    fn serve_surfaces_spec_errors() {
        let gpath = tmp("serve_err.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "6", "-o", &gpath]),
        )
        .unwrap();
        let err = run("serve", &parse(&[&gpath])).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let spec = tmp("bad_spec.json");
        std::fs::write(&spec, r#"{"jobs": [{"tenant": 0}]}"#).unwrap();
        let err = run("serve", &parse(&[&gpath, "--jobs", &spec])).unwrap_err();
        assert!(err.contains("required"), "{err}");
        let err = run(
            "serve",
            &parse(&[&gpath, "--synthetic-tenants", "1", "--engine", "fpga"]),
        )
        .unwrap_err();
        assert!(err.contains("unknown --engine"), "{err}");
    }

    #[test]
    fn graph_pack_stats_and_packed_walk_pipeline() {
        let packed_path = tmp("pipeline.lrwpak");
        let out = run(
            "graph",
            &parse(&[
                "pack",
                "rmat:7:3",
                "--chunk-records",
                "500",
                "-o",
                &packed_path,
            ]),
        )
        .unwrap();
        assert!(out.contains("128 vertices"), "{out}");
        assert!(out.contains("spilled runs"), "{out}");

        let st = run("graph", &parse(&["stats", &packed_path])).unwrap();
        assert!(st.contains("vertices        : 128"), "{st}");
        assert!(st.contains("row_index"), "{st}");
        assert!(st.contains("prefix_all"), "{st}");
        assert!(st.contains("degree histogram"), "{st}");

        // info sniffs the packed magic too.
        let info = run("info", &parse(&[&packed_path])).unwrap();
        assert!(info.contains("vertices        : 128"), "{info}");

        // Walks run straight off the packed file (mmap on linux), with
        // the a-expj sampler exercising the prefix-jump fast path.
        let wpath = tmp("pipeline_packed_walks.txt");
        let walk = run(
            "walk",
            &parse(&[
                &packed_path,
                "--engine",
                "cpu",
                "--sampler",
                "a-expj",
                "--app",
                "static",
                "--length",
                "5",
                "--queries",
                "32",
                "-o",
                &wpath,
            ]),
        )
        .unwrap();
        assert!(walk.contains("cpu(a-expj)"), "{walk}");
        if cfg!(target_os = "linux") {
            assert!(walk.contains("mmap-backed"), "{walk}");
        }
        let corpus = corpus_io::read_text(std::fs::File::open(&wpath).unwrap()).unwrap();
        assert_eq!(corpus.len(), 32);
    }

    #[test]
    fn walk_strategy_pack_runs_parallel_executors_off_the_file() {
        // A walk-strategy pack of an rmat: input materializes the graph
        // (the streaming path is range-only), stats reports the
        // stationary-weighted crossing estimate, and a matching walk run
        // adopts the file partition with parallel executors.
        let packed_path = tmp("walk_strategy.lrwpak");
        let out = run(
            "graph",
            &parse(&[
                "pack",
                "rmat:7:3",
                "--shards",
                "2",
                "--strategy",
                "walk",
                "-o",
                &packed_path,
            ]),
        )
        .unwrap();
        assert!(out.contains("materialized for --strategy walk"), "{out}");

        let st = run("graph", &parse(&["stats", &packed_path])).unwrap();
        assert!(st.contains("2 shards (walk)"), "{st}");
        assert!(st.contains("expected walk crossing rate"), "{st}");

        let walk = run(
            "walk",
            &parse(&[
                &packed_path,
                "--shards",
                "2",
                "--strategy",
                "walk",
                "--shard-threads",
                "2",
                "--length",
                "5",
                "--queries",
                "24",
            ]),
        )
        .unwrap();
        assert!(walk.contains("shard partition from file"), "{walk}");
        assert!(walk.contains("threads=2"), "{walk}");
    }

    #[test]
    fn mismatched_packed_partition_fails_fast_unless_repartition() {
        let packed_path = tmp("mismatch.lrwpak");
        run(
            "graph",
            &parse(&["pack", "rmat:7:5", "--shards", "2", "-o", &packed_path]),
        )
        .unwrap();

        // Asking for a different k than the file carries must not
        // silently rebuild a partition in memory.
        let err = run(
            "walk",
            &parse(&[
                &packed_path,
                "--shards",
                "3",
                "--length",
                "4",
                "--queries",
                "8",
            ]),
        )
        .unwrap_err();
        assert!(err.contains("k=2"), "{err}");
        assert!(err.contains("--repartition"), "{err}");

        // A pinned strategy mismatch trips the same guard.
        let err = run(
            "walk",
            &parse(&[
                &packed_path,
                "--shards",
                "2",
                "--strategy",
                "fennel",
                "--length",
                "4",
                "--queries",
                "8",
            ]),
        )
        .unwrap_err();
        assert!(err.contains("strategy=range"), "{err}");

        // --repartition opts into the rebuild, and the session
        // diagnostics record that the file partition was discarded.
        let ok = run(
            "walk",
            &parse(&[
                &packed_path,
                "--shards",
                "3",
                "--repartition",
                "--length",
                "4",
                "--queries",
                "8",
            ]),
        )
        .unwrap();
        assert!(ok.contains("k=3"), "{ok}");
        assert!(ok.contains("repartitioned in memory"), "{ok}");
        assert!(ok.contains("file partition was k=2 strategy=range"), "{ok}");

        // Defaults that the user never pinned adopt the file's partition.
        let ok = run(
            "walk",
            &parse(&[
                &packed_path,
                "--engine",
                "sharded",
                "--length",
                "4",
                "--queries",
                "8",
            ]),
        )
        .unwrap();
        assert!(ok.contains("shard partition from file"), "{ok}");
    }

    #[test]
    fn relabeled_packed_walks_emit_original_ids() {
        // Pack with --relabel, then walk both the packed file and the
        // in-memory original: the packed corpus must stay inside the
        // original id space and start at the original start vertices.
        let packed_path = tmp("relabel.lrwpak");
        run(
            "graph",
            &parse(&["pack", "rmat:7:9", "--relabel", "-o", &packed_path]),
        )
        .unwrap();
        let wpath = tmp("relabel_walks.txt");
        run(
            "walk",
            &parse(&[
                &packed_path,
                "--engine",
                "reference",
                "--length",
                "4",
                "--queries",
                "16",
                "-o",
                &wpath,
            ]),
        )
        .unwrap();
        let corpus = corpus_io::read_text(std::fs::File::open(&wpath).unwrap()).unwrap();
        let g = lightrw_graph::generators::rmat_dataset(7, 9);
        for p in corpus.iter() {
            for win in p.windows(2) {
                assert!(
                    g.has_edge(win[0], win[1]),
                    "walk edge {win:?} not in the original graph"
                );
            }
        }
    }

    #[test]
    fn graph_subcommand_surfaces_errors() {
        let err = run("graph", &parse(&["polish"])).unwrap_err();
        assert!(err.contains("pack or stats"), "{err}");
        let err = run("graph", &parse(&["pack", "rmat:99", "-o", "x"])).unwrap_err();
        assert!(err.contains("4..=26"), "{err}");
        let err = run("graph", &parse(&["pack", "rmat:8"])).unwrap_err();
        assert!(err.contains("-o"), "{err}");
        let err = run("graph", &parse(&["stats", "/no/such.lrwpak"])).unwrap_err();
        assert!(err.contains("no such file"), "{err}");
        // stats on a non-packed file reports the bad magic.
        let gpath = tmp("not_packed.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "6", "-o", &gpath]),
        )
        .unwrap();
        let err = run("graph", &parse(&["stats", &gpath])).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn serve_defers_to_trace_graph_field() {
        let packed_path = tmp("serve_trace.lrwpak");
        run("graph", &parse(&["pack", "rmat:7:4", "-o", &packed_path])).unwrap();
        let spec = tmp("serve_trace_graph.json");
        std::fs::write(
            &spec,
            format!(
                r#"{{ "graph": "{packed_path}", "jobs": [
                    {{"tenant": 0, "queries": 12, "length": 5}}
                ] }}"#
            ),
        )
        .unwrap();
        let out = run(
            "serve",
            &parse(&["-", "--jobs", &spec, "--engine", "reference"]),
        )
        .unwrap();
        assert!(out.contains("served 1 jobs"), "{out}");
        // `-` without a graph field is an actionable error.
        let bare = tmp("serve_trace_bare.json");
        std::fs::write(
            &bare,
            r#"{ "jobs": [{"tenant": 0, "queries": 4, "length": 3}] }"#,
        )
        .unwrap();
        let err = run("serve", &parse(&["-", "--jobs", &bare])).unwrap_err();
        assert!(err.contains("\"graph\""), "{err}");
    }

    #[test]
    fn convert_roundtrip() {
        let epath = tmp("edges.txt");
        std::fs::write(&epath, "0 1 5\n1 2 3\n").unwrap();
        let gpath = tmp("converted.bin");
        let out = run(
            "convert",
            &parse(&["--input", &epath, "--undirected", "-o", &gpath]),
        )
        .unwrap();
        assert!(out.contains("4 edges"), "{out}");
        let g = gio::load_binary(&gpath).unwrap();
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn standin_generation_validates_dataset_name() {
        let err = run(
            "generate",
            &parse(&[
                "--kind",
                "standin",
                "--dataset",
                "nope",
                "-o",
                &tmp("x.bin"),
            ]),
        )
        .unwrap_err();
        assert!(err.contains("unknown dataset"));
        let ok = run(
            "generate",
            &parse(&[
                "--kind",
                "standin",
                "--dataset",
                "orkut",
                "--scale",
                "8",
                "-o",
                &tmp("ok.bin"),
            ]),
        )
        .unwrap();
        assert!(ok.contains("vertices"));
    }

    #[test]
    fn helpful_errors() {
        assert!(run("info", &parse(&[])).unwrap_err().contains("graph file"));
        assert!(run("nonsense", &Args::default())
            .unwrap_err()
            .contains("unknown subcommand"));
        assert!(run("walk", &parse(&["/no/such/file.bin"]))
            .unwrap_err()
            .contains("no such file"));
        assert!(run("help", &Args::default())
            .unwrap()
            .contains("subcommands"));
    }

    #[test]
    fn metapath_requires_relations() {
        let gpath = tmp("unlabeled.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "6", "-o", &gpath]),
        )
        .unwrap();
        let err = run("walk", &parse(&[&gpath, "--app", "metapath"])).unwrap_err();
        assert!(err.contains("edge relations"));
    }

    #[test]
    fn serve_drains_gracefully_when_shut_down_mid_replay() {
        let gpath = tmp("drain.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "8", "-o", &gpath]),
        )
        .unwrap();
        // Force the shutdown path after two scheduler turns: long jobs
        // are still in flight, so the drain (0 ms deadline) cancels them
        // with partial flushes — and the command must still succeed.
        let out = run(
            "serve",
            &parse(&[
                &gpath,
                "--synthetic-tenants",
                "2",
                "--jobs-per-tenant",
                "2",
                "--queries",
                "64",
                "--length",
                "50",
                "--quantum",
                "8",
                "--shutdown-after-ticks",
                "2",
            ]),
        )
        .unwrap();
        assert!(out.contains("interrupted — drained"), "{out}");
        assert!(out.contains("no duplicated or misrouted paths"), "{out}");
        // The un-interrupted run of the same trace completes and audits
        // strictly.
        let out = run(
            "serve",
            &parse(&[
                &gpath,
                "--synthetic-tenants",
                "2",
                "--jobs-per-tenant",
                "2",
                "--queries",
                "64",
                "--length",
                "50",
            ]),
        )
        .unwrap();
        assert!(out.contains("no dropped or duplicated paths"), "{out}");
        assert!(out.contains("latency split: queue wait"), "{out}");
    }

    #[test]
    fn serve_maps_deadline_ms_onto_wall_deadlines() {
        let gpath = tmp("wall_deadline.bin");
        run(
            "generate",
            &parse(&["--kind", "er", "--scale", "7", "-o", &gpath]),
        )
        .unwrap();
        // A generous wall deadline never fires: the job completes and the
        // strict audit applies.
        let spec = tmp("wall_deadline_spec.json");
        std::fs::write(
            &spec,
            "{\"jobs\": [{\"tenant\": 0, \"queries\": 16, \"length\": 5, \
             \"deadline_ms\": 60000}]}",
        )
        .unwrap();
        let out = run("serve", &parse(&[&gpath, "--jobs", &spec])).unwrap();
        assert!(out.contains("audit: 1 jobs, 16 paths"), "{out}");
    }
}
