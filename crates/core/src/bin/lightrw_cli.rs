//! `lightrw-cli` entry point; all logic lives in [`lightrw::cli`].

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((sub, rest)) = raw.split_first() else {
        eprintln!("{}", lightrw::cli::usage());
        std::process::exit(2);
    };
    let args = match lightrw::cli::Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match lightrw::cli::run(sub, &args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
