//! Platform constants: the paper's evaluation hardware (§6.1.1).
//!
//! These are *data about the testbed*, used by the PCIe, power and
//! resource models. Runtime always comes from the simulator or from
//! measured baseline wall-clock; these constants only convert runtime into
//! the derived tables (3, 4, 5).

use serde::Serialize;

/// Which evaluated application a model constant refers to. The power and
/// resource tables are per-application (different bitstreams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AppKind {
    /// MetaPath random walk (Eq. 1).
    MetaPath,
    /// Node2Vec second-order walk (Eq. 2).
    Node2Vec,
    /// Anything else (uniform/static ablation apps): modelled like
    /// MetaPath, whose datapath is the simpler of the two.
    Other,
}

impl AppKind {
    /// Classify a walk app by its reported name.
    pub fn of(app: &dyn lightrw_walker::WalkApp) -> Self {
        match app.name() {
            "MetaPath" => Self::MetaPath,
            "Node2Vec" => Self::Node2Vec,
            _ => Self::Other,
        }
    }
}

/// FPGA board platform description (Alveo U250 as deployed in Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FpgaPlatform {
    /// Marketing name.
    pub name: &'static str,
    /// DRAM channels (one LightRW instance each).
    pub dram_channels: usize,
    /// Peak per-channel bandwidth, bytes/s (17 GB/s in Fig. 9).
    pub channel_bandwidth: f64,
    /// Host link bandwidth, bytes/s (PCIe 3 x16 ≈ 16 GB/s in Fig. 9).
    pub pcie_bandwidth: f64,
    /// Fixed per-DMA-invocation latency, seconds (driver + descriptor
    /// setup; dominates small transfers).
    pub pcie_latency_s: f64,
    /// Kernel clock, Hz.
    pub clock_hz: f64,
    /// Board resource totals (§6.1.1).
    pub total_brams: u64,
    /// DSP slices.
    pub total_dsps: u64,
    /// LUTs.
    pub total_luts: u64,
}

/// The Alveo U250 of the paper.
pub const U250_PLATFORM: FpgaPlatform = FpgaPlatform {
    name: "Xilinx Alveo U250",
    dram_channels: 4,
    channel_bandwidth: 17.0e9,
    pcie_bandwidth: 16.0e9,
    pcie_latency_s: 30e-6,
    clock_hz: 300e6,
    total_brams: 2_000,
    total_dsps: 11_508,
    total_luts: 1_341_000,
};

/// CPU platform description (the ThunderRW host).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CpuPlatform {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Shared LLC capacity in bytes.
    pub llc_bytes: u64,
    /// Package power range observed while running MetaPath (W).
    pub power_metapath_w: (f64, f64),
    /// Package power range observed while running Node2Vec (W).
    pub power_node2vec_w: (f64, f64),
}

/// The Intel Xeon Gold 6246R of the paper (§6.5, Table 3).
pub const XEON_6246R: CpuPlatform = CpuPlatform {
    name: "Intel Xeon Gold 6246R",
    cores: 16,
    llc_bytes: 35_750_000,
    power_metapath_w: (103.0, 124.0),
    power_node2vec_w: (110.0, 126.0),
};

impl FpgaPlatform {
    /// Board power range while running `app` (Table 3's xbutil readings).
    pub fn power_range_w(&self, app: AppKind) -> (f64, f64) {
        match app {
            AppKind::MetaPath | AppKind::Other => (41.0, 45.0),
            AppKind::Node2Vec => (39.0, 42.0),
        }
    }

    /// Midpoint board power for energy estimates.
    pub fn power_w(&self, app: AppKind) -> f64 {
        let (lo, hi) = self.power_range_w(app);
        (lo + hi) / 2.0
    }
}

impl CpuPlatform {
    /// Package power range while running `app`.
    pub fn power_range_w(&self, app: AppKind) -> (f64, f64) {
        match app {
            AppKind::MetaPath | AppKind::Other => self.power_metapath_w,
            AppKind::Node2Vec => self.power_node2vec_w,
        }
    }

    /// Midpoint package power.
    pub fn power_w(&self, app: AppKind) -> f64 {
        let (lo, hi) = self.power_range_w(app);
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_walker::{MetaPath, Node2Vec, Uniform, WalkApp};

    #[test]
    fn app_kind_classification() {
        let mp = MetaPath::new(vec![0]);
        let nv = Node2Vec::paper_params();
        assert_eq!(AppKind::of(&mp as &dyn WalkApp), AppKind::MetaPath);
        assert_eq!(AppKind::of(&nv as &dyn WalkApp), AppKind::Node2Vec);
        assert_eq!(AppKind::of(&Uniform as &dyn WalkApp), AppKind::Other);
    }

    #[test]
    fn u250_matches_paper_figures() {
        assert_eq!(U250_PLATFORM.dram_channels, 4);
        assert_eq!(U250_PLATFORM.channel_bandwidth, 17.0e9);
        assert_eq!(U250_PLATFORM.pcie_bandwidth, 16.0e9);
        assert_eq!(U250_PLATFORM.clock_hz, 300e6);
        assert_eq!(U250_PLATFORM.total_dsps, 11_508);
    }

    #[test]
    fn power_ranges_match_table3() {
        let (lo, hi) = U250_PLATFORM.power_range_w(AppKind::MetaPath);
        assert_eq!((lo, hi), (41.0, 45.0));
        let (lo, hi) = XEON_6246R.power_range_w(AppKind::Node2Vec);
        assert_eq!((lo, hi), (110.0, 126.0));
        assert!(XEON_6246R.power_w(AppKind::MetaPath) > U250_PLATFORM.power_w(AppKind::MetaPath));
    }
}
