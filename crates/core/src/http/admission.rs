//! Admission control for the network front door: per-tenant token
//! buckets plus a global queue-depth high-water mark (DESIGN.md §13).
//!
//! The [`lightrw_walker::service::WalkService`] quota (pending steps per
//! tenant) bounds what is *in flight*; admission control bounds what is
//! *accepted per unit time*. The two compose: a request must pass the
//! token bucket and the queue-depth check to be submitted at all, and
//! then still waits behind the pending-steps quota like any other job.
//! Shedding early — an explicit `429` with `Retry-After` instead of an
//! ever-growing queue — is what keeps admitted-job p99 bounded past
//! saturation (the `serve_latency` bench demonstrates exactly this).
//!
//! Tokens are denominated in **steps** (`queries × length`, the same
//! unit as the pending-steps quota), so one bucket simultaneously
//! limits many small jobs and few large ones. Time is passed in
//! explicitly (`now: Instant`) — the controller never reads the clock,
//! which makes shedding decisions reproducible in tests and lets the
//! in-process bench drive it with the same loop that drives the
//! scheduler.

use std::collections::HashMap;
use std::time::Instant;

use lightrw_walker::TenantId;

/// Admission-control parameters, shared by every tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Token refill rate per tenant, in steps per second: the sustained
    /// step throughput one tenant may submit.
    pub rate_steps_per_s: f64,
    /// Bucket capacity, in steps: the burst one idle tenant may submit
    /// at once. A single job costing more than the whole bucket is
    /// admitted when the bucket is full (draining it to zero) — the
    /// same no-deadlock exemption the pending-steps quota gives an
    /// oversized lone job.
    pub burst_steps: f64,
    /// Global high-water mark on the scheduler's admission-queue depth
    /// (waiting jobs): past it every submission is shed regardless of
    /// tenant buckets, because queue growth is what turns saturation
    /// into unbounded latency.
    pub queue_high_water: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            rate_steps_per_s: 1e6,
            burst_steps: 2e6,
            queue_high_water: 64,
        }
    }
}

/// Why a submission was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket lacks the job's cost.
    TenantRate,
    /// The global waiting-queue depth passed the high-water mark.
    QueueDepth,
}

impl ShedReason {
    /// Stable label for JSON payloads and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            Self::TenantRate => "tenant_rate",
            Self::QueueDepth => "queue_depth",
        }
    }
}

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Submit the job (tokens were debited).
    Admit,
    /// Shed with `429 Too Many Requests`.
    Shed {
        /// Suggested client back-off, seconds (the `Retry-After`
        /// header, rounded up to whole seconds on the wire).
        retry_after_s: f64,
        /// Which limit fired.
        reason: ShedReason,
    },
}

/// One tenant's bucket: `tokens` at `refilled_at`, refilled lazily on
/// each check.
struct TokenBucket {
    tokens: f64,
    refilled_at: Instant,
}

/// The admission controller: per-tenant token buckets over a shared
/// [`AdmissionConfig`]. Purely computational — callers pass the queue
/// depth and the clock in.
pub struct Admission {
    cfg: AdmissionConfig,
    buckets: HashMap<TenantId, TokenBucket>,
    /// Submissions admitted / shed (by reason), for `/stats`.
    pub admitted: u64,
    /// Shed with [`ShedReason::TenantRate`].
    pub shed_tenant_rate: u64,
    /// Shed with [`ShedReason::QueueDepth`].
    pub shed_queue_depth: u64,
}

impl Admission {
    /// A controller with no history: every bucket starts full.
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(
            cfg.rate_steps_per_s > 0.0 && cfg.burst_steps > 0.0,
            "admission rate and burst must be positive"
        );
        Self {
            cfg,
            buckets: HashMap::new(),
            admitted: 0,
            shed_tenant_rate: 0,
            shed_queue_depth: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Decide one submission: `cost_steps` is the job's requested steps
    /// (`queries × length`), `queue_depth` the scheduler's current
    /// waiting-job count. Tokens are debited only on [`Verdict::Admit`].
    pub fn check(
        &mut self,
        tenant: TenantId,
        cost_steps: u64,
        queue_depth: usize,
        now: Instant,
    ) -> Verdict {
        if queue_depth >= self.cfg.queue_high_water {
            self.shed_queue_depth += 1;
            // The queue drains at the service's pace, not the tenant's;
            // a short fixed back-off keeps clients probing without
            // hammering.
            return Verdict::Shed {
                retry_after_s: 1.0,
                reason: ShedReason::QueueDepth,
            };
        }
        let bucket = self.buckets.entry(tenant).or_insert(TokenBucket {
            tokens: self.cfg.burst_steps,
            refilled_at: now,
        });
        let dt = now
            .saturating_duration_since(bucket.refilled_at)
            .as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.cfg.rate_steps_per_s).min(self.cfg.burst_steps);
        bucket.refilled_at = now;
        let cost = cost_steps as f64;
        // A full bucket admits even an oversized job (cost > burst):
        // mirroring the quota's lone-oversized-job exemption, otherwise
        // such a job could never be submitted at any rate.
        if bucket.tokens >= cost || bucket.tokens >= self.cfg.burst_steps {
            bucket.tokens = (bucket.tokens - cost).max(0.0);
            self.admitted += 1;
            return Verdict::Admit;
        }
        self.shed_tenant_rate += 1;
        let deficit = (cost.min(self.cfg.burst_steps) - bucket.tokens).max(0.0);
        Verdict::Shed {
            retry_after_s: deficit / self.cfg.rate_steps_per_s,
            reason: ShedReason::TenantRate,
        }
    }

    /// Total submissions shed, either reason.
    pub fn shed(&self) -> u64 {
        self.shed_tenant_rate + self.shed_queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            rate_steps_per_s: 100.0,
            burst_steps: 200.0,
            queue_high_water: 4,
        }
    }

    #[test]
    fn bucket_admits_burst_then_sheds() {
        let t0 = Instant::now();
        let mut adm = Admission::new(cfg());
        // 150 of the 200-step burst admits; the next 150 exceeds the
        // 50 remaining tokens and is shed.
        assert_eq!(adm.check(0, 150, 0, t0), Verdict::Admit);
        assert!(matches!(adm.check(0, 150, 0, t0), Verdict::Shed { .. }));
        // The 50 remaining tokens still admit a job that fits.
        assert_eq!(adm.check(0, 50, 0, t0), Verdict::Admit);
    }

    #[test]
    fn shed_carries_retry_after_matching_the_deficit() {
        let t0 = Instant::now();
        let mut adm = Admission::new(cfg());
        assert_eq!(adm.check(0, 200, 0, t0), Verdict::Admit);
        // Bucket empty; a 100-step job needs 1 s of refill at 100/s.
        match adm.check(0, 100, 0, t0) {
            Verdict::Shed {
                retry_after_s,
                reason,
            } => {
                assert!((retry_after_s - 1.0).abs() < 1e-9, "{retry_after_s}");
                assert_eq!(reason, ShedReason::TenantRate);
            }
            v => panic!("expected shed, got {v:?}"),
        }
        // After 1 s the tokens are back.
        assert_eq!(
            adm.check(0, 100, 0, t0 + Duration::from_secs(1)),
            Verdict::Admit
        );
        assert_eq!(adm.admitted, 2);
        assert_eq!(adm.shed_tenant_rate, 1);
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let t0 = Instant::now();
        let mut adm = Admission::new(cfg());
        assert_eq!(adm.check(0, 200, 0, t0), Verdict::Admit);
        assert!(matches!(adm.check(0, 50, 0, t0), Verdict::Shed { .. }));
        // Tenant 1's bucket is untouched.
        assert_eq!(adm.check(1, 200, 0, t0), Verdict::Admit);
    }

    #[test]
    fn queue_high_water_sheds_regardless_of_tokens() {
        let t0 = Instant::now();
        let mut adm = Admission::new(cfg());
        match adm.check(0, 1, 4, t0) {
            Verdict::Shed { reason, .. } => assert_eq!(reason, ShedReason::QueueDepth),
            v => panic!("expected shed, got {v:?}"),
        }
        assert_eq!(adm.shed_queue_depth, 1);
        // Below the mark the bucket rules again.
        assert_eq!(adm.check(0, 1, 3, t0), Verdict::Admit);
    }

    #[test]
    fn oversized_job_admits_from_a_full_bucket() {
        let t0 = Instant::now();
        let mut adm = Admission::new(cfg());
        // 500 > burst 200, but the bucket is full: admit, drain to zero.
        assert_eq!(adm.check(0, 500, 0, t0), Verdict::Admit);
        // Immediately after, even a tiny job is shed (tokens at zero).
        assert!(matches!(adm.check(0, 10, 0, t0), Verdict::Shed { .. }));
        // A *not*-full bucket does not grant the exemption: after a
        // partial refill the oversized job is shed with a bounded
        // retry-after (the deficit against the clamped burst).
        match adm.check(0, 500, 0, t0 + Duration::from_millis(500)) {
            Verdict::Shed { retry_after_s, .. } => {
                assert!(retry_after_s <= 2.0, "{retry_after_s}");
            }
            v => panic!("expected shed, got {v:?}"),
        }
    }

    #[test]
    fn tokens_never_exceed_burst_after_long_idle() {
        let t0 = Instant::now();
        let mut adm = Admission::new(cfg());
        assert_eq!(adm.check(0, 1, 0, t0), Verdict::Admit);
        // An hour idle refills to the cap, not beyond: two bursts in a
        // row must not both admit.
        let later = t0 + Duration::from_secs(3600);
        assert_eq!(adm.check(0, 200, 0, later), Verdict::Admit);
        assert!(matches!(adm.check(0, 200, 0, later), Verdict::Shed { .. }));
    }
}
