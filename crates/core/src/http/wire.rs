//! HTTP/1.1 wire format: request reading, response writing, chunked
//! transfer encoding — hand-rolled over `std::io`, no crates.io.
//!
//! The parser is deliberately a *subset* of RFC 9112, chosen so that
//! every behavior is enforceable and tested (DESIGN.md §13):
//!
//! - Requests: a single request line (`METHOD SP TARGET SP HTTP/1.x`),
//!   up to [`MAX_HEADERS`] header lines, an optional `Content-Length`
//!   body up to [`MAX_BODY`] bytes. `Transfer-Encoding` on *requests* is
//!   rejected with 501 — clients submit small JSON job objects, never
//!   streams.
//! - Every limit violation or malformed input maps to a well-formed 4xx
//!   (or 501/505) via [`WireError`]; the reader never panics and never
//!   reads unboundedly, so a hostile peer cannot balloon memory or hang
//!   a handler.
//! - Pipelining falls out of the design: [`read_request`] consumes
//!   exactly one request from the buffered stream, so back-to-back
//!   requests in one TCP segment are served in order.
//!
//! Responses stream through [`write_response`] (fixed `Content-Length`)
//! or [`ChunkedWriter`] (chunked transfer encoding, used by `POST /jobs`
//! to stream paths as the job's sink fills). [`read_response`] is the
//! matching client-side decoder — the CLI `client` subcommand and the
//! integration tests audit exactly-once emission through it.

use std::io::{BufRead, Read, Write};

/// Longest accepted request line, bytes (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted header line, bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most header lines per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes (a job object is tiny; 1 MiB
/// leaves room for large explicit query lists without letting a peer
/// balloon memory).
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// The request target, as sent (e.g. `/jobs`).
    pub target: String,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides).
    pub keep_alive: bool,
}

/// Outcome of trying to read one request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean EOF before any byte of a request: the peer closed an idle
    /// connection. Not an error.
    Closed,
    /// The read timed out before any byte of a request (idle keep-alive
    /// connection with a socket read timeout). The caller typically
    /// checks its shutdown flag and retries.
    TimedOut,
}

/// A request rejection: maps to one well-formed HTTP error response.
/// Every parser failure path produces one of these — never a panic,
/// never a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// HTTP status code (4xx/5xx).
    pub status: u16,
    /// Canonical reason phrase for the status line.
    pub reason: &'static str,
    /// Human-readable detail, rendered into the JSON error body.
    pub message: String,
}

impl WireError {
    fn new(status: u16, reason: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            reason,
            message: message.into(),
        }
    }

    /// The JSON error body every rejection carries.
    pub fn body(&self) -> String {
        format!("{{\"error\": \"{}\"}}\n", json_escape(&self.message))
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Read one line (up to `\n`) with a hard byte cap. `Ok(None)` on clean
/// EOF with nothing read; `Err(true)` when the cap was hit, `Err(false)`
/// on timeout with nothing read (retryable by the caller).
fn read_line_limited(r: &mut impl BufRead, cap: usize) -> Result<Option<Vec<u8>>, LineError> {
    let mut buf = Vec::new();
    match r.by_ref().take(cap as u64 + 1).read_until(b'\n', &mut buf) {
        Ok(0) => Ok(None),
        Ok(_) => {
            if buf.last() != Some(&b'\n') {
                // The cap cut the line short (or EOF mid-line — also a
                // malformed request).
                if buf.len() > cap {
                    Err(LineError::TooLong)
                } else {
                    Err(LineError::Truncated)
                }
            } else {
                buf.pop();
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                Ok(Some(buf))
            }
        }
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            if buf.is_empty() {
                Err(LineError::IdleTimeout)
            } else {
                Err(LineError::MidRequestTimeout)
            }
        }
        Err(_) => Err(LineError::Io),
    }
}

enum LineError {
    TooLong,
    Truncated,
    IdleTimeout,
    MidRequestTimeout,
    Io,
}

/// Read exactly one request from a buffered stream. See [`ReadOutcome`]
/// for the non-error outcomes; every malformed input maps to a
/// [`WireError`] whose status the caller writes back before closing the
/// connection (framing is unrecoverable after a parse error).
pub fn read_request(r: &mut impl BufRead) -> Result<ReadOutcome, WireError> {
    let line = match read_line_limited(r, MAX_REQUEST_LINE) {
        Ok(None) => return Ok(ReadOutcome::Closed),
        Ok(Some(line)) => line,
        Err(LineError::TooLong) => {
            return Err(WireError::new(
                414,
                "URI Too Long",
                format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
            ))
        }
        Err(LineError::IdleTimeout) => return Ok(ReadOutcome::TimedOut),
        Err(LineError::MidRequestTimeout) => {
            return Err(WireError::new(
                408,
                "Request Timeout",
                "timed out mid-request-line",
            ))
        }
        Err(_) => return Err(WireError::new(400, "Bad Request", "truncated request line")),
    };
    let line = String::from_utf8(line)
        .map_err(|_| WireError::new(400, "Bad Request", "request line is not UTF-8"))?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(WireError::new(
                400,
                "Bad Request",
                format!("malformed request line {line:?}"),
            ))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(WireError::new(
            400,
            "Bad Request",
            format!("malformed method token {method:?}"),
        ));
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return Err(WireError::new(
                505,
                "HTTP Version Not Supported",
                format!("unsupported version {version:?} (HTTP/1.0 or HTTP/1.1)"),
            ))
        }
    };

    let mut keep_alive = keep_alive_default;
    let mut content_length: Option<usize> = None;
    let mut header_count = 0usize;
    loop {
        let line = match read_line_limited(r, MAX_HEADER_LINE) {
            Ok(Some(line)) => line,
            Ok(None) => {
                return Err(WireError::new(
                    400,
                    "Bad Request",
                    "connection closed inside the header block",
                ))
            }
            Err(LineError::TooLong) => {
                return Err(WireError::new(
                    431,
                    "Request Header Fields Too Large",
                    format!("header line exceeds {MAX_HEADER_LINE} bytes"),
                ))
            }
            Err(LineError::IdleTimeout) | Err(LineError::MidRequestTimeout) => {
                return Err(WireError::new(
                    408,
                    "Request Timeout",
                    "timed out inside the header block",
                ))
            }
            Err(_) => return Err(WireError::new(400, "Bad Request", "truncated header block")),
        };
        if line.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADERS {
            return Err(WireError::new(
                431,
                "Request Header Fields Too Large",
                format!("more than {MAX_HEADERS} header lines"),
            ));
        }
        let line = String::from_utf8(line)
            .map_err(|_| WireError::new(400, "Bad Request", "header line is not UTF-8"))?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(WireError::new(
                400,
                "Bad Request",
                format!("header line without a colon: {line:?}"),
            ));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value.parse().map_err(|_| {
                    WireError::new(400, "Bad Request", format!("bad Content-Length {value:?}"))
                })?;
                if content_length.is_some_and(|prev| prev != n) {
                    return Err(WireError::new(
                        400,
                        "Bad Request",
                        "conflicting Content-Length headers",
                    ));
                }
                if n > MAX_BODY {
                    return Err(WireError::new(
                        413,
                        "Content Too Large",
                        format!("body of {n} bytes exceeds the {MAX_BODY}-byte limit"),
                    ));
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                // Job submissions are small JSON objects; a streaming
                // request body is out of scope, and silently ignoring
                // the header would desynchronize framing.
                return Err(WireError::new(
                    501,
                    "Not Implemented",
                    "Transfer-Encoding request bodies are not supported; \
                     send Content-Length",
                ));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v == "close" {
                    keep_alive = false;
                } else if v == "keep-alive" {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length.unwrap_or(0)];
    if !body.is_empty() {
        r.read_exact(&mut body).map_err(|e| {
            let timeout = matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            );
            if timeout {
                WireError::new(408, "Request Timeout", "timed out reading the body")
            } else {
                WireError::new(400, "Bad Request", "body shorter than its Content-Length")
            }
        })?;
    }
    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        target: target.to_string(),
        body,
        keep_alive,
    }))
}

/// Write a complete response with a fixed `Content-Length`. `extra`
/// headers (e.g. `Retry-After`) come before the body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra: &[(&str, String)],
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    let conn = if keep_alive { "keep-alive" } else { "close" };
    write!(w, "Connection: {conn}\r\n\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Incremental chunked-transfer response: head first, then any number
/// of [`ChunkedWriter::chunk`]s, then [`ChunkedWriter::finish`]. Each
/// chunk is flushed immediately — the point is that the client sees
/// paths as the job's sink fills, not after the job ends.
pub struct ChunkedWriter<'w, W: Write> {
    w: &'w mut W,
}

impl<'w, W: Write> ChunkedWriter<'w, W> {
    /// Write the response head and switch the stream to chunked framing.
    pub fn start(
        w: &'w mut W,
        status: u16,
        reason: &str,
        content_type: &str,
        keep_alive: bool,
    ) -> std::io::Result<Self> {
        write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
        write!(w, "Content-Type: {content_type}\r\n")?;
        write!(w, "Transfer-Encoding: chunked\r\n")?;
        let conn = if keep_alive { "keep-alive" } else { "close" };
        write!(w, "Connection: {conn}\r\n\r\n")?;
        w.flush()?;
        Ok(Self { w })
    }

    /// Write one chunk (empty input is skipped: a zero-length chunk
    /// would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Write the terminating zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// A decoded response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, chunked framing already decoded.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one response from a buffered stream: status line, headers, then
/// a `Content-Length` or chunked body. This is the *client* half of the
/// wire — the CLI `client` subcommand and the tests drive the server
/// through it.
pub fn read_response(r: &mut impl BufRead) -> Result<Response, String> {
    let line = match read_line_limited(r, MAX_REQUEST_LINE) {
        Ok(Some(line)) => line,
        Ok(None) => return Err("connection closed before a status line".into()),
        Err(_) => return Err("failed to read the status line".into()),
    };
    let line = String::from_utf8(line).map_err(|_| "status line is not UTF-8".to_string())?;
    let mut parts = line.splitn(3, ' ');
    let (version, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unexpected status line {line:?}"));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| format!("unexpected status {status:?}"))?;

    let mut headers = Vec::new();
    loop {
        let line = match read_line_limited(r, MAX_HEADER_LINE) {
            Ok(Some(line)) => line,
            _ => return Err("truncated response header block".into()),
        };
        if line.is_empty() {
            break;
        }
        let line = String::from_utf8(line).map_err(|_| "header is not UTF-8".to_string())?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("header line without a colon: {line:?}"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        let mut body = Vec::new();
        loop {
            let size_line = match read_line_limited(r, MAX_HEADER_LINE) {
                Ok(Some(line)) => line,
                _ => return Err("truncated chunk size line".into()),
            };
            let size_str = std::str::from_utf8(&size_line)
                .map_err(|_| "chunk size is not UTF-8".to_string())?;
            let size = usize::from_str_radix(size_str.trim(), 16)
                .map_err(|_| format!("bad chunk size {size_str:?}"))?;
            if size == 0 {
                // Trailer section: we send none, so expect the blank.
                let _ = read_line_limited(r, MAX_HEADER_LINE);
                break;
            }
            let at = body.len();
            body.resize(at + size, 0);
            r.read_exact(&mut body[at..])
                .map_err(|_| "truncated chunk body".to_string())?;
            let mut crlf = [0u8; 2];
            r.read_exact(&mut crlf)
                .map_err(|_| "missing chunk terminator".to_string())?;
        }
        body
    } else {
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| v.parse().map_err(|_| format!("bad Content-Length {v:?}")))
            .transpose()?
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)
            .map_err(|_| "body shorter than its Content-Length".to_string())?;
        body
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parse one request from an in-memory byte stream.
    fn parse(bytes: &[u8]) -> Result<ReadOutcome, WireError> {
        read_request(&mut &bytes[..])
    }

    fn expect_request(bytes: &[u8]) -> Request {
        match parse(bytes) {
            Ok(ReadOutcome::Request(req)) => req,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    fn expect_status(bytes: &[u8], status: u16) -> WireError {
        match parse(bytes) {
            Err(err) => {
                assert_eq!(err.status, status, "wrong status for {err:?}");
                assert!(!err.reason.is_empty());
                // The rejection body must itself be well-formed JSON
                // (at least: balanced quotes via the escaper).
                assert!(err.body().starts_with("{\"error\": \""));
                assert!(err.body().ends_with("\"}\n"));
                err
            }
            other => panic!("expected status {status}, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_minimal_get() {
        let req = expect_request(b"GET /stats HTTP/1.1\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/stats");
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_with_body_and_connection_close() {
        let req = expect_request(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\n{\"a\"",
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.keep_alive);
    }

    #[test]
    fn http10_defaults_to_close_and_header_overrides() {
        assert!(!expect_request(b"GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(expect_request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
        assert!(!expect_request(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
    }

    #[test]
    fn clean_eof_is_closed_not_an_error() {
        assert!(matches!(parse(b""), Ok(ReadOutcome::Closed)));
    }

    #[test]
    fn malformed_request_lines_are_400s() {
        // Too few / too many tokens, empty tokens, lowercase method,
        // non-UTF-8: each one a 400, never a panic.
        expect_status(b"GET\r\n\r\n", 400);
        expect_status(b"GET /\r\n\r\n", 400);
        expect_status(b"GET / HTTP/1.1 extra\r\n\r\n", 400);
        expect_status(b" / HTTP/1.1\r\n\r\n", 400);
        expect_status(b"get / HTTP/1.1\r\n\r\n", 400);
        expect_status(b"G\xffT / HTTP/1.1\r\n\r\n", 400);
        // EOF mid-request-line (no terminating newline).
        expect_status(b"GET / HTT", 400);
    }

    #[test]
    fn unsupported_versions_are_505() {
        expect_status(b"GET / HTTP/2\r\n\r\n", 505);
        expect_status(b"GET / SPDY/3\r\n\r\n", 505);
    }

    #[test]
    fn oversized_request_line_is_414() {
        let mut bytes = b"GET /".to_vec();
        bytes.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE));
        bytes.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        expect_status(&bytes, 414);
    }

    #[test]
    fn oversized_header_line_is_431() {
        let mut bytes = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        bytes.extend(std::iter::repeat_n(b'a', MAX_HEADER_LINE));
        bytes.extend_from_slice(b"\r\n\r\n");
        expect_status(&bytes, 431);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut bytes = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            bytes.extend_from_slice(format!("X-H-{i}: v\r\n").as_bytes());
        }
        bytes.extend_from_slice(b"\r\n");
        expect_status(&bytes, 431);
    }

    #[test]
    fn bad_content_length_values_are_400s() {
        expect_status(b"POST /jobs HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400);
        expect_status(b"POST /jobs HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400);
        expect_status(b"POST /jobs HTTP/1.1\r\nContent-Length: 1.5\r\n\r\n", 400);
        expect_status(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd",
            400,
        );
    }

    #[test]
    fn duplicate_matching_content_length_is_accepted() {
        let req = expect_request(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi",
        );
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn oversized_body_is_413_without_allocating_it() {
        let line = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        // No body bytes follow — the parser must reject on the header
        // alone rather than trying to read (or allocate) the claimed size.
        expect_status(line.as_bytes(), 413);
    }

    #[test]
    fn truncated_body_is_400() {
        expect_status(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            400,
        );
        expect_status(b"POST /jobs HTTP/1.1\r\nContent-Length: 1\r\n\r\n", 400);
    }

    #[test]
    fn missing_header_terminator_is_400() {
        expect_status(b"GET / HTTP/1.1\r\nHost: x\r\n", 400);
    }

    #[test]
    fn header_without_colon_is_400() {
        expect_status(b"GET / HTTP/1.1\r\nno colon here\r\n\r\n", 400);
    }

    #[test]
    fn transfer_encoding_requests_are_501() {
        expect_status(
            b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            501,
        );
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = expect_request(b"POST /jobs HTTP/1.1\nContent-Length: 2\n\nok");
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let bytes: &[u8] = b"POST /jobs HTTP/1.1\r\nContent-Length: 3\r\n\r\none\
                             GET /stats HTTP/1.1\r\n\r\n\
                             POST /jobs HTTP/1.1\r\nConnection: close\r\nContent-Length: 5\r\n\r\nthree";
        let mut r = bytes;
        let a = match read_request(&mut r) {
            Ok(ReadOutcome::Request(req)) => req,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            (a.method.as_str(), a.body.as_slice()),
            ("POST", &b"one"[..])
        );
        let b = match read_request(&mut r) {
            Ok(ReadOutcome::Request(req)) => req,
            other => panic!("{other:?}"),
        };
        assert_eq!((b.method.as_str(), b.target.as_str()), ("GET", "/stats"));
        let c = match read_request(&mut r) {
            Ok(ReadOutcome::Request(req)) => req,
            other => panic!("{other:?}"),
        };
        assert_eq!(c.body, b"three");
        assert!(!c.keep_alive);
        assert!(matches!(read_request(&mut r), Ok(ReadOutcome::Closed)));
    }

    #[test]
    fn response_roundtrip_fixed_length() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            429,
            "Too Many Requests",
            &[("Retry-After", "2".to_string())],
            "application/json",
            b"{\"error\": \"shed\"}\n",
            true,
        )
        .unwrap();
        let resp = read_response(&mut &buf[..]).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.body, b"{\"error\": \"shed\"}\n");
    }

    #[test]
    fn response_roundtrip_chunked() {
        let mut buf = Vec::new();
        {
            let mut w =
                ChunkedWriter::start(&mut buf, 200, "OK", "application/x-ndjson", false).unwrap();
            w.chunk(b"line one\n").unwrap();
            w.chunk(b"").unwrap(); // skipped, must not terminate the stream
            w.chunk(b"line two\n").unwrap();
            w.finish().unwrap();
        }
        let resp = read_response(&mut &buf[..]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"line one\nline two\n");
    }

    #[test]
    fn json_escape_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\t\r"), "x\\ny\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    // --- property tests: the parser never panics and every rejection is
    // a well-formed 4xx/5xx, no matter what bytes arrive.

    fn check_total(bytes: &[u8]) {
        match read_request(&mut &bytes[..]) {
            Ok(_) => {}
            Err(err) => {
                assert!(
                    (400..=599).contains(&err.status),
                    "non-error status {} for input {bytes:?}",
                    err.status
                );
                let body = err.body();
                assert!(body.starts_with("{\"error\": \"") && body.ends_with("\"}\n"));
                // The escaper must leave no raw quotes/controls inside.
                let inner = &body[11..body.len() - 3];
                assert!(!inner.bytes().any(|b| b == b'\n' || b < 0x20));
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(64))]

        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            check_total(&bytes);
        }

        #[test]
        fn mangled_requests_reject_cleanly(
            cut in 0usize..64,
            flip in 0usize..64,
            val in 0u8..=255,
        ) {
            // Start from a valid request and damage it: truncate at
            // `cut`, then overwrite the byte at `flip`.
            let mut bytes =
                b"POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"bad\": 1}".to_vec();
            bytes.truncate(cut.min(bytes.len()));
            if flip < bytes.len() {
                bytes[flip] = val;
            }
            check_total(&bytes);
        }

        #[test]
        fn valid_requests_roundtrip(
            n_body in 0usize..512,
            keep in proptest::strategy::Just(true),
            target_len in 1usize..32,
        ) {
            let target: String =
                std::iter::repeat_n('x', target_len).collect();
            let body: Vec<u8> = (0..n_body).map(|i| (i % 251) as u8).collect();
            let mut bytes = format!(
                "POST /{target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            bytes.extend_from_slice(&body);
            let req = match read_request(&mut &bytes[..]) {
                Ok(ReadOutcome::Request(req)) => req,
                other => panic!("expected a request, got {other:?}"),
            };
            proptest::prop_assert_eq!(req.method.as_str(), "POST");
            proptest::prop_assert_eq!(req.target.len(), target_len + 1);
            proptest::prop_assert_eq!(req.body, body);
            proptest::prop_assert_eq!(req.keep_alive, keep);
        }
    }
}
