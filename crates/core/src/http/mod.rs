//! `lightrw::http` — the network front door (DESIGN.md §13).
//!
//! A hand-rolled HTTP/1.1 + JSON server over `std::net::TcpListener`,
//! zero dependencies, exposing the multi-tenant walk scheduler
//! ([`lightrw_walker::service`]) over a socket:
//!
//! - `POST /jobs` submits one jobspec job object (see
//!   [`crate::jobspec::parse_job`]) and **streams** its results back
//!   with chunked transfer encoding as the job's per-job `WalkSink`
//!   fills: one NDJSON line per finished path, then a terminal summary
//!   line. The session layer's exactly-once, ascending-query-id
//!   contract survives the wire intact.
//! - `GET /stats` returns the live [`lightrw_walker::service::ServiceStats`]
//!   snapshot as JSON, including the per-tenant queue-wait/execution
//!   split and the admission counters.
//!
//! Admission control ([`admission`]) sits in front of the scheduler's
//! pending-steps quotas: per-tenant token buckets (denominated in
//! steps) and a global waiting-queue high-water mark. Over-limit
//! submissions are shed explicitly — `429 Too Many Requests` with a
//! `Retry-After` header — instead of queueing without bound, which is
//! what keeps admitted-job p99 flat past saturation (the
//! `serve_latency` bench scenario measures exactly this curve).
//!
//! Module layout:
//!
//! | module | role |
//! |---|---|
//! | [`wire`] | HTTP/1.1 request parsing, response/chunked writing, a tiny client-side response reader |
//! | [`admission`] | token buckets, queue high-water mark, shed verdicts |
//! | [`server`] | the serve loop: scheduler thread + accept/handler threads, graceful drain |
//!
//! Entry point: [`server::serve`], wired to `lightrw_cli serve
//! --listen ADDR`. Shutdown (SIGINT/SIGTERM via
//! `lightrw_baseline::signal`) drains in-flight jobs up to a deadline,
//! then cancels with partial flushes — degrade, never fail.

pub mod admission;
pub mod server;
pub mod wire;

pub use admission::{Admission, AdmissionConfig, ShedReason, Verdict};
pub use server::{serve, stats_json, ServeConfig, ServeSummary};
pub use wire::{read_request, read_response, Request, Response};
