//! The serving loop: accept → parse → admit → schedule → stream.
//!
//! Threading (DESIGN.md §13): [`lightrw_walker::service::WalkService`]
//! borrows its engines and is not `Send`, so everything runs under one
//! `std::thread::scope`:
//!
//! - The **scheduler** (the calling thread) owns the `WalkService` and
//!   the [`Admission`] controller. It drains an `mpsc` inbox of
//!   [`Msg`]s, ticks the service, and pushes [`JobEvent`]s to per-job
//!   reply channels.
//! - The **accept thread** polls a non-blocking listener, spawning one
//!   **handler thread** per connection (walk jobs run for seconds —
//!   thread-per-connection is the right trade at this concurrency, and
//!   keeps the stack fully synchronous).
//! - Handler threads parse requests ([`super::wire`]), forward
//!   submissions to the scheduler, and stream results back as NDJSON
//!   chunks while the job's `WalkSink` fills. Each emitted path crosses
//!   the channel exactly once, in query-id order — the session-layer
//!   contract survives the wire intact.
//!
//! Graceful shutdown rides `lightrw_baseline::signal`: the accept loop
//! stops on the first SIGINT/SIGTERM, handlers finish their current
//! response and close, and the scheduler keeps ticking until idle or
//! until [`ServeConfig::drain`] expires — then cancels what remains,
//! flushing partial paths to the clients still connected. Jobs
//! submitted mid-drain are shed with `503` + `Retry-After`.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};

use lightrw_baseline::signal;
use lightrw_graph::{Graph, VertexId};
use lightrw_walker::service::ServiceStats;
use lightrw_walker::{JobId, JobSpec, JobStatus, QuerySet, ServiceConfig, WalkEngine, WalkService};

use super::admission::{Admission, AdmissionConfig, ShedReason, Verdict};
use super::wire::{json_escape, read_request, ChunkedWriter, ReadOutcome, Request, WireError};
use crate::jobspec::{self, TraceJob};

/// Everything the serve loop needs to know.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Scheduler configuration (quantum, per-tenant pending-steps
    /// quota).
    pub service: ServiceConfig,
    /// Admission control (token buckets, queue high-water mark).
    pub admission: AdmissionConfig,
    /// How long the shutdown drain may run before in-flight jobs are
    /// cancelled with partial flushes.
    pub drain: Duration,
    /// Socket read/write timeout: the poll granularity at which idle
    /// handlers notice shutdown, and the bound on writes to stalled
    /// clients.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            admission: AdmissionConfig::default(),
            drain: Duration::from_secs(5),
            io_timeout: Duration::from_millis(100),
        }
    }
}

/// What the serve loop did, reported once it returns (after shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// `POST /jobs` submissions received (admitted + shed).
    pub submitted: u64,
    /// Submissions admitted into the scheduler.
    pub admitted: u64,
    /// Submissions shed (429/503).
    pub shed: u64,
    /// Jobs that completed every path at full length.
    pub completed: usize,
    /// Jobs cancelled (client disconnect or drain-deadline cancel).
    pub cancelled: usize,
    /// Jobs expired by a deadline.
    pub expired: usize,
    /// True when the drain finished on its own before the deadline
    /// forced cancellations.
    pub drained_clean: bool,
}

/// Handler → scheduler messages.
enum Msg {
    /// A parsed `POST /jobs` body; the reply channel receives the
    /// admission verdict and then the job's whole event stream.
    Submit {
        job: TraceJob,
        reply: Sender<JobEvent>,
    },
    /// The client went away: stop spending compute on its job.
    Cancel { job: JobId },
    /// `GET /stats`: reply with the rendered JSON document.
    Stats { reply: Sender<String> },
}

/// Scheduler → handler events for one job.
enum JobEvent {
    /// The job was admitted and scheduled.
    Admitted { job: JobId },
    /// The job was shed; no further events follow.
    Shed {
        retry_after_s: f64,
        reason: ShedReason,
        /// True when shedding because the server is draining (maps to
        /// `503` rather than `429`).
        draining: bool,
    },
    /// One finished walk path (exactly once per query, ascending
    /// query id — the session contract).
    Path { query: u32, path: Vec<VertexId> },
    /// The job reached a terminal state; no further events follow.
    Done {
        status: JobStatus,
        paths: usize,
        steps: u64,
        latency_s: f64,
        queue_wait_s: f64,
        exec_s: f64,
    },
}

/// Serve HTTP on `listener` over a pool of walk engines until a
/// shutdown is requested (SIGINT/SIGTERM via
/// `lightrw_baseline::signal`, or programmatically with
/// `signal::request_shutdown`). Blocks the calling thread for the
/// server's whole life; returns the traffic summary after the drain.
///
/// The caller is responsible for clearing a stale shutdown latch
/// (`signal::clear_shutdown`) *before* calling — this function
/// installs the handler but deliberately does not clear, so a signal
/// arriving between process start and serve start still stops the
/// server.
pub fn serve(
    listener: TcpListener,
    workers: Vec<&dyn WalkEngine>,
    graph: &Graph,
    cfg: &ServeConfig,
) -> Result<ServeSummary, String> {
    signal::install_shutdown_handler();
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set the listener non-blocking: {e}"))?;
    let (tx, rx) = std::sync::mpsc::channel::<Msg>();
    let listener = &listener;
    Ok(std::thread::scope(|scope| {
        let io_timeout = cfg.io_timeout;
        scope.spawn(move || {
            // Accept loop: hand every connection its own handler
            // thread, stop at the first shutdown request. The listener
            // is non-blocking so the loop observes the flag within one
            // poll interval even with no traffic.
            while !signal::shutdown_requested() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let tx = tx.clone();
                        scope.spawn(move || handle_connection(stream, tx, io_timeout));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // Dropping the accept loop's `tx` clone lets the scheduler
            // observe full disconnection once every handler exits too.
        });
        scheduler_loop(rx, workers, graph, cfg)
    }))
}

/// The scheduler: owns the service, the admission controller, and the
/// per-job reply channels. Runs on the thread that called [`serve`].
fn scheduler_loop(
    rx: Receiver<Msg>,
    workers: Vec<&dyn WalkEngine>,
    graph: &Graph,
    cfg: &ServeConfig,
) -> ServeSummary {
    let mut service = WalkService::new(workers, cfg.service);
    let mut admission = Admission::new(cfg.admission);
    let mut replies: HashMap<JobId, Sender<JobEvent>> = HashMap::new();
    let mut submitted = 0u64;
    let mut shed_draining = 0u64;
    let mut drain_started: Option<Instant> = None;
    let mut forced_cancels = false;
    let mut disconnected = false;

    loop {
        // Drain the inbox without blocking, then serve one turn.
        loop {
            match rx.try_recv() {
                Ok(msg) => handle_msg(
                    msg,
                    &mut service,
                    &mut admission,
                    &mut replies,
                    &mut submitted,
                    &mut shed_draining,
                    graph,
                    drain_started.is_some(),
                ),
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if signal::shutdown_requested() && drain_started.is_none() {
            drain_started = Some(Instant::now());
        }
        if let Some(t0) = drain_started {
            if t0.elapsed() >= cfg.drain && !service.is_idle() {
                // Drain deadline: cancel what remains. Partial paths
                // flush through the per-job sinks, so clients still
                // holding their connections receive everything emitted
                // so far plus a terminal summary.
                forced_cancels = true;
                for id in service.active_jobs() {
                    service.cancel(id);
                }
            }
        }
        let turn = service.tick();
        sweep_terminal(&service, &mut replies);
        if turn.job.is_none() {
            if disconnected && service.is_idle() {
                break;
            }
            // Idle: block briefly for the next message instead of
            // spinning.
            match rx.recv_timeout(Duration::from_millis(2)) {
                Ok(msg) => handle_msg(
                    msg,
                    &mut service,
                    &mut admission,
                    &mut replies,
                    &mut submitted,
                    &mut shed_draining,
                    graph,
                    drain_started.is_some(),
                ),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => disconnected = true,
            }
        }
    }

    let stats = service.stats();
    ServeSummary {
        submitted,
        admitted: admission.admitted,
        shed: admission.shed() + shed_draining,
        completed: stats.completed_jobs,
        cancelled: stats.tenants.iter().map(|t| t.cancelled).sum(),
        expired: stats.tenants.iter().map(|t| t.expired).sum(),
        drained_clean: !forced_cancels,
    }
}

/// Send `Done` for every tracked job that went terminal, and drop its
/// reply channel. Jobs can terminate outside their own turn (waiting
/// jobs wall-expire inside `admit`, drains cancel in bulk), so this
/// sweeps the whole map rather than checking the served job only.
fn sweep_terminal(service: &WalkService<'_>, replies: &mut HashMap<JobId, Sender<JobEvent>>) {
    replies.retain(|&id, reply| {
        let status = service.status(id);
        if !status.is_terminal() {
            return true;
        }
        let (queue_wait_s, exec_s) = service.job_split_s(id).unwrap_or((0.0, 0.0));
        // A dropped receiver (client gone) is fine: the send is a no-op.
        let _ = reply.send(JobEvent::Done {
            status,
            paths: service.job_paths(id),
            steps: service.job_steps(id),
            latency_s: service.job_latency_s(id).unwrap_or(0.0),
            queue_wait_s,
            exec_s,
        });
        false
    });
}

#[allow(clippy::too_many_arguments)]
fn handle_msg<'s>(
    msg: Msg,
    service: &mut WalkService<'s>,
    admission: &mut Admission,
    replies: &mut HashMap<JobId, Sender<JobEvent>>,
    submitted: &mut u64,
    shed_draining: &mut u64,
    graph: &Graph,
    draining: bool,
) {
    match msg {
        Msg::Submit { job, reply } => {
            *submitted += 1;
            if draining {
                *shed_draining += 1;
                let _ = reply.send(JobEvent::Shed {
                    retry_after_s: 1.0,
                    reason: ShedReason::QueueDepth,
                    draining: true,
                });
                return;
            }
            let cost = job.queries as u64 * job.length as u64;
            match admission.check(job.tenant, cost, service.waiting_len(), Instant::now()) {
                Verdict::Shed {
                    retry_after_s,
                    reason,
                } => {
                    let _ = reply.send(JobEvent::Shed {
                        retry_after_s,
                        reason,
                        draining: false,
                    });
                }
                Verdict::Admit => {
                    let mut queries = QuerySet::n_queries(graph, job.queries, job.length, job.seed);
                    if let Some(program) = &job.program {
                        queries = queries.with_program(program.clone());
                    }
                    let mut spec = JobSpec::tenant(job.tenant).weight(job.weight);
                    if let Some(d) = job.deadline {
                        spec = spec.deadline(d);
                    }
                    if let Some(ms) = job.deadline_ms {
                        spec = spec.wall_deadline_ms(ms);
                    }
                    let path_reply = reply.clone();
                    let sink = Box::new(move |query: u32, path: &[VertexId]| {
                        // Ignore send failures: the client hung up, the
                        // job still runs to its own terminal state.
                        let _ = path_reply.send(JobEvent::Path {
                            query,
                            path: path.to_vec(),
                        });
                    });
                    let id = service.submit_streaming(spec, queries, sink);
                    let _ = reply.send(JobEvent::Admitted { job: id });
                    replies.insert(id, reply);
                }
            }
        }
        Msg::Cancel { job } => service.cancel(job),
        Msg::Stats { reply } => {
            let _ = reply.send(stats_json(&service.stats(), admission, draining));
        }
    }
}

/// Render the `GET /stats` document: the full [`ServiceStats`] snapshot
/// plus the admission-control counters.
pub fn stats_json(stats: &ServiceStats, admission: &Admission, draining: bool) -> String {
    let mut out = String::from("{\n");
    out += &format!("  \"draining\": {draining},\n");
    out += &format!(
        "  \"admission\": {{\"admitted\": {}, \"shed_tenant_rate\": {}, \
         \"shed_queue_depth\": {}}},\n",
        admission.admitted, admission.shed_tenant_rate, admission.shed_queue_depth
    );
    out += &format!("  \"ticks\": {},\n", stats.ticks);
    out += &format!("  \"total_steps\": {},\n", stats.total_steps);
    out += &format!("  \"running_jobs\": {},\n", stats.running_jobs);
    out += &format!("  \"waiting_jobs\": {},\n", stats.waiting_jobs);
    out += &format!("  \"completed_jobs\": {},\n", stats.completed_jobs);
    out += &format!("  \"p50_latency_s\": {},\n", stats.p50_latency_s);
    out += &format!("  \"p99_latency_s\": {},\n", stats.p99_latency_s);
    out += &format!("  \"p50_queue_wait_s\": {},\n", stats.p50_queue_wait_s);
    out += &format!("  \"p99_queue_wait_s\": {},\n", stats.p99_queue_wait_s);
    out += &format!("  \"p50_exec_s\": {},\n", stats.p50_exec_s);
    out += &format!("  \"p99_exec_s\": {},\n", stats.p99_exec_s);
    out += "  \"tenants\": [\n";
    for (i, t) in stats.tenants.iter().enumerate() {
        let sep = if i + 1 < stats.tenants.len() { "," } else { "" };
        out += &format!(
            "    {{\"tenant\": {}, \"submitted\": {}, \"completed\": {}, \
             \"cancelled\": {}, \"expired\": {}, \"running\": {}, \"waiting\": {}, \
             \"pending_steps\": {}, \"steps\": {}, \"service_secs\": {}, \
             \"queue_wait_secs\": {}, \"exec_secs\": {}}}{sep}\n",
            t.tenant,
            t.submitted,
            t.completed,
            t.cancelled,
            t.expired,
            t.running,
            t.waiting,
            t.pending_steps,
            t.steps,
            t.service_secs,
            t.queue_wait_secs,
            t.exec_secs,
        );
    }
    out += "  ]\n}\n";
    out
}

/// One connection's life: read requests until the peer closes, a parse
/// error poisons the framing, shutdown is requested, or keep-alive is
/// off.
fn handle_connection(stream: TcpStream, tx: Sender<Msg>, io_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout.max(Duration::from_secs(1))));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        match read_request(&mut reader) {
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::TimedOut) => {
                if signal::shutdown_requested() {
                    return;
                }
            }
            Err(err) => {
                // Malformed input: answer with its well-formed 4xx and
                // close — after a framing error the byte stream cannot
                // be trusted to resynchronize.
                let _ = write_error(&mut stream, &err);
                return;
            }
            Ok(ReadOutcome::Request(req)) => {
                let keep = dispatch(&mut stream, &req, &tx);
                if !(keep && req.keep_alive && !signal::shutdown_requested()) {
                    return;
                }
            }
        }
    }
}

fn write_error(stream: &mut TcpStream, err: &WireError) -> std::io::Result<()> {
    super::wire::write_response(
        stream,
        err.status,
        err.reason,
        &[],
        "application/json",
        err.body().as_bytes(),
        false,
    )
}

/// Route one request. Returns whether the connection may be kept alive
/// (false on write failures and streamed responses cut short).
fn dispatch(stream: &mut TcpStream, req: &Request, tx: &Sender<Msg>) -> bool {
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/jobs") => post_job(stream, req, tx),
        ("GET", "/stats") => get_stats(stream, tx),
        (_, "/jobs") | (_, "/stats") => {
            let body = "{\"error\": \"method not allowed\"}\n";
            super::wire::write_response(
                stream,
                405,
                "Method Not Allowed",
                &[],
                "application/json",
                body.as_bytes(),
                true,
            )
            .is_ok()
        }
        _ => {
            let body = format!(
                "{{\"error\": \"no such endpoint {}; use POST /jobs or GET /stats\"}}\n",
                json_escape(&req.target)
            );
            super::wire::write_response(
                stream,
                404,
                "Not Found",
                &[],
                "application/json",
                body.as_bytes(),
                true,
            )
            .is_ok()
        }
    }
}

fn get_stats(stream: &mut TcpStream, tx: &Sender<Msg>) -> bool {
    let (reply, rx) = std::sync::mpsc::channel();
    if tx.send(Msg::Stats { reply }).is_err() {
        return service_unavailable(stream, "scheduler is gone");
    }
    match rx.recv_timeout(Duration::from_secs(5)) {
        Ok(json) => super::wire::write_response(
            stream,
            200,
            "OK",
            &[],
            "application/json",
            json.as_bytes(),
            true,
        )
        .is_ok(),
        Err(_) => service_unavailable(stream, "stats timed out"),
    }
}

fn service_unavailable(stream: &mut TcpStream, why: &str) -> bool {
    let body = format!("{{\"error\": \"{}\"}}\n", json_escape(why));
    let _ = super::wire::write_response(
        stream,
        503,
        "Service Unavailable",
        &[("Retry-After", "1".to_string())],
        "application/json",
        body.as_bytes(),
        false,
    );
    false
}

fn post_job(stream: &mut TcpStream, req: &Request, tx: &Sender<Msg>) -> bool {
    let job = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(jobspec::parse_job);
    let job = match job {
        Ok(job) => job,
        Err(e) => {
            let body = format!("{{\"error\": \"{}\"}}\n", json_escape(&e));
            return super::wire::write_response(
                stream,
                400,
                "Bad Request",
                &[],
                "application/json",
                body.as_bytes(),
                true,
            )
            .is_ok();
        }
    };
    let (reply, events) = std::sync::mpsc::channel();
    if tx.send(Msg::Submit { job, reply }).is_err() {
        return service_unavailable(stream, "scheduler is gone");
    }
    // The verdict arrives promptly (the scheduler checks admission
    // before anything slow); a generous timeout only guards against a
    // wedged scheduler.
    match events.recv_timeout(Duration::from_secs(30)) {
        Err(_) => service_unavailable(stream, "submission timed out"),
        Ok(JobEvent::Shed {
            retry_after_s,
            reason,
            draining,
        }) => {
            let retry = format!("{}", retry_after_s.ceil().max(1.0) as u64);
            let (status, phrase) = if draining {
                (503, "Service Unavailable")
            } else {
                (429, "Too Many Requests")
            };
            let body = format!(
                "{{\"error\": \"shed\", \"reason\": \"{}\", \"retry_after_s\": {:.3}}}\n",
                if draining { "draining" } else { reason.label() },
                retry_after_s,
            );
            super::wire::write_response(
                stream,
                status,
                phrase,
                &[("Retry-After", retry)],
                "application/json",
                body.as_bytes(),
                true,
            )
            .is_ok()
        }
        Ok(first) => stream_job(stream, first, &events, tx),
    }
}

/// Stream an admitted job's events as one chunked NDJSON response.
/// `first` is whatever event followed admission — almost always
/// `Admitted`, but a job that terminates during submission (e.g. an
/// already-expired wall deadline) can emit paths first; the stream
/// copes with any order and ends at `Done`.
fn stream_job(
    stream: &mut TcpStream,
    first: JobEvent,
    events: &Receiver<JobEvent>,
    tx: &Sender<Msg>,
) -> bool {
    let mut job_id: Option<JobId> = None;
    let mut w = match ChunkedWriter::start(stream, 200, "OK", "application/x-ndjson", true) {
        Ok(w) => w,
        Err(_) => return false,
    };
    let mut event = first;
    loop {
        let line = match &event {
            JobEvent::Admitted { job } => {
                job_id = Some(*job);
                format!("{{\"event\": \"admitted\", \"job\": {}}}\n", job.as_u32())
            }
            JobEvent::Path { query, path } => {
                let mut line = format!("{{\"event\": \"path\", \"query\": {query}, \"path\": [");
                for (i, v) in path.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line += &v.to_string();
                }
                line += "]}\n";
                line
            }
            JobEvent::Done {
                status,
                paths,
                steps,
                latency_s,
                queue_wait_s,
                exec_s,
            } => {
                let status = match status {
                    JobStatus::Completed => "completed",
                    JobStatus::Cancelled => "cancelled",
                    JobStatus::Expired => "expired",
                    _ => "unknown",
                };
                let line = format!(
                    "{{\"event\": \"done\", \"status\": \"{status}\", \"paths\": {paths}, \
                     \"steps\": {steps}, \"latency_ms\": {:.3}, \"queue_wait_ms\": {:.3}, \
                     \"exec_ms\": {:.3}}}\n",
                    latency_s * 1e3,
                    queue_wait_s * 1e3,
                    exec_s * 1e3,
                );
                if w.chunk(line.as_bytes()).is_err() {
                    return false;
                }
                return w.finish().is_ok();
            }
            JobEvent::Shed { .. } => String::new(), // cannot follow admission
        };
        if w.chunk(line.as_bytes()).is_err() {
            // Client gone mid-stream: stop spending compute on the job,
            // then drain the channel so the scheduler's sends stay
            // no-ops until it unregisters us at terminal sweep.
            if let Some(id) = job_id {
                let _ = tx.send(Msg::Cancel { job: id });
            }
            return false;
        }
        event = match events.recv_timeout(Duration::from_secs(60)) {
            Ok(e) => e,
            // Scheduler gone or wedged: end the stream without the
            // terminal summary; the truncated chunked body tells the
            // client the stream is incomplete.
            Err(_) => return false,
        };
    }
}
