//! # lightrw — FPGA-accelerated graph dynamic random walks, in software
//!
//! A production-shaped Rust reproduction of **LightRW** (Tan, Chen, Chen,
//! He, Wong — SIGMOD 2023): the first FPGA accelerator for graph *dynamic*
//! random walks (MetaPath, Node2Vec). The hardware is replaced by an
//! executable cycle-approximate model (see DESIGN.md); the algorithms —
//! parallel weighted reservoir sampling, degree-aware caching, dynamic
//! burst planning — are real and fully tested.
//!
//! ## Quick start
//!
//! ```
//! use lightrw::prelude::*;
//!
//! // A small power-law graph with random weights/labels (paper §6.1.4).
//! let graph = DatasetProfile::youtube().stand_in(10, 42);
//!
//! // Node2Vec with the paper's hyperparameters, one query per vertex.
//! let app = Node2Vec::paper_params();
//! let queries = QuerySet::per_nonisolated_vertex(&graph, 20, 7);
//!
//! // Run on the simulated 4-instance Alveo U250 deployment.
//! let accel = LightRw::new(&graph, &app, LightRwConfig::default());
//! let report = accel.run(&queries);
//!
//! assert_eq!(report.sim.results.len(), queries.len());
//! println!(
//!     "simulated {:.2} ms on-board, {:.1} M steps/s, cache hit {:.1}%",
//!     report.sim.seconds * 1e3,
//!     report.sim.steps_per_sec() / 1e6,
//!     report.sim.cache_total().hit_ratio() * 100.0,
//! );
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | re-export |
//! |---|---|---|
//! | multi-stream RNG (ThundeRiNG model) | `lightrw-rng` | [`rng`] |
//! | CSR graphs, generators, I/O | `lightrw-graph` | [`graph`] |
//! | samplers incl. parallel WRS | `lightrw-sampling` | [`sampling`] |
//! | walk apps, queries, oracle engine | `lightrw-walker` | [`walker`] |
//! | DRAM / cache / burst models | `lightrw-memsim` | [`memsim`] |
//! | accelerator pipeline model | `lightrw-hwsim` | [`hwsim`] |
//! | ThunderRW-like CPU baseline | `lightrw-baseline` | [`baseline`] |
//! | platform models (PCIe, power, resources) | this crate | [`platform`], [`pcie`], [`power`], [`resources`] |
//! | sharded execution with walker hand-off (DESIGN.md §11) | this crate | [`sharded`] |
//! | HTTP front door: serving, admission control (DESIGN.md §13) | this crate | [`http`] |

pub mod accelerator;
pub mod cli;
pub mod cluster;
pub mod engines;
pub mod http;
pub mod jobspec;
pub mod pcie;
pub mod platform;
pub mod power;
pub mod report;
pub mod resources;
pub mod sharded;

pub use accelerator::LightRw;
pub use cluster::{BoardReport, ClusterReport, LightRwCluster};
pub use engines::Backend;
pub use platform::{AppKind, U250_PLATFORM, XEON_6246R};
pub use report::RunReport;
pub use sharded::ShardedEngine;

// Substrate re-exports, so downstream users need only this crate.
pub use lightrw_baseline as baseline;
pub use lightrw_graph as graph;
pub use lightrw_hwsim as hwsim;
pub use lightrw_memsim as memsim;
pub use lightrw_rng as rng;
pub use lightrw_sampling as sampling;
pub use lightrw_walker as walker;

/// The multi-tenant serving layer (DESIGN.md §7), re-exported from
/// `lightrw_walker::service`: schedule concurrent [`service::WalkService`]
/// jobs over any pool of engines — including [`Backend::build_pool`]
/// workers and [`LightRwCluster::workers`] boards. To expose a service
/// over a TCP socket with admission control and graceful drains, see
/// the [`http`] front door (DESIGN.md §13).
pub use lightrw_walker::service;

/// One-line imports for applications and examples.
pub mod prelude {
    pub use crate::accelerator::LightRw;
    pub use crate::cluster::{BoardReport, ClusterReport, LightRwCluster};
    pub use crate::engines::Backend;
    pub use crate::platform::{AppKind, U250_PLATFORM, XEON_6246R};
    pub use crate::report::RunReport;
    pub use crate::sharded::ShardedEngine;
    pub use lightrw_baseline::{BaselineConfig, CpuEngine, CpuSession};
    pub use lightrw_graph::{generators, DatasetProfile, Graph, GraphBuilder};
    pub use lightrw_hwsim::{LightRwConfig, LightRwSim, SimReport};
    pub use lightrw_memsim::{BurstConfig, CachePolicy, DramConfig};
    pub use lightrw_walker::{
        BatchProgress, Control, CountingSink, DeadEndPolicy, HotStepper, JobId, JobSpec, JobStatus,
        MetaPath, NeighborBitset, Node2Vec, Query, QuerySet, ReferenceEngine, SamplerKind,
        ServiceConfig, ServiceStats, StaticWeighted, TenantId, TenantStats, Uniform, WalkApp,
        WalkEngine, WalkEngineExt, WalkProgram, WalkResults, WalkService, WalkSession, WalkSink,
        WeightProfile,
    };
}
