//! Sharded walk execution: one engine lane per graph partition, walkers
//! migrating at shard boundaries through bounded hand-off queues
//! (DESIGN.md §11).
//!
//! [`ShardedEngine`] runs a [`lightrw_graph::ShardedGraph`] — built by
//! [`lightrw_graph::partition_graph`] or loaded from a packed sharded
//! file ([`lightrw_graph::load_packed_sharded`]) — behind the ordinary
//! [`WalkSession`] contract. Each shard owns a sequential step lane with
//! its own [`HotStepper`]; a walker whose step lands on a **ghost**
//! vertex (owned by another shard) is serialized into a hand-off record
//! and parked in the per-(source, destination) outbox until the outbox
//! reaches the flush budget or the scheduling round ends.
//!
//! The three contracts that make this safe:
//!
//! - **RNG streams travel with the walker.** Every query gets its own
//!   [`SamplerStream`] (seed derived from the engine seed and the query
//!   index); the destination lane's stepper imports the stream before
//!   stepping, so a walk's draws are a pure function of its query — not
//!   of shard count, flush budget, or batch schedule. That is what the
//!   conformance and property suites pin.
//! - **Second-order hand-offs carry the previous row.** Node2Vec weights
//!   read the *previous* vertex's adjacency, which the destination shard
//!   does not store. The record ships the row (charged to the transfer
//!   model) and the lane arms it as a prev-row override
//!   ([`HotStepper::arm_prev_row`]) for the arrival step.
//! - **Emission is exactly-once and id-ordered** via the shared
//!   [`InOrderEmitter`] watermark, identical to the CPU engine's lanes.
//!
//! Hand-off batches are charged to the modelled interconnect (the PCIe
//! model of [`crate::pcie`]): each flush costs one link latency plus
//! `bytes / bandwidth`, with a record costing a fixed header plus four
//! bytes per shipped prev-row entry. [`WalkSession::model_seconds`]
//! reports the accumulated transfer seconds.
//!
//! `k = 1` takes a dedicated sequential path that is **bit-identical**
//! to [`lightrw_walker::ReferenceEngine`]: one continuous stepper over
//! all queries, seeded with the engine seed (pinned by
//! `tests/sharded_execution.rs`).

use std::collections::VecDeque;

use lightrw_graph::{partition_graph, Graph, ShardStrategy, ShardedGraph, VertexId};
use lightrw_rng::splitmix::{mix64, GOLDEN_GAMMA};
use lightrw_walker::{
    AnySampler, BatchProgress, HotStepper, InOrderEmitter, Query, QuerySet, SamplerKind,
    SamplerStream, StepOutcome, WalkApp, WalkEngine, WalkProgram, WalkSession, WalkSink, WalkState,
};

use crate::pcie::PcieBreakdown;
use crate::platform::U250_PLATFORM;

/// Serialized size of one hand-off record, excluding the optional
/// prev-row payload: query id (4), current and previous vertex (4 + 5),
/// step counters (4 + 4), restart-segment flag padding (1), and the
/// [`SamplerStream`] triple (24). Payload entries add four bytes each.
pub const HANDOFF_RECORD_BYTES: u64 = 40;

/// A partitioned-execution engine: one step lane per shard, bounded
/// hand-off queues between them, modelled transfer costs per flush.
pub struct ShardedEngine<'a> {
    sharded: ShardedGraph,
    app: &'a dyn WalkApp,
    sampler: SamplerKind,
    seed: u64,
    flush_budget: usize,
}

impl<'a> ShardedEngine<'a> {
    /// Default hand-off coalescing budget: records buffered per
    /// (source, destination) shard pair before a flush is forced.
    /// Chosen so a flush amortizes the link latency over a few KiB of
    /// records while keeping in-flight walkers bounded (DESIGN.md §11).
    pub const DEFAULT_FLUSH_BUDGET: usize = 64;

    /// Wrap an already-partitioned graph (e.g. loaded from a packed
    /// sharded file).
    pub fn new(
        sharded: ShardedGraph,
        app: &'a dyn WalkApp,
        sampler: SamplerKind,
        seed: u64,
    ) -> Self {
        assert!(sharded.k() > 0, "sharded engine requires at least 1 shard");
        Self {
            sharded,
            app,
            sampler,
            seed,
            flush_budget: Self::DEFAULT_FLUSH_BUDGET,
        }
    }

    /// Partition `g` into `k` shards and build an engine over the result.
    pub fn partition(
        g: &Graph,
        k: usize,
        strategy: ShardStrategy,
        app: &'a dyn WalkApp,
        sampler: SamplerKind,
        seed: u64,
    ) -> Self {
        Self::new(partition_graph(g, k, strategy), app, sampler, seed)
    }

    /// Override the hand-off flush budget (clamped to at least 1).
    pub fn with_flush_budget(mut self, flush_budget: usize) -> Self {
        self.flush_budget = flush_budget.max(1);
        self
    }

    /// The partitioned graph this engine executes over.
    pub fn sharded(&self) -> &ShardedGraph {
        &self.sharded
    }

    /// Records buffered per shard pair before a forced flush.
    pub fn flush_budget(&self) -> usize {
        self.flush_budget
    }
}

impl WalkEngine for ShardedEngine<'_> {
    fn label(&self) -> String {
        format!(
            "sharded(k={}, {}, {})",
            self.sharded.k(),
            self.sharded.strategy.name(),
            self.sampler.name()
        )
    }

    fn start_session<'s>(&'s self, queries: &QuerySet) -> Box<dyn WalkSession + 's> {
        let engine: &'s ShardedEngine<'s> = self;
        if self.sharded.k() == 1 {
            Box::new(SingleShardSession::new(engine, queries))
        } else {
            Box::new(MultiShardSession::new(engine, queries))
        }
    }

    /// One graph image per shard: a deployed sharded engine pushes each
    /// partition to its own executor.
    fn graph_images(&self) -> u64 {
        self.sharded.k() as u64
    }
}

// --- k = 1: the sequential fast path -------------------------------------

/// Degenerate single-shard session — a verbatim replay of the reference
/// engine's session loop (one continuous stepper, one query in flight),
/// so `--shards 1` is bit-identical to the unsharded reference backend.
struct SingleShardSession<'s> {
    graph: &'s Graph,
    app: &'s dyn WalkApp,
    stepper: HotStepper,
    program: WalkProgram,
    queries: Vec<Query>,
    qi: usize,
    path: Vec<VertexId>,
    st: WalkState,
    steps_done: u64,
}

impl<'s> SingleShardSession<'s> {
    fn new(engine: &'s ShardedEngine<'s>, queries: &QuerySet) -> Self {
        let graph = &engine.sharded.shards[0].graph;
        let mut stepper = HotStepper::new(engine.app, engine.sampler, engine.seed);
        stepper.reserve(graph.max_degree() as usize);
        let program = queries.program().clone();
        let queries = queries.queries().to_vec();
        let mut path = Vec::new();
        let mut st = WalkState::start(0);
        if let Some(q) = queries.first() {
            path.reserve(q.length as usize + 1);
            path.push(q.start);
            st = WalkState::start(q.start);
        }
        Self {
            graph,
            app: engine.app,
            stepper,
            program,
            queries,
            qi: 0,
            path,
            st,
            steps_done: 0,
        }
    }

    fn finish_current(&mut self, sink: &mut dyn WalkSink) {
        sink.emit(self.qi as u32, &self.path);
        self.qi += 1;
        self.path.clear();
        if let Some(q) = self.queries.get(self.qi) {
            self.path.push(q.start);
            self.st = WalkState::start(q.start);
        }
    }
}

impl WalkSession for SingleShardSession<'_> {
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let budget = max_steps.max(1);
        let mut progress = BatchProgress::default();
        let mut attempts = 0u64;
        while attempts < budget && self.qi < self.queries.len() {
            let q = self.queries[self.qi];
            attempts += 1;
            let outcome = self.program.step_attempt(
                self.graph,
                self.app,
                &mut self.stepper,
                &q,
                &mut self.st,
            );
            let done = match outcome {
                StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                    let v = outcome.appended(q.start).expect("advancing outcome");
                    self.path.push(v);
                    self.steps_done += 1;
                    progress.steps += 1;
                    done
                }
                StepOutcome::DeadEnd | StepOutcome::TargetAtStart => true,
            };
            if done {
                self.finish_current(sink);
                progress.paths_completed += 1;
            }
        }
        progress.finished = self.finished();
        progress
    }

    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress {
        let mut progress = BatchProgress::default();
        while self.qi < self.queries.len() {
            self.finish_current(sink);
            progress.paths_completed += 1;
        }
        progress.finished = true;
        progress
    }

    fn finished(&self) -> bool {
        self.qi >= self.queries.len()
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn paths_completed(&self) -> usize {
        self.qi
    }

    fn diagnostics(&self) -> Option<String> {
        Some("k=1 (sequential fast path)".to_string())
    }
}

// --- k >= 2: lanes, outboxes and hand-offs -------------------------------

/// One in-flight walker: its program state, partial path, serialized RNG
/// stream, and (between hand-off and arrival step) the shipped prev-row
/// payload.
struct Walker {
    st: WalkState,
    path: Vec<VertexId>,
    stream: SamplerStream,
    /// Previous vertex's adjacency row, shipped with a second-order
    /// hand-off; armed as the stepper's prev-row override for exactly
    /// the arrival step.
    prev_row: Option<Vec<VertexId>>,
    done: bool,
}

/// Multi-shard session: deterministic round-robin over shard lanes, with
/// per-(source, destination) outboxes flushed at the budget or at round
/// end so every walker keeps making progress.
struct MultiShardSession<'s> {
    sharded: &'s ShardedGraph,
    app: &'s dyn WalkApp,
    program: WalkProgram,
    queries: Vec<Query>,
    /// One stepper per shard lane; streams are imported per attempt.
    steppers: Vec<HotStepper>,
    /// Runnable walkers parked on each shard (owner of their `cur`).
    runq: Vec<VecDeque<usize>>,
    /// Hand-off records awaiting a flush, indexed `src * k + dst`.
    outbox: Vec<Vec<usize>>,
    flush_budget: usize,
    walkers: Vec<Walker>,
    emitter: InOrderEmitter,
    steps_done: u64,
    hand_offs: u64,
    flushes: u64,
    transfer_bytes: u64,
    transfer_s: f64,
}

impl<'s> MultiShardSession<'s> {
    fn new(engine: &'s ShardedEngine<'s>, queries: &QuerySet) -> Self {
        let sharded = &engine.sharded;
        let k = sharded.k();
        let max_degree = sharded
            .shards
            .iter()
            .map(|s| s.graph.max_degree())
            .max()
            .unwrap_or(0) as usize;
        let steppers = (0..k)
            .map(|_| {
                let mut st = HotStepper::new(engine.app, engine.sampler, engine.seed);
                st.reserve(max_degree);
                st
            })
            .collect();
        let qs = queries.queries().to_vec();
        let mut runq: Vec<VecDeque<usize>> = vec![VecDeque::new(); k];
        let walkers: Vec<Walker> = qs
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                // Per-query stream: draws are a pure function of the
                // query, never of shard count or schedule.
                let stream_seed = mix64(engine.seed ^ (qi as u64 + 1).wrapping_mul(GOLDEN_GAMMA));
                runq[sharded.owner_of(q.start)].push_back(qi);
                let mut path = Vec::with_capacity(q.length as usize + 1);
                path.push(q.start);
                Walker {
                    st: WalkState::start(q.start),
                    path,
                    stream: AnySampler::new(engine.sampler, stream_seed).export_stream(),
                    prev_row: None,
                    done: false,
                }
            })
            .collect();
        Self {
            sharded,
            app: engine.app,
            program: queries.program().clone(),
            queries: qs,
            steppers,
            runq,
            outbox: vec![Vec::new(); k * k],
            flush_budget: engine.flush_budget,
            walkers,
            emitter: InOrderEmitter::new(queries.len()),
            steps_done: 0,
            hand_offs: 0,
            flushes: 0,
            transfer_bytes: 0,
            transfer_s: 0.0,
        }
    }

    /// Deliver outbox `(s, t)` to shard `t`'s run queue, charging one
    /// modelled link transfer (latency + bytes / bandwidth) for the
    /// coalesced batch.
    fn flush_pair(&mut self, s: usize, t: usize) {
        let k = self.sharded.k();
        let batch = std::mem::take(&mut self.outbox[s * k + t]);
        if batch.is_empty() {
            return;
        }
        let mut bytes = 0u64;
        for &w in &batch {
            let payload = self.walkers[w].prev_row.as_ref().map_or(0, |r| r.len()) as u64;
            bytes += HANDOFF_RECORD_BYTES + 4 * payload;
        }
        let link = PcieBreakdown::model(&U250_PLATFORM, bytes, 0.0, 0);
        self.transfer_s += link.upload_s;
        self.transfer_bytes += bytes;
        self.flushes += 1;
        self.runq[t].extend(batch);
    }

    /// Flush every non-empty outbox (round end / cancellation barrier).
    /// Returns how many walkers were delivered.
    fn flush_all(&mut self) -> usize {
        let k = self.sharded.k();
        let mut delivered = 0;
        for s in 0..k {
            for t in 0..k {
                delivered += self.outbox[s * k + t].len();
                self.flush_pair(s, t);
            }
        }
        delivered
    }
}

impl WalkSession for MultiShardSession<'_> {
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let budget = max_steps.max(1);
        let k = self.sharded.k();
        let mut progress = BatchProgress::default();
        let mut attempts = vec![0u64; k];
        loop {
            let mut worked = false;
            // One deterministic sweep: each lane steps its queue head
            // until the lane budget, a retirement, or a hand-off.
            for (s, lane_attempts) in attempts.iter_mut().enumerate() {
                while *lane_attempts < budget {
                    let Some(&w) = self.runq[s].front() else {
                        break;
                    };
                    worked = true;
                    *lane_attempts += 1;
                    let q = self.queries[w];
                    let g = &self.sharded.shards[s].graph;
                    let stepper = &mut self.steppers[s];
                    let wk = &mut self.walkers[w];
                    stepper.import_stream(&wk.stream);
                    if let Some(row) = wk.prev_row.take() {
                        stepper.arm_prev_row(&row);
                    }
                    let outcome = self
                        .program
                        .step_attempt(g, self.app, stepper, &q, &mut wk.st);
                    stepper.clear_prev_row();
                    wk.stream = stepper.export_stream();
                    let done = match outcome {
                        StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                            let v = outcome.appended(q.start).expect("advancing outcome");
                            wk.path.push(v);
                            self.steps_done += 1;
                            progress.steps += 1;
                            done
                        }
                        StepOutcome::DeadEnd | StepOutcome::TargetAtStart => true,
                    };
                    if done {
                        wk.done = true;
                        self.runq[s].pop_front();
                        continue;
                    }
                    let t = self.sharded.owner_of(wk.st.cur);
                    if t != s {
                        // Hand-off: serialize the walker into the (s, t)
                        // outbox. Second-order apps ship the previous
                        // vertex's row — it lives on this shard, not the
                        // destination.
                        if self.app.second_order() {
                            if let Some(prev) = wk.st.prev {
                                wk.prev_row = Some(g.neighbors(prev).to_vec());
                            }
                        }
                        self.runq[s].pop_front();
                        self.hand_offs += 1;
                        self.outbox[s * k + t].push(w);
                        if self.outbox[s * k + t].len() >= self.flush_budget {
                            self.flush_pair(s, t);
                        }
                    }
                }
            }
            // Round barrier: deliver stragglers below the flush budget so
            // migrated walkers never starve, then emit at the watermark.
            let delivered = self.flush_all();
            let walkers = &mut self.walkers;
            progress.paths_completed += self.emitter.drain(sink, |id| {
                if walkers[id].done {
                    Some(std::mem::take(&mut walkers[id].path))
                } else {
                    None
                }
            });
            if self.emitter.finished() || (!worked && delivered == 0) {
                break;
            }
        }
        progress.finished = self.finished();
        progress
    }

    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress {
        let mut progress = BatchProgress::default();
        for q in &mut self.runq {
            q.clear();
        }
        for b in &mut self.outbox {
            b.clear();
        }
        for wk in &mut self.walkers {
            wk.done = true;
        }
        let walkers = &mut self.walkers;
        progress.paths_completed += self
            .emitter
            .drain(sink, |id| Some(std::mem::take(&mut walkers[id].path)));
        progress.finished = true;
        progress
    }

    fn finished(&self) -> bool {
        self.emitter.finished()
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn paths_completed(&self) -> usize {
        self.emitter.emitted()
    }

    /// Modelled interconnect seconds spent on hand-off flushes.
    fn model_seconds(&self) -> Option<f64> {
        Some(self.transfer_s)
    }

    fn diagnostics(&self) -> Option<String> {
        Some(format!(
            "k={} strategy={} hand-offs={} flushes={} transfer-bytes={} transfer-s={:.9}",
            self.sharded.k(),
            self.sharded.strategy.name(),
            self.hand_offs,
            self.flushes,
            self.transfer_bytes,
            self.transfer_s,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::generators;
    use lightrw_walker::{Node2Vec, ReferenceEngine, Uniform, WalkEngineExt};

    #[test]
    fn single_shard_matches_the_reference_engine_exactly() {
        let mut g = generators::rmat_dataset(8, 17);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 40, 12, 99);
        let reference =
            ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 7).run(&qs);
        let engine = ShardedEngine::partition(
            &g,
            1,
            ShardStrategy::Range,
            &Uniform,
            SamplerKind::InverseTransform,
            7,
        );
        let sharded = engine.run_collected(&qs);
        assert_eq!(sharded, reference);
    }

    #[test]
    fn hand_offs_charge_the_transfer_model_and_report_diagnostics() {
        let mut g = generators::rmat_dataset(8, 17);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 64, 16, 3);
        let nv = Node2Vec::paper_params();
        let engine = ShardedEngine::partition(
            &g,
            4,
            ShardStrategy::Range,
            &nv,
            SamplerKind::InverseTransform,
            7,
        );
        let mut sink = lightrw_walker::CountingSink::default();
        let mut session = engine.start_session(&qs);
        while !session.finished() {
            session.advance(100, &mut sink);
        }
        assert_eq!(sink.paths, 64);
        let transfer = session.model_seconds().unwrap();
        assert!(transfer > 0.0, "4-way rmat split must hand off walkers");
        let diag = session.diagnostics().unwrap();
        assert!(
            diag.contains("k=4") && diag.contains("hand-offs="),
            "{diag}"
        );
    }

    #[test]
    fn shard_count_and_flush_budget_never_change_sampled_walks() {
        let mut g = generators::rmat_dataset(7, 5);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 32, 10, 21);
        let nv = Node2Vec::paper_params();
        let baseline = ShardedEngine::partition(
            &g,
            2,
            ShardStrategy::Range,
            &nv,
            SamplerKind::InverseTransform,
            11,
        )
        .run_collected(&qs);
        for (k, flush) in [(2, 1), (3, 7), (4, 64)] {
            let engine = ShardedEngine::partition(
                &g,
                k,
                ShardStrategy::Range,
                &nv,
                SamplerKind::InverseTransform,
                11,
            )
            .with_flush_budget(flush);
            let got = engine.run_collected(&qs);
            assert_eq!(got, baseline, "k={k} flush={flush}");
        }
    }
}
